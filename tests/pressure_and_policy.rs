//! Integration tests for the memory-pressure and policy machinery at full
//! machine level: the reclamation daemon (§4.3), the swap/compaction hook
//! (§4.4), and cgroup-style conditional enablement (§4.4).

use ptemagnet_sim::magnet::{EnablePolicy, ReclaimDaemon, ReservationAllocator};
use ptemagnet_sim::os::{Machine, MachineConfig};
use ptemagnet_sim::types::{GuestVirtAddr, PAGE_SIZE};

fn magnet_machine() -> Machine {
    let mut config = MachineConfig::small();
    config.guest_frames = 4096; // small pool so pressure is easy to create
    Machine::with_allocator(config, Box::new(ReservationAllocator::new()))
}

#[test]
fn daemon_relieves_pressure_without_unmapping_anything() {
    let mut m = magnet_machine();
    let pid = m.guest_mut().spawn();
    // Sparse touching builds large reservations: every 8th page of 3840.
    let va = m.guest_mut().mmap(pid, 3840).unwrap();
    for g in 0..430u64 {
        m.touch(
            0,
            pid,
            GuestVirtAddr::new(va.raw() + g * 8 * PAGE_SIZE),
            true,
        )
        .unwrap();
    }
    assert!(m.guest().buddy().free_fraction() < 0.2);
    let rss_before = m.guest().process(pid).unwrap().rss_pages;

    let daemon = ReclaimDaemon::new(0.2);
    let reclaimed = daemon.run(m.guest_mut());
    assert!(reclaimed > 0);
    assert!(m.guest().buddy().free_fraction() >= 0.2);
    // No mapping was touched: the application never notices (§4.3 —
    // reclamation is a free() call, not a PT update).
    assert_eq!(m.guest().process(pid).unwrap().rss_pages, rss_before);
    for g in 0..430u64 {
        let vpn = GuestVirtAddr::new(va.raw() + g * 8 * PAGE_SIZE).page();
        assert!(m
            .guest()
            .process(pid)
            .unwrap()
            .page_table
            .translate(vpn)
            .is_some());
    }
    // Already-created contiguity still pays off for walks.
    assert!((m.host_pt_fragmentation(pid).unwrap().mean() - 1.0).abs() < 1e-9);
}

#[test]
fn swap_hook_reclaims_single_reservation_via_guest_os() {
    let mut m = magnet_machine();
    let pid = m.guest_mut().spawn();
    let va = m.guest_mut().mmap(pid, 16).unwrap();
    m.touch(0, pid, va, true).unwrap();
    let unused_before = m.guest().allocator().reserved_unused_frames();
    assert_eq!(unused_before, 7);
    // The OS targets a reserved frame of the group for swap-out.
    let gfn = m
        .guest()
        .process(pid)
        .unwrap()
        .page_table
        .translate(va.page())
        .unwrap();
    let target = ptemagnet_sim::types::GuestFrame::new(gfn.raw() + 5);
    let released = m.guest_mut().swap_target(target);
    assert_eq!(released, 7);
    assert_eq!(m.guest().allocator().reserved_unused_frames(), 0);
    // The mapped page is still mapped and usable.
    let out = m.touch(0, pid, va, false).unwrap();
    assert!(!out.faulted);
    // Faulting a sibling page now creates a fresh reservation elsewhere.
    let out = m
        .touch(0, pid, GuestVirtAddr::new(va.raw() + PAGE_SIZE), true)
        .unwrap();
    assert!(out.faulted);
}

#[test]
fn policy_gates_reservations_by_declared_memory_limit() {
    let mut alloc =
        ReservationAllocator::with_policy(EnablePolicy::MemoryLimitAbove(8 * 1024 * 1024));
    // Register the limits before handing the allocator to the machine.
    alloc.set_memory_limit(ptemagnet_sim::os::Pid(1), 1024 * 1024); // small
    alloc.set_memory_limit(ptemagnet_sim::os::Pid(2), 64 * 1024 * 1024); // big
    let mut m = Machine::with_allocator(MachineConfig::small(), Box::new(alloc));

    let small = m.guest_mut().spawn();
    let big = m.guest_mut().spawn();
    let va_s = m.guest_mut().mmap(small, 32).unwrap();
    let va_b = m.guest_mut().mmap(big, 32).unwrap();
    for i in 0..32 {
        m.touch(
            0,
            small,
            GuestVirtAddr::new(va_s.raw() + i * PAGE_SIZE),
            true,
        )
        .unwrap();
        m.touch(1, big, GuestVirtAddr::new(va_b.raw() + i * PAGE_SIZE), true)
            .unwrap();
    }
    // Only the big-memory process got reservation-guaranteed contiguity.
    // The small one went through the default path; its layout is punctured
    // wherever the big process's chunk grabs landed (mildly fragmented —
    // chunked neighbours interleave far less than page-at-a-time ones).
    let frag_small = m.host_pt_fragmentation(small).unwrap().mean();
    let frag_big = m.host_pt_fragmentation(big).unwrap().mean();
    assert!((frag_big - 1.0).abs() < 1e-9, "big: {frag_big}");
    assert!(
        frag_small > frag_big + 0.1,
        "small fragmented: {frag_small}"
    );
}

#[test]
fn forked_children_inherit_the_parents_policy_limit() {
    let mut alloc = ReservationAllocator::with_policy(EnablePolicy::MemoryLimitAbove(1024));
    alloc.set_memory_limit(ptemagnet_sim::os::Pid(1), 1 << 30);
    let mut m = Machine::with_allocator(MachineConfig::small(), Box::new(alloc));
    let parent = m.guest_mut().spawn();
    let va = m.guest_mut().mmap(parent, 8).unwrap();
    m.touch(0, parent, va, true).unwrap();
    let child = m.guest_mut().fork(parent).unwrap();
    // The child's fresh allocations are still reservation-backed (limit
    // inherited across fork) — touch a new region.
    let cva = m.guest_mut().mmap(child, 8).unwrap();
    m.touch(1, child, cva, true).unwrap();
    assert!(
        m.guest().allocator().reserved_unused_frames_of(child) > 0,
        "child inherits PTEMagnet enablement"
    );
}
