//! End-to-end integration tests spanning all crates: the full pipeline from
//! workload generation through the colocation engine to the paper's
//! headline claims.

use ptemagnet_sim::os::MachineConfig;
use ptemagnet_sim::sim::{AllocatorKind, Scenario};
use ptemagnet_sim::workloads::{BenchId, CoId};

/// A reduced-scale scenario that still has real TLB pressure.
fn quick(bench: BenchId) -> Scenario {
    Scenario::new(bench)
        .machine(MachineConfig::paper(8, 256))
        .measure_ops(8_000)
}

#[test]
fn colocation_fragments_and_slows_the_default_kernel() {
    // Paper §3.3: colocation raises host-PT fragmentation and execution
    // time while cache misses and TLB misses stay flat.
    let alone = quick(BenchId::Pagerank).seed(1).run();
    let coloc = quick(BenchId::Pagerank)
        .corunners(&[CoId::StressNg])
        .corunner_weight(3)
        .stop_corunners_after_init(true)
        .seed(1)
        .run();
    assert!(
        coloc.host_frag > alone.host_frag * 1.5,
        "colocation fragments the host PT: {} vs {}",
        coloc.host_frag,
        alone.host_frag
    );
    assert!(coloc.cycles > alone.cycles, "and costs execution time");
    assert!(
        coloc.page_walk_cycles > alone.page_walk_cycles,
        "page walks get slower"
    );
    // TLB misses are layout-independent: virtual access pattern unchanged.
    let miss_delta =
        (coloc.tlb_misses as f64 - alone.tlb_misses as f64).abs() / alone.tlb_misses as f64;
    assert!(miss_delta < 0.02, "TLB misses flat, delta {miss_delta}");
}

#[test]
fn ptemagnet_removes_fragmentation_and_improves_performance() {
    // Paper §6.1/§6.3: PTEMagnet pins fragmentation to ~1 and wins time.
    let base = quick(BenchId::Xz)
        .corunners(&[CoId::Objdet])
        .corunner_weight(4)
        .seed(2)
        .run();
    let magnet = quick(BenchId::Xz)
        .corunners(&[CoId::Objdet])
        .corunner_weight(4)
        .allocator(AllocatorKind::PteMagnet)
        .seed(2)
        .run();
    assert!(
        (magnet.host_frag - 1.0).abs() < 0.05,
        "frag {}",
        magnet.host_frag
    );
    assert!(base.host_frag > 2.0);
    assert!(
        magnet.improvement_over(&base) > 0.0,
        "PTEMagnet must not lose: {:+.2}%",
        magnet.improvement_over(&base) * 100.0
    );
    assert!(magnet.page_walk_cycles < base.page_walk_cycles);
    assert!(magnet.host_pt_cycles < base.host_pt_cycles);
}

#[test]
fn ptemagnet_never_slows_low_pressure_apps() {
    // Paper §6.1: gcc (low TLB pressure) sees 0–1 %, never a slowdown.
    let base = quick(BenchId::Gcc).corunners(&[CoId::Objdet]).seed(3).run();
    let magnet = quick(BenchId::Gcc)
        .corunners(&[CoId::Objdet])
        .allocator(AllocatorKind::PteMagnet)
        .seed(3)
        .run();
    let imp = magnet.improvement_over(&base);
    assert!(imp > -0.01, "no slowdown allowed, got {:+.2}%", imp * 100.0);
}

#[test]
fn guest_pt_fragmentation_is_always_one() {
    // Paper Figure 3: gPTEs are indexed by virtual address, so they are
    // always packed regardless of allocator or colocation.
    for alloc in [AllocatorKind::Default, AllocatorKind::PteMagnet] {
        let m = quick(BenchId::Nibble)
            .corunners(&[CoId::StressNg])
            .allocator(alloc)
            .seed(4)
            .run();
        assert!(
            (m.guest_frag - 1.0).abs() < 1e-9,
            "guest PT stays packed under {alloc}"
        );
    }
}

#[test]
fn reserved_unused_incidence_is_tiny_for_dense_benchmarks() {
    // Paper §6.2: < 0.2 % of footprint.
    let m = quick(BenchId::Bfs)
        .corunners(&[CoId::Objdet])
        .allocator(AllocatorKind::PteMagnet)
        .seed(5)
        .run();
    assert!(
        m.reserved_unused_fraction() < 0.002,
        "got {:.4}%",
        m.reserved_unused_fraction() * 100.0
    );
}

#[test]
fn ca_paging_like_baseline_sits_between_default_and_ptemagnet() {
    // §7's comparison: best-effort contiguity helps but degrades under
    // churn, while eager reservation is churn-immune.
    let frag_of = |kind| {
        quick(BenchId::Pagerank)
            .corunners(&[CoId::Objdet])
            .corunner_weight(4)
            .allocator(kind)
            .seed(6)
            .run()
            .host_frag
    };
    let default = frag_of(AllocatorKind::Default);
    let ca = frag_of(AllocatorKind::CaPagingLike);
    let magnet = frag_of(AllocatorKind::PteMagnet);
    assert!(magnet < ca, "eager beats best-effort: {magnet} vs {ca}");
    assert!(ca < default, "best-effort beats nothing: {ca} vs {default}");
}

#[test]
fn deterministic_across_identical_seeds() {
    let a = quick(BenchId::Omnetpp)
        .corunners(&[CoId::Pyaes])
        .seed(7)
        .run();
    let b = quick(BenchId::Omnetpp)
        .corunners(&[CoId::Pyaes])
        .seed(7)
        .run();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.host_frag, b.host_frag);
    assert_eq!(a.tlb_misses, b.tlb_misses);
}
