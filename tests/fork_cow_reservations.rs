//! Integration tests for the fork/COW × reservation interaction (paper
//! §4.4), exercised through the full machine rather than the allocator in
//! isolation.

use ptemagnet_sim::magnet::ReservationAllocator;
use ptemagnet_sim::os::{Machine, MachineConfig};
use ptemagnet_sim::types::{GuestVirtAddr, GROUP_PAGES, PAGE_SIZE};

fn magnet_machine() -> Machine {
    Machine::with_allocator(
        MachineConfig::small(),
        Box::new(ReservationAllocator::new()),
    )
}

#[test]
fn child_pages_join_parent_groups() {
    let mut m = magnet_machine();
    let parent = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(parent, 8).unwrap();
    // Parent touches the first half of a group.
    for i in 0..4 {
        m.touch(
            0,
            parent,
            GuestVirtAddr::new(base.raw() + i * PAGE_SIZE),
            true,
        )
        .unwrap();
    }
    let child = m.guest_mut().fork(parent).unwrap();
    // Child touches the rest: frames come from the parent's reservation,
    // keeping the whole group contiguous.
    for i in 4..8 {
        m.touch(
            1,
            child,
            GuestVirtAddr::new(base.raw() + i * PAGE_SIZE),
            false,
        )
        .unwrap();
    }
    let child_frames: Vec<u64> = (0..8)
        .filter_map(|i| {
            m.guest()
                .process(child)
                .unwrap()
                .page_table
                .translate(GuestVirtAddr::new(base.raw() + i * PAGE_SIZE).page())
                .map(|f| f.raw())
        })
        .collect();
    assert_eq!(child_frames.len(), 8);
    assert!(
        child_frames.windows(2).all(|w| w[1] == w[0] + 1),
        "group stays contiguous across fork: {child_frames:?}"
    );
}

#[test]
fn cow_writes_keep_both_sides_consistent() {
    let mut m = magnet_machine();
    let parent = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(parent, GROUP_PAGES).unwrap();
    for i in 0..GROUP_PAGES {
        m.touch(
            0,
            parent,
            GuestVirtAddr::new(base.raw() + i * PAGE_SIZE),
            true,
        )
        .unwrap();
    }
    let child = m.guest_mut().fork(parent).unwrap();

    // Child writes every page: all COW-broken into private frames.
    for i in 0..GROUP_PAGES {
        let out = m
            .touch(
                1,
                child,
                GuestVirtAddr::new(base.raw() + i * PAGE_SIZE),
                true,
            )
            .unwrap();
        assert!(out.cow_break, "page {i} must copy");
    }
    // Parent then writes: sole owner everywhere, no copies.
    for i in 0..GROUP_PAGES {
        let out = m
            .touch(
                0,
                parent,
                GuestVirtAddr::new(base.raw() + i * PAGE_SIZE),
                true,
            )
            .unwrap();
        assert!(!out.cow_break, "page {i} needs no copy");
    }
    // Both can exit cleanly with all memory accounted for.
    let total = m.guest().buddy().total_frames();
    m.exit(child).unwrap();
    m.exit(parent).unwrap();
    assert_eq!(m.guest().buddy().free_frames(), total);
}

#[test]
fn grandchildren_inherit_reservation_chains() {
    let mut m = magnet_machine();
    let a = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(a, 8).unwrap();
    m.touch(0, a, GuestVirtAddr::new(base.raw()), true).unwrap();
    let b = m.guest_mut().fork(a).unwrap();
    let c = m.guest_mut().fork(b).unwrap();
    // The grandchild faults page 1: served from the grandparent's
    // reservation through the inheritance chain.
    let out = m
        .touch(1, c, GuestVirtAddr::new(base.raw() + PAGE_SIZE), false)
        .unwrap();
    assert!(out.faulted);
    let f0 = m
        .guest()
        .process(a)
        .unwrap()
        .page_table
        .translate(base.page())
        .unwrap();
    let f1 = m
        .guest()
        .process(c)
        .unwrap()
        .page_table
        .translate(GuestVirtAddr::new(base.raw() + PAGE_SIZE).page())
        .unwrap();
    assert_eq!(f1.raw(), f0.raw() + 1, "chain-inherited grant is adjacent");
}

#[test]
fn exit_releases_reservations_under_colocation() {
    let mut m = magnet_machine();
    let keeper = m.guest_mut().spawn();
    let leaver = m.guest_mut().spawn();
    let kb = m.guest_mut().mmap(keeper, 64).unwrap();
    let lb = m.guest_mut().mmap(leaver, 64).unwrap();
    for i in 0..64 {
        m.touch(
            0,
            keeper,
            GuestVirtAddr::new(kb.raw() + i * PAGE_SIZE),
            true,
        )
        .unwrap();
        // The leaver touches sparsely: every 8th page -> big reservations.
        if i % 8 == 0 {
            m.touch(
                1,
                leaver,
                GuestVirtAddr::new(lb.raw() + i * PAGE_SIZE),
                true,
            )
            .unwrap();
        }
    }
    let unused_before = m.guest().allocator().reserved_unused_frames();
    assert!(unused_before >= 7 * 8);
    m.exit(leaver).unwrap();
    // The keeper is untouched, and the leaver's reservations are gone.
    assert_eq!(m.guest().allocator().reserved_unused_frames(), 0);
    assert_eq!(m.guest().process(keeper).unwrap().rss_pages, 64);
    // Keeper's layout is still perfectly packed.
    assert!((m.host_pt_fragmentation(keeper).unwrap().mean() - 1.0).abs() < 1e-9);
}
