//! End-to-end trace record/replay determinism: replaying a recorded trace
//! through the full machine produces exactly the state and metrics the
//! live generator produced — including after a text round trip.

use ptemagnet_sim::os::{Machine, MachineConfig};
use ptemagnet_sim::sim::Colocation;
use ptemagnet_sim::workloads::{benchmark, BenchId, RecordedTrace, Workload};

/// Runs `workload` alone for `ops` steady ops; returns (cycles, tlb misses,
/// host frag ×1000 rounded) as a comparable fingerprint.
fn fingerprint(workload: Box<dyn Workload>, ops: u64) -> (u64, u64, u64) {
    let machine = Machine::new(MachineConfig::paper(1, 128));
    let mut colo = Colocation::new(machine);
    let idx = colo.add_app(workload, 1);
    colo.run_until_steady(idx).unwrap();
    colo.machine_mut().reset_measurement();
    colo.run_ops(idx, ops, |_| {}).unwrap();
    let pid = colo.pid(idx);
    let frag = colo.machine().host_pt_fragmentation(pid).unwrap().mean();
    (
        colo.cycles(idx),
        colo.machine().tlb(colo.core(idx)).misses(),
        (frag * 1000.0).round() as u64,
    )
}

#[test]
fn replay_reproduces_the_live_run_exactly() {
    let ops = 4_000u64;
    let live = fingerprint(Box::new(benchmark(BenchId::Gcc, 9)), ops);

    // Record enough steady ops to cover the measured window.
    let mut source = benchmark(BenchId::Gcc, 9);
    let trace = RecordedTrace::record(&mut source, (ops as usize) + 100);
    let replayed = fingerprint(Box::new(trace.clone()), ops);
    assert_eq!(live, replayed, "replay must be bit-identical to live");

    // And surviving a serialization round trip changes nothing.
    let round_tripped = RecordedTrace::from_text(&trace.to_text()).unwrap();
    let replayed2 = fingerprint(Box::new(round_tripped), ops);
    assert_eq!(live, replayed2);
}

#[test]
fn replay_loops_beyond_the_recorded_window() {
    // Measuring *more* ops than were recorded works: the steady section
    // loops. The fingerprint differs from live (the loop repeats itself)
    // but execution must stay valid and in-bounds.
    let mut source = benchmark(BenchId::Gcc, 10);
    let trace = RecordedTrace::record(&mut source, 500);
    let (cycles, misses, _) = fingerprint(Box::new(trace), 5_000);
    assert!(cycles > 0);
    assert!(misses > 0);
}
