//! Randomized long-running stress test of the whole stack: many processes,
//! every allocator, fork storms, huge pages, reclamation, and swap targets,
//! with global invariants checked throughout.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ptemagnet_sim::magnet::{ReclaimDaemon, ReservationAllocator, ThpAllocator};
use ptemagnet_sim::os::{DefaultAllocator, GuestFrameAllocator, Machine, MachineConfig, Pid};
use ptemagnet_sim::types::{GuestFrame, GuestVirtAddr, MemError, PAGE_SIZE};

fn stress(allocator: Box<dyn GuestFrameAllocator>, seed: u64, steps: u32) {
    let mut config = MachineConfig::small();
    config.guest_frames = 1 << 14;
    let total = config.guest_frames;
    let mut m = Machine::with_allocator(config, allocator);
    let mut rng = StdRng::seed_from_u64(seed);
    // (pid, base, pages) of live processes.
    let mut procs: Vec<(Pid, GuestVirtAddr, u64)> = Vec::new();

    for step in 0..steps {
        match rng.random_range(0..100u32) {
            // Spawn with a fresh VMA.
            0..=4 => {
                if procs.len() < 6 {
                    let pid = m.guest_mut().spawn();
                    let pages = rng.random_range(64..1536);
                    let va = m.guest_mut().mmap(pid, pages).unwrap();
                    procs.push((pid, va, pages));
                }
            }
            // Fork a random process.
            5..=7 => {
                if let Some(&(pid, va, pages)) = pick(&mut rng, &procs) {
                    if procs.len() < 8 {
                        if let Ok(child) = m.guest_mut().fork(pid) {
                            procs.push((child, va, pages));
                        }
                    }
                }
            }
            // Exit a random process.
            8..=9 => {
                if procs.len() > 1 {
                    let idx = rng.random_range(0..procs.len());
                    let (pid, _, _) = procs.remove(idx);
                    m.exit(pid).unwrap();
                }
            }
            // Reclaim under synthetic pressure.
            10 => {
                ReclaimDaemon::new(0.5).run(m.guest_mut());
            }
            // Swap-target a random frame.
            11..=12 => {
                let gfn = GuestFrame::new(rng.random_range(0..total));
                m.guest_mut().swap_target(gfn);
            }
            // Touch memory (the common case).
            _ => {
                if let Some(&(pid, va, pages)) = pick(&mut rng, &procs) {
                    let page = rng.random_range(0..pages);
                    let addr = GuestVirtAddr::new(va.raw() + page * PAGE_SIZE);
                    let write = rng.random_bool(0.4);
                    let core = (pid.0 % 2) as usize;
                    match m.touch(core, pid, addr, write) {
                        Ok(_) => {}
                        Err(MemError::OutOfMemory { .. }) => {
                            // Relieve pressure and carry on.
                            m.guest_mut().reclaim_reservations(256);
                        }
                        Err(e) => panic!("unexpected error at step {step}: {e}"),
                    }
                }
            }
        }
        if step % 256 == 0 {
            assert!(
                m.guest().buddy().check_invariants(),
                "buddy broke at {step}"
            );
        }
    }

    // Teardown: everything comes back.
    for (pid, _, _) in procs {
        m.exit(pid).unwrap();
    }
    assert_eq!(
        m.guest().buddy().free_frames(),
        total,
        "frames leaked under stress"
    );
    assert_eq!(m.guest().allocator().reserved_unused_frames(), 0);
}

fn pick<'a, T>(rng: &mut StdRng, items: &'a [T]) -> Option<&'a T> {
    if items.is_empty() {
        None
    } else {
        Some(&items[rng.random_range(0..items.len())])
    }
}

#[test]
fn stress_default_allocator() {
    stress(Box::new(DefaultAllocator::new()), 11, 6_000);
}

#[test]
fn stress_ptemagnet_allocator() {
    stress(Box::new(ReservationAllocator::new()), 22, 6_000);
}

#[test]
fn stress_thp_allocator() {
    stress(Box::new(ThpAllocator::new()), 33, 6_000);
}
