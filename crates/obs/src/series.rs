//! Epoch time series: an ordered collection of registry snapshots.
//!
//! The engine captures a snapshot every N measured ops, turning end-of-run
//! aggregates into trajectories (fragmentation over time, reservation hit
//! rate over time, walk latency over time).

use crate::metric::{Delta, Snapshot, Value};
use serde::{Deserialize, Serialize};

/// Snapshots in capture order (ops monotonically non-decreasing).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    pub samples: Vec<Snapshot>,
}

impl TimeSeries {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, sample: Snapshot) {
        debug_assert!(
            self.samples.last().is_none_or(|s| s.op <= sample.op),
            "time series ops must be monotonic"
        );
        self.samples.push(sample);
    }

    pub fn len(&self) -> usize {
        self.samples.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    pub fn first(&self) -> Option<&Snapshot> {
        self.samples.first()
    }

    pub fn last(&self) -> Option<&Snapshot> {
        self.samples.last()
    }

    /// The trajectory of one metric as `(op, value)` points (samples missing
    /// the metric are skipped).
    pub fn track(&self, name: &str) -> Vec<(u64, f64)> {
        self.samples
            .iter()
            .filter_map(|s| s.get(name).map(|v| (s.op, v.as_f64())))
            .collect()
    }

    /// Delta between first and last sample (`None` with < 2 samples).
    pub fn overall_delta(&self) -> Option<Delta> {
        match (self.samples.first(), self.samples.last()) {
            (Some(first), Some(last)) if self.samples.len() >= 2 => Some(last.delta(first)),
            _ => None,
        }
    }

    /// CSV with `op` first and the union of metric names (sorted) as
    /// columns; samples missing a metric leave the cell empty.
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;
        let mut names: Vec<&str> = Vec::new();
        for s in &self.samples {
            for n in s.names() {
                if let Err(i) = names.binary_search(&n) {
                    names.insert(i, n);
                }
            }
        }
        let mut out = String::from("op");
        for n in &names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for s in &self.samples {
            let _ = write!(out, "{}", s.op);
            for n in &names {
                out.push(',');
                match s.get(n) {
                    Some(Value::U64(v)) => {
                        let _ = write!(out, "{v}");
                    }
                    Some(Value::F64(v)) => {
                        let _ = write!(out, "{v}");
                    }
                    None => {}
                }
            }
            out.push('\n');
        }
        out
    }

    /// JSON array of per-sample objects (see [`Snapshot::to_json`]).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::Registry;

    fn snap(op: u64, v: u64) -> Snapshot {
        let mut reg = Registry::new();
        reg.gauge_u64("x.count", v);
        reg.gauge_f64("x.rate", v as f64 * 0.5);
        reg.snapshot(op)
    }

    #[test]
    fn track_extracts_trajectory() {
        let mut ts = TimeSeries::new();
        ts.push(snap(0, 1));
        ts.push(snap(100, 4));
        ts.push(snap(200, 9));
        assert_eq!(ts.track("x.count"), vec![(0, 1.0), (100, 4.0), (200, 9.0)]);
        assert!(ts.track("missing").is_empty());
    }

    #[test]
    fn overall_delta_spans_the_run() {
        let mut ts = TimeSeries::new();
        assert!(ts.overall_delta().is_none());
        ts.push(snap(0, 1));
        assert!(ts.overall_delta().is_none());
        ts.push(snap(300, 7));
        let d = ts.overall_delta().unwrap();
        assert_eq!(d.ops, 300);
        assert_eq!(d.get("x.count"), Some(6.0));
    }

    #[test]
    fn csv_has_header_plus_one_row_per_sample() {
        let mut ts = TimeSeries::new();
        ts.push(snap(0, 1));
        ts.push(snap(50, 2));
        let csv = ts.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "op,x.count,x.rate");
        assert_eq!(lines[1], "0,1,0.5");
        assert_eq!(lines[2], "50,2,1");
    }

    #[test]
    fn json_is_a_parseable_array() {
        let mut ts = TimeSeries::new();
        ts.push(snap(0, 1));
        ts.push(snap(10, 2));
        let doc = crate::json::parse(&ts.to_json()).unwrap();
        assert_eq!(doc.as_arr().unwrap().len(), 2);
    }
}
