//! `vmsim-obs` — unified observability layer for the PTEMagnet simulator.
//!
//! Four pillars, all usable independently:
//!
//! 1. **Metrics registry** ([`metric`]): every stats struct in the simulator
//!    implements [`MetricSource`]; a [`Registry`] collects them into an
//!    owned, sorted [`Snapshot`] stamped with the sim-op clock, and
//!    [`delta`] diffs two snapshots. Snapshots export as JSON or CSV.
//! 2. **Event tracer** ([`trace`]): a bounded ring buffer of typed events
//!    ([`EventKind`]) with JSONL export. Hot paths gate emission on
//!    `Option<Tracer>`, so the disabled path is a single branch and the
//!    simulation outcome is identical with tracing on or off.
//! 3. **Epoch time series** ([`series`]): the engine snapshots the registry
//!    every N ops, yielding trajectories instead of endpoints.
//! 4. **Phase profiler** ([`prof`]): hierarchical spans with static phase
//!    IDs accumulating simulated cycles and wall-clock self-time per
//!    phase, exported as profile JSON and folded stacks. Gated on
//!    `Option<Profiler>` like the tracer, so disabled costs one branch.
//!
//! The crate is dependency-free apart from the (vendored) `serde` marker
//! derives and includes a minimal JSON parser ([`json`]) used for schema
//! sanity checks of its own output.

pub mod json;
pub mod metric;
pub mod prof;
pub mod series;
pub mod trace;

pub use metric::{delta, Delta, Metric, MetricSource, Registry, Snapshot, Value};
pub use prof::{Phase, PhaseProfile, PhaseTotals, Profiler, PHASE_COUNT};
pub use series::TimeSeries;
pub use trace::{Event, EventKind, Tracer, DEFAULT_CAPACITY};

/// Compile-time proof that the vendored serde derive emits real marker
/// impls (a regression here breaks `T: Serialize` bounds downstream).
#[allow(dead_code)]
fn assert_serde_impls() {
    fn serializable<T: serde::Serialize>() {}
    fn deserializable<T: serde::de::DeserializeOwned>() {}
    serializable::<Snapshot>();
    serializable::<Delta>();
    serializable::<Event>();
    serializable::<TimeSeries>();
    serializable::<PhaseProfile>();
    deserializable::<Snapshot>();
    deserializable::<Event>();
    deserializable::<PhaseProfile>();
}
