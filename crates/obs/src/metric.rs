//! Metrics registry: one `MetricSource` trait unifying every stats struct in
//! the simulator, plus `Snapshot`/`Delta` with JSON and CSV export.
//!
//! A source emits flat `name → value` pairs; the registry namespaces them
//! with a per-source group prefix (`"guest_buddy.splits"`), collects them
//! into an owned, sorted [`Snapshot`] stamped with the simulated-op clock,
//! and supports `delta(a, b)` between two snapshots of the same machine.

use crate::json;
use serde::{Deserialize, Serialize};

/// A metric value: monotonic/gauge counters are `U64`, derived ratios `F64`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Value {
    U64(u64),
    F64(f64),
}

impl Value {
    pub fn as_f64(self) -> f64 {
        match self {
            Value::U64(v) => v as f64,
            Value::F64(v) => v,
        }
    }

    pub fn as_u64(self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(v),
            Value::F64(_) => None,
        }
    }

    fn write_json(self, out: &mut String) {
        match self {
            Value::U64(v) => {
                use std::fmt::Write as _;
                let _ = write!(out, "{v}");
            }
            Value::F64(v) => json::write_f64(out, v),
        }
    }
}

/// One named metric.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Metric {
    pub name: String,
    pub value: Value,
}

impl Metric {
    pub fn u64(name: impl Into<String>, value: u64) -> Self {
        Metric {
            name: name.into(),
            value: Value::U64(value),
        }
    }

    pub fn f64(name: impl Into<String>, value: f64) -> Self {
        Metric {
            name: name.into(),
            value: Value::F64(value),
        }
    }
}

/// Anything that can report itself as labelled metric kv-pairs.
///
/// Implemented by every stats struct in the simulator (`MemCounters`,
/// `PtStats`, `BuddyStats`, `ReservationStats`, `PartStats`, `HostStats`,
/// `GuestStats`, plus `Histogram` summaries). Names are flat and local to
/// the source; the registry prefixes them with a group name.
pub trait MetricSource {
    /// Default group prefix for this source (a registry may override it).
    fn source_name(&self) -> &'static str;

    /// Emit `(name, value)` pairs. Names must be unique within one source.
    fn emit(&self, out: &mut Vec<Metric>);
}

/// Collects metrics from sources into a [`Snapshot`].
#[derive(Default)]
pub struct Registry {
    metrics: Vec<Metric>,
    scratch: Vec<Metric>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a source under its default group prefix.
    pub fn record(&mut self, source: &dyn MetricSource) {
        self.record_as(source.source_name(), source);
    }

    /// Record a source under an explicit group prefix (needed when the same
    /// struct type appears twice, e.g. guest and host buddy allocators).
    pub fn record_as(&mut self, group: &str, source: &dyn MetricSource) {
        self.scratch.clear();
        source.emit(&mut self.scratch);
        for m in self.scratch.drain(..) {
            self.metrics.push(Metric {
                name: format!("{group}.{}", m.name),
                value: m.value,
            });
        }
    }

    /// Record a single free-standing u64 gauge.
    pub fn gauge_u64(&mut self, name: impl Into<String>, value: u64) {
        self.metrics.push(Metric::u64(name, value));
    }

    /// Record a single free-standing f64 gauge.
    pub fn gauge_f64(&mut self, name: impl Into<String>, value: f64) {
        self.metrics.push(Metric::f64(name, value));
    }

    /// Finish collection and diff against an earlier snapshot of the
    /// same machine in one step: `reg.delta_since(op, &base)` is
    /// `reg.snapshot(op).delta(&base)` without naming the intermediate.
    pub fn delta_since(self, op: u64, base: &Snapshot) -> Delta {
        self.snapshot(op).delta(base)
    }

    /// Finish collection: sort by name and stamp with the sim-op clock.
    pub fn snapshot(mut self, op: u64) -> Snapshot {
        self.metrics.sort_by(|a, b| a.name.cmp(&b.name));
        debug_assert!(
            self.metrics.windows(2).all(|w| w[0].name != w[1].name),
            "duplicate metric name in registry"
        );
        Snapshot {
            op,
            metrics: self.metrics,
        }
    }
}

/// An owned, name-sorted set of metrics at one point in simulated time.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Simulated-op clock at capture time (monotonic within a run).
    pub op: u64,
    /// Metrics sorted by name.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// Look up a metric by full name (binary search over the sorted vec).
    pub fn get(&self, name: &str) -> Option<Value> {
        self.metrics
            .binary_search_by(|m| m.name.as_str().cmp(name))
            .ok()
            .map(|i| self.metrics[i].value)
    }

    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.iter().map(|m| m.name.as_str())
    }

    /// Metric names matching a `group.` prefix.
    pub fn group(&self, prefix: &str) -> impl Iterator<Item = &Metric> + '_ {
        let want = format!("{prefix}.");
        self.metrics
            .iter()
            .filter(move |m| m.name.starts_with(&want))
    }

    /// Per-metric difference `self − earlier` (union of names, absent
    /// metrics treated as 0; all deltas are f64 so gauges may go negative).
    pub fn delta(&self, earlier: &Snapshot) -> Delta {
        delta(earlier, self)
    }

    /// Serialize as a single-line JSON object:
    /// `{"op": N, "metrics": {"name": value, ...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.metrics.len() * 24);
        use std::fmt::Write as _;
        let _ = write!(out, "{{\"op\":{},\"metrics\":{{", self.op);
        for (i, m) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, &m.name);
            out.push(':');
            m.value.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Render one `group.`-prefixed gauge group as a flat JSON object
    /// with the prefix stripped: `{"accepted": 3, "queue_depth": 1}`.
    /// Lets a hand-built JSON line embed a single group (the serve
    /// health probe reports the `serve.*` gauges this way).
    pub fn group_json(&self, prefix: &str) -> String {
        let mut out = String::from("{");
        for (i, m) in self.group(prefix).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            json::write_str(&mut out, &m.name[prefix.len() + 1..]);
            out.push_str(": ");
            m.value.write_json(&mut out);
        }
        out.push('}');
        out
    }

    /// CSV header (`op` first, then metric names in sorted order).
    pub fn csv_header(&self) -> String {
        let mut out = String::from("op");
        for m in &self.metrics {
            out.push(',');
            out.push_str(&m.name);
        }
        out
    }

    /// CSV row matching [`Snapshot::csv_header`].
    pub fn csv_row(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{}", self.op);
        for m in &self.metrics {
            out.push(',');
            match m.value {
                Value::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::F64(v) => {
                    let _ = write!(out, "{v}");
                }
            }
        }
        out
    }
}

/// A per-metric difference between two snapshots of the same machine.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Delta {
    /// Ops elapsed between the two snapshots.
    pub ops: u64,
    /// `(name, later − earlier)` sorted by name.
    pub changes: Vec<(String, f64)>,
}

impl Delta {
    pub fn get(&self, name: &str) -> Option<f64> {
        self.changes
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.changes[i].1)
    }

    /// Only the metrics whose value actually changed.
    pub fn nonzero(&self) -> impl Iterator<Item = (&str, f64)> {
        self.changes
            .iter()
            .filter(|(_, d)| *d != 0.0)
            .map(|(n, d)| (n.as_str(), *d))
    }
}

/// Difference `b − a` over the union of metric names (absent names count
/// as 0 on the missing side).
pub fn delta(a: &Snapshot, b: &Snapshot) -> Delta {
    let mut changes = Vec::with_capacity(b.metrics.len());
    let (mut i, mut j) = (0, 0);
    while i < a.metrics.len() || j < b.metrics.len() {
        let order = match (a.metrics.get(i), b.metrics.get(j)) {
            (Some(ma), Some(mb)) => ma.name.as_str().cmp(mb.name.as_str()),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => break,
        };
        match order {
            std::cmp::Ordering::Less => {
                let ma = &a.metrics[i];
                changes.push((ma.name.clone(), -ma.value.as_f64()));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                let mb = &b.metrics[j];
                changes.push((mb.name.clone(), mb.value.as_f64()));
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                let (ma, mb) = (&a.metrics[i], &b.metrics[j]);
                changes.push((mb.name.clone(), mb.value.as_f64() - ma.value.as_f64()));
                i += 1;
                j += 1;
            }
        }
    }
    Delta {
        ops: b.op.saturating_sub(a.op),
        changes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake(u64);
    impl MetricSource for Fake {
        fn source_name(&self) -> &'static str {
            "fake"
        }
        fn emit(&self, out: &mut Vec<Metric>) {
            out.push(Metric::u64("count", self.0));
            out.push(Metric::f64("rate", self.0 as f64 / 2.0));
        }
    }

    fn snap(v: u64, op: u64) -> Snapshot {
        let mut reg = Registry::new();
        reg.record(&Fake(v));
        reg.snapshot(op)
    }

    #[test]
    fn registry_prefixes_and_sorts() {
        let mut reg = Registry::new();
        reg.record(&Fake(3));
        reg.record_as("other", &Fake(9));
        reg.gauge_u64("zz.last", 1);
        let s = reg.snapshot(100);
        assert_eq!(s.op, 100);
        assert_eq!(s.get("fake.count"), Some(Value::U64(3)));
        assert_eq!(s.get("other.count"), Some(Value::U64(9)));
        assert_eq!(s.get("zz.last"), Some(Value::U64(1)));
        assert!(s.names().zip(s.names().skip(1)).all(|(a, b)| a < b));
        assert_eq!(s.group("fake").count(), 2);
    }

    #[test]
    fn delta_diffs_matching_names() {
        let d = snap(10, 500).delta(&snap(4, 100));
        assert_eq!(d.ops, 400);
        assert_eq!(d.get("fake.count"), Some(6.0));
        assert_eq!(d.get("fake.rate"), Some(3.0));
        assert_eq!(d.nonzero().count(), 2);
    }

    #[test]
    fn delta_since_matches_snapshot_then_delta() {
        let base = snap(4, 100);
        let mut reg = Registry::new();
        reg.record(&Fake(10));
        let d = reg.delta_since(500, &base);
        assert_eq!(d, snap(10, 500).delta(&base));
        assert_eq!(d.ops, 400);
        assert_eq!(d.get("fake.count"), Some(6.0));
    }

    #[test]
    fn delta_unions_disjoint_names() {
        let mut ra = Registry::new();
        ra.gauge_u64("only_a", 5);
        let mut rb = Registry::new();
        rb.gauge_u64("only_b", 7);
        let d = delta(&ra.snapshot(0), &rb.snapshot(10));
        assert_eq!(d.get("only_a"), Some(-5.0));
        assert_eq!(d.get("only_b"), Some(7.0));
    }

    #[test]
    fn snapshot_json_round_trips() {
        let s = snap(3, 42);
        let doc = crate::json::parse(&s.to_json()).unwrap();
        assert_eq!(doc.get("op").unwrap().as_u64(), Some(42));
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(metrics.get("fake.count").unwrap().as_u64(), Some(3));
        assert_eq!(metrics.get("fake.rate").unwrap().as_f64(), Some(1.5));
    }

    #[test]
    fn csv_header_and_row_align() {
        let s = snap(3, 42);
        assert_eq!(s.csv_header(), "op,fake.count,fake.rate");
        assert_eq!(s.csv_row(), "42,3,1.5");
    }
}
