//! Typed event tracing with a bounded ring buffer and JSONL export.
//!
//! The tracer is opt-in per machine: hot paths hold an `Option<Tracer>` and
//! emit only after an `is_some()` check, so the disabled path costs one
//! branch and allocates nothing — keeping parallel runs deterministic and
//! `RunMetrics` bit-identical whether or not a tracer is installed.

use crate::json;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt::Write as _;

/// A typed simulator event. Field meanings:
/// `pid` — guest process id; `vpn` — guest virtual page number;
/// `gfn` — guest frame number; cycle costs are simulated cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A guest page fault was served (minor fault or CoW break).
    PageFault {
        pid: u64,
        vpn: u64,
        gfn: u64,
        huge: bool,
    },
    /// A fault was served by creating a new reservation (PTEMagnet only).
    ReservationTake { pid: u64, vpn: u64, gfn: u64 },
    /// A fault was served from an existing reservation.
    ReservationHit { pid: u64, vpn: u64, gfn: u64 },
    /// Reclaim released this many reserved-but-unused frames.
    ReservationReclaim { frames: u64 },
    /// One nested page walk: levels touched, total cycles, PWC-skipped levels.
    PtWalk {
        levels: u32,
        cycles: u64,
        pwc_hits: u32,
    },
    /// Buddy allocator split events since the previous observation.
    BuddySplit { count: u64 },
    /// Buddy allocator merge events since the previous observation.
    BuddyMerge { count: u64 },
    /// A transparent-huge-page region was mapped as one huge page.
    ThpCollapse { pid: u64, vpn: u64 },
    /// The fault injector denied buddy allocations while serving this op:
    /// contiguous-chunk (order ≥ 1) and single-frame (order 0) denials.
    FaultInjected {
        chunk_denials: u64,
        oom_denials: u64,
    },
    /// A scheduled fragmentation shock shattered the guest free lists down
    /// to `max_order`, performing `splits` block splits.
    FragShock { max_order: u32, splits: u64 },
    /// A scheduled reclaim storm released this many reserved-unused frames.
    ReclaimStorm { frames: u64 },
    /// The host targeted a reserved-unused frame for swap-out; the covering
    /// reservation released this many frames.
    SwapOut { gfn: u64, frames: u64 },
    /// A reservation degraded to a single-frame fallback allocation
    /// (no aligned chunk available, or the chunk allocation was denied).
    ReservationFallback { pid: u64, vpn: u64, gfn: u64 },
    /// An injected OOM was absorbed: reclaim freed `reclaimed` frames and
    /// the faulting allocation was retried with injection suppressed.
    OomRetry { reclaimed: u64 },
    /// The supervisor quarantined a matrix cell after all `attempts`
    /// attempts failed; the cell is reported with its typed error.
    CellQuarantined { cell: u64, attempts: u32 },
    /// The supervisor retried a quarantined cell (this is attempt number
    /// `attempt`, counting the first run as attempt 0).
    CellRetried { cell: u64, attempt: u32 },
    /// `vmsim run --resume` skipped this many already-journaled cells.
    RunResumed { cells: u64 },
    /// A guest VM (re)booted on the host; `boot` counts boots of this slot.
    VmBoot { vm: u32, boot: u64 },
    /// A guest VM was killed; `frames` host frames were released.
    VmKill { vm: u32, frames: u64 },
    /// A balloon operation moved `frames` frames between a guest and the
    /// host pool (`inflate` true = guest gave memory back to the host).
    Balloon { vm: u32, frames: u64, inflate: bool },
}

impl EventKind {
    /// Stable schema name for the `"event"` JSONL field.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PageFault { .. } => "page_fault",
            EventKind::ReservationTake { .. } => "reservation_take",
            EventKind::ReservationHit { .. } => "reservation_hit",
            EventKind::ReservationReclaim { .. } => "reservation_reclaim",
            EventKind::PtWalk { .. } => "pt_walk",
            EventKind::BuddySplit { .. } => "buddy_split",
            EventKind::BuddyMerge { .. } => "buddy_merge",
            EventKind::ThpCollapse { .. } => "thp_collapse",
            EventKind::FaultInjected { .. } => "fault_injected",
            EventKind::FragShock { .. } => "frag_shock",
            EventKind::ReclaimStorm { .. } => "reclaim_storm",
            EventKind::SwapOut { .. } => "swap_out",
            EventKind::ReservationFallback { .. } => "reservation_fallback",
            EventKind::OomRetry { .. } => "oom_retry",
            EventKind::CellQuarantined { .. } => "cell_quarantined",
            EventKind::CellRetried { .. } => "cell_retried",
            EventKind::RunResumed { .. } => "run_resumed",
            EventKind::VmBoot { .. } => "vm_boot",
            EventKind::VmKill { .. } => "vm_kill",
            EventKind::Balloon { .. } => "balloon",
        }
    }

    fn write_fields(&self, out: &mut String) {
        match *self {
            EventKind::PageFault {
                pid,
                vpn,
                gfn,
                huge,
            } => {
                let _ = write!(
                    out,
                    ",\"pid\":{pid},\"vpn\":{vpn},\"gfn\":{gfn},\"huge\":{huge}"
                );
            }
            EventKind::ReservationTake { pid, vpn, gfn }
            | EventKind::ReservationHit { pid, vpn, gfn } => {
                let _ = write!(out, ",\"pid\":{pid},\"vpn\":{vpn},\"gfn\":{gfn}");
            }
            EventKind::ReservationReclaim { frames } => {
                let _ = write!(out, ",\"frames\":{frames}");
            }
            EventKind::PtWalk {
                levels,
                cycles,
                pwc_hits,
            } => {
                let _ = write!(
                    out,
                    ",\"levels\":{levels},\"cycles\":{cycles},\"pwc_hits\":{pwc_hits}"
                );
            }
            EventKind::BuddySplit { count } | EventKind::BuddyMerge { count } => {
                let _ = write!(out, ",\"count\":{count}");
            }
            EventKind::ThpCollapse { pid, vpn } => {
                let _ = write!(out, ",\"pid\":{pid},\"vpn\":{vpn}");
            }
            EventKind::FaultInjected {
                chunk_denials,
                oom_denials,
            } => {
                let _ = write!(
                    out,
                    ",\"chunk_denials\":{chunk_denials},\"oom_denials\":{oom_denials}"
                );
            }
            EventKind::FragShock { max_order, splits } => {
                let _ = write!(out, ",\"max_order\":{max_order},\"splits\":{splits}");
            }
            EventKind::ReclaimStorm { frames } => {
                let _ = write!(out, ",\"frames\":{frames}");
            }
            EventKind::SwapOut { gfn, frames } => {
                let _ = write!(out, ",\"gfn\":{gfn},\"frames\":{frames}");
            }
            EventKind::ReservationFallback { pid, vpn, gfn } => {
                let _ = write!(out, ",\"pid\":{pid},\"vpn\":{vpn},\"gfn\":{gfn}");
            }
            EventKind::OomRetry { reclaimed } => {
                let _ = write!(out, ",\"reclaimed\":{reclaimed}");
            }
            EventKind::CellQuarantined { cell, attempts } => {
                let _ = write!(out, ",\"cell\":{cell},\"attempts\":{attempts}");
            }
            EventKind::CellRetried { cell, attempt } => {
                let _ = write!(out, ",\"cell\":{cell},\"attempt\":{attempt}");
            }
            EventKind::RunResumed { cells } => {
                let _ = write!(out, ",\"cells\":{cells}");
            }
            EventKind::VmBoot { vm, boot } => {
                let _ = write!(out, ",\"vm\":{vm},\"boot\":{boot}");
            }
            EventKind::VmKill { vm, frames } => {
                let _ = write!(out, ",\"vm\":{vm},\"frames\":{frames}");
            }
            EventKind::Balloon {
                vm,
                frames,
                inflate,
            } => {
                let _ = write!(
                    out,
                    ",\"vm\":{vm},\"frames\":{frames},\"inflate\":{inflate}"
                );
            }
        }
    }
}

/// An event stamped with the monotonic simulated-op clock.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Event {
    pub op: u64,
    pub kind: EventKind,
}

impl Event {
    /// One JSONL line: `{"op":N,"event":"kind",...fields}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        let _ = write!(out, "{{\"op\":{},\"event\":", self.op);
        json::write_str(&mut out, self.kind.name());
        self.kind.write_fields(&mut out);
        out.push('}');
        out
    }
}

/// Bounded ring buffer of [`Event`]s.
///
/// When full, the oldest events are evicted and counted in
/// [`Tracer::dropped`], so a long run keeps its most recent window.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// Default ring capacity (events kept) when none is specified.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

impl Tracer {
    /// Tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// Tracer keeping at most `capacity` events (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Record an event at simulated-op time `op`.
    pub fn emit(&mut self, op: u64, kind: EventKind) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event { op, kind });
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Count of retained events matching a kind name.
    pub fn count_kind(&self, name: &str) -> usize {
        self.buf.iter().filter(|e| e.kind.name() == name).count()
    }

    /// Remove and return all retained events, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }

    /// All retained events as JSON Lines (one object per line, oldest first).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.buf.len() * 64);
        for event in &self.buf {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut t = Tracer::with_capacity(2);
        t.emit(1, EventKind::BuddySplit { count: 1 });
        t.emit(2, EventKind::BuddySplit { count: 2 });
        t.emit(3, EventKind::BuddySplit { count: 3 });
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 1);
        let ops: Vec<u64> = t.events().map(|e| e.op).collect();
        assert_eq!(ops, vec![2, 3]);
    }

    #[test]
    fn every_kind_serializes_to_parseable_json() {
        let kinds = [
            EventKind::PageFault {
                pid: 1,
                vpn: 2,
                gfn: 3,
                huge: false,
            },
            EventKind::ReservationTake {
                pid: 1,
                vpn: 2,
                gfn: 3,
            },
            EventKind::ReservationHit {
                pid: 1,
                vpn: 2,
                gfn: 3,
            },
            EventKind::ReservationReclaim { frames: 8 },
            EventKind::PtWalk {
                levels: 4,
                cycles: 120,
                pwc_hits: 2,
            },
            EventKind::BuddySplit { count: 5 },
            EventKind::BuddyMerge { count: 5 },
            EventKind::ThpCollapse { pid: 1, vpn: 512 },
            EventKind::FaultInjected {
                chunk_denials: 2,
                oom_denials: 1,
            },
            EventKind::FragShock {
                max_order: 0,
                splits: 42,
            },
            EventKind::ReclaimStorm { frames: 64 },
            EventKind::SwapOut { gfn: 96, frames: 7 },
            EventKind::ReservationFallback {
                pid: 1,
                vpn: 2,
                gfn: 3,
            },
            EventKind::OomRetry { reclaimed: 12 },
            EventKind::CellQuarantined {
                cell: 3,
                attempts: 2,
            },
            EventKind::CellRetried {
                cell: 3,
                attempt: 1,
            },
            EventKind::RunResumed { cells: 5 },
            EventKind::VmBoot { vm: 2, boot: 3 },
            EventKind::VmKill { vm: 2, frames: 640 },
            EventKind::Balloon {
                vm: 1,
                frames: 32,
                inflate: true,
            },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let line = Event { op: i as u64, kind }.to_json();
            let doc = crate::json::parse(&line).expect("event JSON must parse");
            assert_eq!(doc.get("op").unwrap().as_u64(), Some(i as u64));
            assert_eq!(doc.get("event").unwrap().as_str(), Some(kind.name()));
        }
    }

    #[test]
    fn jsonl_is_one_object_per_line() {
        let mut t = Tracer::new();
        t.emit(0, EventKind::ReservationReclaim { frames: 1 });
        t.emit(
            1,
            EventKind::PtWalk {
                levels: 24,
                cycles: 9,
                pwc_hits: 0,
            },
        );
        let jsonl = t.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            assert!(crate::json::parse(line).unwrap().is_obj());
        }
    }

    #[test]
    fn drain_empties_the_ring() {
        let mut t = Tracer::new();
        t.emit(7, EventKind::BuddyMerge { count: 1 });
        let events = t.drain();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, 7);
        assert!(t.is_empty());
    }
}
