//! Minimal JSON writer helpers and recursive-descent parser.
//!
//! The build environment has no `serde_json`, so the observability layer
//! hand-writes its JSON and carries its own parser for schema sanity checks
//! (the trace binary re-parses everything it emits and fails loudly on
//! malformed output). The dialect is plain RFC 8259 JSON; the writer never
//! produces NaN/infinite numbers (they are mapped to `null`).

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn is_obj(&self) -> bool {
        matches!(self, Json::Obj(_))
    }
}

/// Parse error with byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    pub pos: usize,
    pub msg: &'static str,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document; trailing whitespace is allowed, trailing
/// garbage is an error.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { pos: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pairs are not produced by our writer;
                            // lone surrogates decode to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut code = 0u32;
        for _ in 0..4 {
            let digit = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            pos: start,
            msg: "invalid number",
        })
    }
}

/// Append `s` to `out` as a JSON string literal (with surrounding quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append an `f64` as a JSON number; non-finite values become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is the shortest round-trip representation.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("false").unwrap(), Json::Bool(false));
        assert_eq!(parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Json::Num(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a": [1, 2, {"b": "x"}], "c": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Null));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn unicode_escape_decodes() {
        assert_eq!(parse("\"\\u0041b\"").unwrap().as_str(), Some("Ab"));
        assert_eq!(parse("\"é\"").unwrap().as_str(), Some("é"));
    }

    #[test]
    fn non_finite_writes_null() {
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
        out.clear();
        write_f64(&mut out, 1.5);
        assert_eq!(out, "1.5");
    }
}
