//! Phase-attributed self-profiler: hierarchical spans with static phase
//! IDs and array-indexed accumulators.
//!
//! The profiler answers "where did the cycles — simulated *and*
//! wall-clock — go?" for one run. Hot paths hold an `Option<Profiler>`
//! exactly like the event tracer: the disabled path is a single branch,
//! so a profiled run's `RunMetrics` stay bit-identical to an unprofiled
//! one. Phases form a static tree ([`Phase::parent`]); `begin`/`end`
//! accrue *self time* — the elapsed wall clock since the previous
//! transition is charged to whichever phase was on top of the stack —
//! so nested spans never double-count. Simulated cycles are charged
//! explicitly at the site that computes them ([`Profiler::add_cycles`]),
//! keeping the deterministic and wall-clock ledgers independent.
//!
//! A finished run exports a [`PhaseProfile`]: JSON for machines and a
//! flamegraph-style folded-stacks text file (`path;to;phase value`) for
//! humans. Wall numbers are informational (they vary run to run); the
//! `cycles` and `enters` columns are deterministic and safe to diff.

use crate::json;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// A static phase ID. The discriminant indexes the accumulator arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[repr(u8)]
pub enum Phase {
    /// TLB lookup on the translation fast path.
    TlbLookup = 0,
    /// Memo-table probe (fingerprint check + replay).
    MemoProbe = 1,
    /// Page-walk-cache lookups (guest and host PWC).
    Pwc = 2,
    /// The guest dimension of the 2D nested walk.
    GuestWalk = 3,
    /// Host walks resolving guest-PT and data frames (child of guest_walk).
    HostWalk = 4,
    /// Fill work after a slow walk: memo fill, TLB/PWC inserts.
    Fill = 5,
    /// Page-fault service: buddy allocation, reservations, COW breaks.
    Alloc = 6,
    /// The injected-fault driver (shocks, storms, swap-outs, daemon).
    FaultDriver = 7,
    /// Engine-side work: op generation and dispatch between touches.
    Workload = 8,
    /// Epoch sampling (registry snapshots) in the measured loop.
    Sample = 9,
}

/// Number of phases (size of the accumulator arrays).
pub const PHASE_COUNT: usize = 10;

impl Phase {
    /// Every phase, in discriminant order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::TlbLookup,
        Phase::MemoProbe,
        Phase::Pwc,
        Phase::GuestWalk,
        Phase::HostWalk,
        Phase::Fill,
        Phase::Alloc,
        Phase::FaultDriver,
        Phase::Workload,
        Phase::Sample,
    ];

    /// Stable schema name (JSON key and folded-stack frame).
    pub fn name(self) -> &'static str {
        match self {
            Phase::TlbLookup => "tlb_lookup",
            Phase::MemoProbe => "memo_probe",
            Phase::Pwc => "pwc",
            Phase::GuestWalk => "guest_walk",
            Phase::HostWalk => "host_walk",
            Phase::Fill => "fill",
            Phase::Alloc => "alloc",
            Phase::FaultDriver => "fault_driver",
            Phase::Workload => "workload",
            Phase::Sample => "sample",
        }
    }

    /// Static hierarchy for folded-stack export. PWC probes and host
    /// walks happen inside the guest walk; everything else is a root.
    pub fn parent(self) -> Option<Phase> {
        match self {
            Phase::Pwc | Phase::HostWalk => Some(Phase::GuestWalk),
            _ => None,
        }
    }

    /// Semicolon-joined path from the root to this phase
    /// (`"guest_walk;pwc"`), the folded-stacks line prefix.
    pub fn path(self) -> String {
        match self.parent() {
            Some(p) => format!("{};{}", p.path(), self.name()),
            None => self.name().to_string(),
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Accumulating span profiler for one run.
///
/// Install on a machine before the measured phase, drive it via
/// `begin`/`end`/`add_cycles` from instrumented sites, then consume it
/// with [`Profiler::finish`] to obtain the exported [`PhaseProfile`].
#[derive(Clone, Debug)]
pub struct Profiler {
    wall_ns: [u64; PHASE_COUNT],
    cycles: [u64; PHASE_COUNT],
    enters: [u64; PHASE_COUNT],
    stack: Vec<Phase>,
    last: Instant,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    pub fn new() -> Self {
        Profiler {
            wall_ns: [0; PHASE_COUNT],
            cycles: [0; PHASE_COUNT],
            enters: [0; PHASE_COUNT],
            stack: Vec::with_capacity(8),
            last: Instant::now(),
        }
    }

    /// Charge elapsed wall time to the phase currently on top (if any)
    /// and reset the accrual clock.
    #[inline]
    fn accrue(&mut self) {
        let now = Instant::now();
        if let Some(&top) = self.stack.last() {
            self.wall_ns[top.index()] +=
                u64::try_from(now.duration_since(self.last).as_nanos()).unwrap_or(u64::MAX);
        }
        self.last = now;
    }

    /// Enter a phase span. Elapsed time since the previous transition is
    /// charged to the enclosing span (self-time semantics).
    #[inline]
    pub fn begin(&mut self, phase: Phase) {
        self.accrue();
        self.enters[phase.index()] += 1;
        self.stack.push(phase);
    }

    /// Leave the innermost span, charging its trailing self-time.
    #[inline]
    pub fn end(&mut self) {
        self.accrue();
        debug_assert!(!self.stack.is_empty(), "Profiler::end without begin");
        self.stack.pop();
    }

    /// Charge simulated cycles to a phase (flat, no stack involved).
    #[inline]
    pub fn add_cycles(&mut self, phase: Phase, cycles: u64) {
        self.cycles[phase.index()] += cycles;
    }

    /// Span depth (0 when idle). Exposed for tests.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Consume the profiler into an exportable profile. `total_wall_ns`
    /// is the caller-measured wall time of the window being attributed
    /// (the unattributed remainder is reported explicitly, never
    /// invented). Any spans still open are closed and charged first.
    pub fn finish(mut self, total_wall_ns: u64) -> PhaseProfile {
        while !self.stack.is_empty() {
            self.end();
        }
        let phases = Phase::ALL
            .iter()
            .map(|&phase| PhaseTotals {
                phase,
                wall_ns: self.wall_ns[phase.index()],
                cycles: self.cycles[phase.index()],
                enters: self.enters[phase.index()],
            })
            .collect();
        PhaseProfile {
            total_wall_ns,
            phases,
        }
    }
}

/// Accumulated totals for one phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTotals {
    pub phase: Phase,
    /// Wall-clock self-time (informational; varies run to run).
    pub wall_ns: u64,
    /// Simulated cycles charged to this phase (deterministic).
    pub cycles: u64,
    /// Span entries (deterministic).
    pub enters: u64,
}

/// The exported result of one profiled run: per-phase totals plus the
/// externally measured wall time of the attributed window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Caller-measured wall time of the profiled window, in ns.
    pub total_wall_ns: u64,
    /// Totals for every phase, in discriminant order.
    pub phases: Vec<PhaseTotals>,
}

impl PhaseProfile {
    /// Totals for one phase.
    pub fn get(&self, phase: Phase) -> &PhaseTotals {
        &self.phases[phase.index()]
    }

    /// Wall time attributed to named phases.
    pub fn attributed_wall_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.wall_ns).sum()
    }

    /// Measured wall time not covered by any span (clock skew between
    /// the caller's stopwatch and span accrual can make attribution
    /// slightly exceed the total; that clamps to 0).
    pub fn unattributed_wall_ns(&self) -> u64 {
        self.total_wall_ns.saturating_sub(self.attributed_wall_ns())
    }

    /// Fraction of the measured window attributed to named phases,
    /// clamped to 1.0. Returns 1.0 for an empty (zero-length) window.
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_wall_ns == 0 {
            return 1.0;
        }
        (self.attributed_wall_ns() as f64 / self.total_wall_ns as f64).min(1.0)
    }

    /// Single-line JSON object:
    /// `{"schema":"vmsim-profile-v1","total_wall_ns":N,...,"phases":{...}}`.
    /// Phase objects carry deterministic `cycles`/`enters` alongside the
    /// informational `wall_ns`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.phases.len() * 64);
        let _ = write!(
            out,
            "{{\"schema\":\"vmsim-profile-v1\",\"total_wall_ns\":{},\
             \"attributed_wall_ns\":{},\"unattributed_wall_ns\":{},\"phases\":{{",
            self.total_wall_ns,
            self.attributed_wall_ns(),
            self.unattributed_wall_ns()
        );
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::write_str(&mut out, p.phase.name());
            let _ = write!(
                out,
                ":{{\"wall_ns\":{},\"cycles\":{},\"enters\":{}}}",
                p.wall_ns, p.cycles, p.enters
            );
        }
        out.push_str("}}");
        out
    }

    /// Flamegraph-style folded stacks: one `path;to;phase value` line
    /// per phase with nonzero wall self-time (value in ns), plus an
    /// explicit `unattributed` line for the measured remainder.
    pub fn to_folded(&self) -> String {
        let mut out = String::new();
        for p in &self.phases {
            if p.wall_ns > 0 {
                let _ = writeln!(out, "{} {}", p.phase.path(), p.wall_ns);
            }
        }
        let rest = self.unattributed_wall_ns();
        if rest > 0 {
            let _ = writeln!(out, "unattributed {rest}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(wall: &[(Phase, u64)], total: u64) -> PhaseProfile {
        let mut p = Profiler::new().finish(total);
        for &(phase, ns) in wall {
            p.phases[phase as usize].wall_ns = ns;
        }
        p
    }

    #[test]
    fn phase_names_and_paths_follow_the_static_tree() {
        assert_eq!(Phase::Pwc.path(), "guest_walk;pwc");
        assert_eq!(Phase::HostWalk.path(), "guest_walk;host_walk");
        assert_eq!(Phase::TlbLookup.path(), "tlb_lookup");
        // Names are unique (they become JSON keys and folded frames).
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASE_COUNT);
    }

    #[test]
    fn spans_count_enters_and_close_in_lifo_order() {
        let mut prof = Profiler::new();
        prof.begin(Phase::GuestWalk);
        prof.begin(Phase::Pwc);
        assert_eq!(prof.depth(), 2);
        prof.end();
        prof.begin(Phase::HostWalk);
        prof.end();
        prof.end();
        assert_eq!(prof.depth(), 0);
        let profile = prof.finish(0);
        assert_eq!(profile.get(Phase::GuestWalk).enters, 1);
        assert_eq!(profile.get(Phase::Pwc).enters, 1);
        assert_eq!(profile.get(Phase::HostWalk).enters, 1);
        assert_eq!(profile.get(Phase::TlbLookup).enters, 0);
    }

    #[test]
    fn add_cycles_is_flat_and_deterministic() {
        let mut prof = Profiler::new();
        prof.add_cycles(Phase::GuestWalk, 40);
        prof.add_cycles(Phase::GuestWalk, 2);
        prof.add_cycles(Phase::Fill, 7);
        let profile = prof.finish(0);
        assert_eq!(profile.get(Phase::GuestWalk).cycles, 42);
        assert_eq!(profile.get(Phase::Fill).cycles, 7);
        assert_eq!(profile.get(Phase::Alloc).cycles, 0);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let mut prof = Profiler::new();
        prof.begin(Phase::Workload);
        prof.begin(Phase::TlbLookup);
        let profile = prof.finish(1_000);
        assert_eq!(profile.get(Phase::Workload).enters, 1);
        assert_eq!(profile.get(Phase::TlbLookup).enters, 1);
    }

    #[test]
    fn nested_spans_accrue_self_time_without_double_counting() {
        let mut prof = Profiler::new();
        prof.begin(Phase::GuestWalk);
        std::thread::sleep(std::time::Duration::from_millis(2));
        prof.begin(Phase::HostWalk);
        std::thread::sleep(std::time::Duration::from_millis(2));
        prof.end();
        prof.end();
        let profile = prof.finish(u64::MAX);
        let outer = profile.get(Phase::GuestWalk).wall_ns;
        let inner = profile.get(Phase::HostWalk).wall_ns;
        assert!(outer > 0, "outer span accrued no self-time");
        assert!(inner > 0, "inner span accrued no self-time");
        // Self-time semantics: the two spans partition the elapsed wall
        // time; each must be under the ~4ms total, not nested copies.
        let wall: u64 = profile.attributed_wall_ns();
        assert_eq!(wall, outer + inner);
    }

    #[test]
    fn attribution_math_reports_the_remainder_explicitly() {
        let p = profile_with(&[(Phase::TlbLookup, 600), (Phase::Fill, 300)], 1_000);
        assert_eq!(p.attributed_wall_ns(), 900);
        assert_eq!(p.unattributed_wall_ns(), 100);
        assert!((p.attributed_fraction() - 0.9).abs() < 1e-9);
        // Over-attribution (stopwatch skew) clamps instead of wrapping.
        let over = profile_with(&[(Phase::TlbLookup, 1_500)], 1_000);
        assert_eq!(over.unattributed_wall_ns(), 0);
        assert!((over.attributed_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn json_export_parses_and_carries_all_phases() {
        let mut prof = Profiler::new();
        prof.begin(Phase::MemoProbe);
        prof.add_cycles(Phase::MemoProbe, 5);
        prof.end();
        let profile = prof.finish(123);
        let doc = json::parse(&profile.to_json()).expect("profile JSON parses");
        assert_eq!(
            doc.get("schema").unwrap().as_str(),
            Some("vmsim-profile-v1")
        );
        assert_eq!(doc.get("total_wall_ns").unwrap().as_u64(), Some(123));
        let phases = doc.get("phases").unwrap();
        for phase in Phase::ALL {
            assert!(
                phases.get(phase.name()).is_some(),
                "missing phase {}",
                phase.name()
            );
        }
        assert_eq!(
            phases
                .get("memo_probe")
                .unwrap()
                .get("cycles")
                .unwrap()
                .as_u64(),
            Some(5)
        );
    }

    #[test]
    fn folded_export_lists_paths_and_the_remainder() {
        let p = profile_with(
            &[
                (Phase::Pwc, 250),
                (Phase::GuestWalk, 500),
                (Phase::Workload, 100),
            ],
            1_000,
        );
        let folded = p.to_folded();
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"guest_walk 500"), "{folded}");
        assert!(lines.contains(&"guest_walk;pwc 250"), "{folded}");
        assert!(lines.contains(&"workload 100"), "{folded}");
        assert!(lines.contains(&"unattributed 150"), "{folded}");
        // Zero-valued phases are omitted.
        assert!(!folded.contains("tlb_lookup"), "{folded}");
    }
}
