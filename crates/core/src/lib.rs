//! PTEMagnet: fine-grained physical memory reservation for faster page walks
//! in public clouds (ASPLOS 2021).
//!
//! This crate is the paper's contribution, implemented against the
//! `vmsim-os` substrate the same way the original is implemented against the
//! Linux kernel: as a drop-in guest-OS frame-allocation policy.
//!
//! # How it works (paper §4)
//!
//! On the first page fault to any aligned group of eight 4 KB virtual pages,
//! the [`ReservationAllocator`] takes a *contiguous, aligned* eight-frame
//! chunk (one buddy order-3 block) from the guest buddy allocator, hands the
//! faulting page its frame, and records the remaining seven in the
//! per-process **Page Reservation Table** ([`PaRt`]) — a 4-level radix tree
//! with fine-grained per-node locking. Subsequent faults in the group are
//! served straight from the reservation, without touching the buddy
//! allocator. Guest-physical contiguity at 32 KB granularity is therefore
//! *guaranteed*, so the eight host PTEs of every group share one cache line
//! and nested page walks stop missing on scattered host-PT lines.
//!
//! Under memory pressure, reserved-but-unused frames are reclaimed by a
//! daemon ([`ReclaimDaemon`]) that drains the PaRT of a victim process —
//! a cheap `free()` back to the buddy allocator, never a PT update or TLB
//! shootdown (§4.3).
//!
//! # Examples
//!
//! ```
//! use ptemagnet::ReservationAllocator;
//! use vmsim_os::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), vmsim_types::MemError> {
//! let mut m = Machine::with_allocator(
//!     MachineConfig::small(),
//!     Box::new(ReservationAllocator::new()),
//! );
//! let pid = m.guest_mut().spawn();
//! let va = m.guest_mut().mmap(pid, 64)?;
//! for i in 0..64 {
//!     m.touch(0, pid, vmsim_types::GuestVirtAddr::new(va.raw() + i * 4096), false)?;
//! }
//! // Every group's host PTEs share a single cache line.
//! let frag = m.host_pt_fragmentation(pid)?;
//! assert!((frag.mean() - 1.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

pub mod ablation;
pub mod baselines;
pub mod metrics;
pub mod part;
pub mod policy;
pub mod reclaim;
pub mod registry;
pub mod reservation;
mod sync;

pub use ablation::{GlobalLockPart, GranularReservationAllocator};
pub use baselines::{CaPagingLike, ThpAllocator};
pub use metrics::fragmentation_comparison;
pub use part::{PaRt, ReleaseOutcome, Reservation, TakeOutcome};
pub use policy::EnablePolicy;
pub use reclaim::ReclaimDaemon;
pub use registry::UnknownPolicy;
pub use reservation::{ReservationAllocator, ReservationStats};
