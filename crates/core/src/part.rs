//! The Page Reservation Table (PaRT): a concurrent 4-level radix tree.
//!
//! PaRT tracks one entry per aligned eight-page virtual group that currently
//! has a physical reservation (paper §4.2). A leaf holds the base frame of
//! the reserved chunk, an 8-bit mask of which pages were handed to the
//! application, and its own lock. The tree uses **fine-grained locking** —
//! one lock per node slot — so concurrently faulting threads of a process
//! contend only when they touch the same region, satisfying the paper's
//! scalability requirement.
//!
//! The tree is indexed by *group number* (virtual page number >> 3), nine
//! bits per level, covering a 48-bit virtual address space.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use vmsim_types::{GuestFrame, GROUP_PAGES};

/// Fan-out of each radix level (nine index bits).
const FANOUT: usize = 512;
/// Number of radix levels.
const DEPTH: usize = 4;

/// One reservation: an aligned eight-frame chunk and its usage mask.
///
/// Pages not currently mapped (`live` bit clear) are *owned by the
/// reservation* — whether never granted or granted and later freed — and
/// can be (re)granted without a buddy call. Frames only return to the buddy
/// allocator when the whole entry dies: retired after full grant, emptied
/// by the application freeing its last page, or reclaimed under pressure
/// (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Base frame of the chunk (aligned to eight frames).
    pub base: GuestFrame,
    /// Bit i set ⇒ page i of the group is currently mapped.
    pub live: u8,
}

impl Reservation {
    /// Frames of this chunk currently owned by the reservation (not mapped).
    pub fn unused_frames(&self) -> impl Iterator<Item = GuestFrame> + '_ {
        (0..GROUP_PAGES as u8)
            .filter(move |i| self.live & (1 << i) == 0)
            .map(move |i| GuestFrame::new(self.base.raw() + u64::from(i)))
    }

    /// Number of frames currently owned by the reservation.
    pub fn unused_count(&self) -> u32 {
        GROUP_PAGES as u32 - self.live.count_ones()
    }
}

/// Result of a take-or-install operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TakeOutcome {
    /// The page was granted from an existing reservation (the fast path the
    /// paper's §6.4 microbenchmark exercises).
    FromReservation(GuestFrame),
    /// A new reservation was installed and the page granted from it.
    FromNewReservation(GuestFrame),
    /// No reservation existed and the chunk factory declined (buddy could
    /// not supply an aligned chunk); the caller must fall back.
    Unavailable,
}

/// Result of releasing a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The group had no reservation entry: free the frame as the default
    /// kernel would.
    NotTracked,
    /// The page was tracked: it returns to the reservation (re-grantable
    /// without a buddy call). If this was the group's last live page, the
    /// entry was deleted and **all eight frames** of the chunk are returned
    /// for the caller to hand back to the buddy allocator.
    Released {
        /// Frames to return to the buddy allocator (empty unless the entry
        /// was deleted; the whole chunk when it was).
        unused_frames: Vec<GuestFrame>,
        /// Whether the reservation entry was removed.
        entry_deleted: bool,
    },
}

enum Slot {
    Empty,
    Interior(Arc<Node>),
    Leaf(Arc<LeafNode>),
}

struct Node {
    slots: Vec<RwLock<Slot>>,
}

impl Node {
    fn new() -> Self {
        Self {
            slots: (0..FANOUT).map(|_| RwLock::new(Slot::Empty)).collect(),
        }
    }
}

struct LeafNode {
    /// The per-reservation lock the paper describes.
    inner: Mutex<Option<Reservation>>,
}

/// Counters exposed by a PaRT instance. All values are cumulative except
/// `live_entries` and `unused_frames`, which are gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartStats {
    /// Grants served from existing reservations.
    pub hits: u64,
    /// Reservations installed.
    pub installs: u64,
    /// Entries deleted because all eight pages were granted.
    pub retired_full: u64,
    /// Entries deleted because the application freed all its pages.
    pub deleted_empty: u64,
    /// Current number of live entries.
    pub live_entries: u64,
    /// Current reserved-but-unused frames across live entries.
    pub unused_frames: u64,
}

impl PartStats {
    /// Merges another table's counters into this one (used to aggregate the
    /// per-process PaRTs into one allocator-level view).
    pub fn merge(&mut self, other: &PartStats) {
        self.hits += other.hits;
        self.installs += other.installs;
        self.retired_full += other.retired_full;
        self.deleted_empty += other.deleted_empty;
        self.live_entries += other.live_entries;
        self.unused_frames += other.unused_frames;
    }
}

impl vmsim_obs::MetricSource for PartStats {
    fn source_name(&self) -> &'static str {
        "part"
    }

    fn emit(&self, out: &mut Vec<vmsim_obs::Metric>) {
        out.push(vmsim_obs::Metric::u64("hits", self.hits));
        out.push(vmsim_obs::Metric::u64("installs", self.installs));
        out.push(vmsim_obs::Metric::u64("retired_full", self.retired_full));
        out.push(vmsim_obs::Metric::u64("deleted_empty", self.deleted_empty));
        out.push(vmsim_obs::Metric::u64("live_entries", self.live_entries));
        out.push(vmsim_obs::Metric::u64("unused_frames", self.unused_frames));
    }
}

/// The concurrent Page Reservation Table.
///
/// All methods take `&self`; interior locking makes concurrent use by many
/// faulting threads safe. Shared between parent and child after `fork` via
/// `Arc` (paper §4.4).
///
/// # Examples
///
/// ```
/// use ptemagnet::{PaRt, TakeOutcome};
/// use vmsim_types::GuestFrame;
///
/// let part = PaRt::new();
/// // First fault to group 5 installs a reservation from an 8-aligned chunk.
/// let got = part.take_or_install(5, 2, || Some(GuestFrame::new(64)));
/// assert_eq!(got, TakeOutcome::FromNewReservation(GuestFrame::new(66)));
/// // Later faults in the group are buddy-free fast-path hits.
/// let got = part.take_or_install(5, 3, || unreachable!());
/// assert_eq!(got, TakeOutcome::FromReservation(GuestFrame::new(67)));
/// assert_eq!(part.unused_frames(), 6);
/// ```
pub struct PaRt {
    root: Arc<Node>,
    /// One-entry leaf cache. Leaf nodes are never removed from the tree
    /// (only their `Option<Reservation>` payload is cleared), so a cached
    /// `(group, leaf)` pair stays valid forever. Faulting streams hit the
    /// same group several times in a row (lookup + grant, eight pages per
    /// group), making this a near-free shortcut past the radix descent.
    last_leaf: Mutex<Option<(u64, Arc<LeafNode>)>>,
    hits: AtomicU64,
    installs: AtomicU64,
    retired_full: AtomicU64,
    deleted_empty: AtomicU64,
    live_entries: AtomicU64,
    unused_frames: AtomicU64,
}

impl Default for PaRt {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for PaRt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PaRt(entries={}, unused={}, hits={}, installs={})",
            s.live_entries, s.unused_frames, s.hits, s.installs
        )
    }
}

impl PaRt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            root: Arc::new(Node::new()),
            last_leaf: Mutex::new(None),
            hits: AtomicU64::new(0),
            installs: AtomicU64::new(0),
            retired_full: AtomicU64::new(0),
            deleted_empty: AtomicU64::new(0),
            live_entries: AtomicU64::new(0),
            unused_frames: AtomicU64::new(0),
        }
    }

    /// Radix index of `group` at `level` (level 0 = root).
    #[inline]
    fn index(group: u64, level: usize) -> usize {
        ((group >> (9 * (DEPTH - 1 - level))) & (FANOUT as u64 - 1)) as usize
    }

    /// Finds the leaf for `group`, creating the path if `create` is true.
    fn leaf(&self, group: u64, create: bool) -> Option<Arc<LeafNode>> {
        {
            let cache = self.last_leaf.lock();
            if let Some((g, leaf)) = &*cache {
                if *g == group {
                    return Some(Arc::clone(leaf));
                }
            }
        }
        let found = self.leaf_descent(group, create);
        if let Some(leaf) = &found {
            *self.last_leaf.lock() = Some((group, Arc::clone(leaf)));
        }
        found
    }

    /// The full radix descent behind [`PaRt::leaf`]'s cache.
    fn leaf_descent(&self, group: u64, create: bool) -> Option<Arc<LeafNode>> {
        let mut node = Arc::clone(&self.root);
        for level in 0..DEPTH {
            let idx = Self::index(group, level);
            let is_last = level == DEPTH - 1;
            // Fast path: read lock.
            {
                let slot = node.slots[idx].read();
                match &*slot {
                    Slot::Interior(child) if !is_last => {
                        let child = Arc::clone(child);
                        drop(slot);
                        node = child;
                        continue;
                    }
                    Slot::Leaf(leaf) if is_last => return Some(Arc::clone(leaf)),
                    Slot::Empty if !create => return None,
                    _ => {}
                }
            }
            // Slow path: write lock and create (re-check under the lock).
            let mut slot = node.slots[idx].write();
            match &*slot {
                Slot::Interior(child) if !is_last => {
                    let child = Arc::clone(child);
                    drop(slot);
                    node = child;
                }
                Slot::Leaf(leaf) if is_last => return Some(Arc::clone(leaf)),
                Slot::Empty => {
                    if is_last {
                        let leaf = Arc::new(LeafNode {
                            inner: Mutex::new(None),
                        });
                        *slot = Slot::Leaf(Arc::clone(&leaf));
                        return Some(leaf);
                    }
                    let child = Arc::new(Node::new());
                    *slot = Slot::Interior(Arc::clone(&child));
                    drop(slot);
                    node = child;
                }
                _ => unreachable!("slot kind matches level"),
            }
        }
        unreachable!("loop returns at the leaf level")
    }

    /// Grants page `offset` of `group`, installing a new reservation from
    /// `chunk_factory` if none exists.
    ///
    /// `chunk_factory` must return the base of an **aligned eight-frame
    /// chunk** (a buddy order-3 block), or `None` if no such chunk is
    /// available (high fragmentation / memory pressure) — in which case
    /// [`TakeOutcome::Unavailable`] tells the caller to fall back to default
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 8` or if the page is already granted and live —
    /// the OS above guarantees a page faults only while unmapped.
    pub fn take_or_install(
        &self,
        group: u64,
        offset: u64,
        chunk_factory: impl FnOnce() -> Option<GuestFrame>,
    ) -> TakeOutcome {
        assert!(offset < GROUP_PAGES, "offset {offset} out of group range");
        let bit = 1u8 << offset;
        let leaf = self.leaf(group, true).expect("created on demand");
        let mut guard = leaf.inner.lock();
        match guard.as_mut() {
            Some(res) => {
                assert!(
                    res.live & bit == 0,
                    "page {offset} of group {group:#x} is already live"
                );
                res.live |= bit;
                let frame = GuestFrame::new(res.base.raw() + offset);
                self.unused_frames.fetch_sub(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                if res.live == 0xff {
                    // Fully mapped: the entry is no longer needed (§4.2).
                    *guard = None;
                    self.live_entries.fetch_sub(1, Ordering::Relaxed);
                    self.retired_full.fetch_add(1, Ordering::Relaxed);
                }
                TakeOutcome::FromReservation(frame)
            }
            None => {
                let Some(base) = chunk_factory() else {
                    return TakeOutcome::Unavailable;
                };
                assert_eq!(
                    base.raw() % GROUP_PAGES,
                    0,
                    "reservation chunks must be group-aligned"
                );
                *guard = Some(Reservation { base, live: bit });
                self.installs.fetch_add(1, Ordering::Relaxed);
                self.live_entries.fetch_add(1, Ordering::Relaxed);
                self.unused_frames
                    .fetch_add(GROUP_PAGES - 1, Ordering::Relaxed);
                TakeOutcome::FromNewReservation(GuestFrame::new(base.raw() + offset))
            }
        }
    }

    /// Attempts to grant page `offset` of `group` from an *existing*
    /// reservation, without installing one. Returns `None` when no entry
    /// covers the group **or the page is already live in it** — unlike
    /// [`PaRt::take_or_install`], which treats a live page as a caller
    /// contract violation. Used on the fork-inheritance path (§4.4), where
    /// the parent may legitimately still have the page mapped (the child is
    /// COW-breaking it).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 8`.
    pub fn try_take(&self, group: u64, offset: u64) -> Option<GuestFrame> {
        assert!(offset < GROUP_PAGES, "offset {offset} out of group range");
        let bit = 1u8 << offset;
        let leaf = self.leaf(group, false)?;
        let mut guard = leaf.inner.lock();
        let res = guard.as_mut()?;
        if res.live & bit != 0 {
            return None;
        }
        res.live |= bit;
        let frame = GuestFrame::new(res.base.raw() + offset);
        self.unused_frames.fetch_sub(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        if res.live == 0xff {
            *guard = None;
            self.live_entries.fetch_sub(1, Ordering::Relaxed);
            self.retired_full.fetch_add(1, Ordering::Relaxed);
        }
        Some(frame)
    }

    /// Releases page `offset` of `group` (application `free()` path, §4.3).
    ///
    /// If the freed page empties the reservation, the entry is deleted and
    /// the never-granted frames are handed back for the caller to return to
    /// the buddy allocator.
    pub fn release(&self, group: u64, offset: u64) -> ReleaseOutcome {
        assert!(offset < GROUP_PAGES, "offset {offset} out of group range");
        let bit = 1u8 << offset;
        let Some(leaf) = self.leaf(group, false) else {
            return ReleaseOutcome::NotTracked;
        };
        let mut guard = leaf.inner.lock();
        let Some(res) = guard.as_mut() else {
            return ReleaseOutcome::NotTracked;
        };
        if res.live & bit == 0 {
            // Tracked group, but this page is not live in it.
            return ReleaseOutcome::NotTracked;
        }
        // The page returns to the reservation, not to the buddy allocator —
        // it can be re-granted on a later fault without a buddy call.
        res.live &= !bit;
        self.unused_frames.fetch_add(1, Ordering::Relaxed);
        if res.live == 0 {
            // The application freed all its pages in this group: the entry
            // dies and every frame of the chunk goes back to the caller.
            let unused: Vec<GuestFrame> = res.unused_frames().collect();
            debug_assert_eq!(unused.len() as u64, GROUP_PAGES);
            self.unused_frames
                .fetch_sub(unused.len() as u64, Ordering::Relaxed);
            *guard = None;
            self.live_entries.fetch_sub(1, Ordering::Relaxed);
            self.deleted_empty.fetch_add(1, Ordering::Relaxed);
            ReleaseOutcome::Released {
                unused_frames: unused,
                entry_deleted: true,
            }
        } else {
            ReleaseOutcome::Released {
                unused_frames: Vec::new(),
                entry_deleted: false,
            }
        }
    }

    /// Looks up the reservation covering `group` without modifying it.
    pub fn peek(&self, group: u64) -> Option<Reservation> {
        let leaf = self.leaf(group, false)?;
        let res = *leaf.inner.lock();
        res
    }

    /// Visits every live reservation (in unspecified order).
    pub fn for_each(&self, mut f: impl FnMut(u64, &Reservation)) {
        Self::visit(&self.root, 0, 0, &mut f);
    }

    #[allow(clippy::only_used_in_recursion)] // level documents tree depth
    fn visit(node: &Node, level: usize, prefix: u64, f: &mut impl FnMut(u64, &Reservation)) {
        for (i, slot) in node.slots.iter().enumerate() {
            let slot = slot.read();
            match &*slot {
                Slot::Empty => {}
                Slot::Interior(child) => {
                    let child = Arc::clone(child);
                    drop(slot);
                    Self::visit(&child, level + 1, (prefix << 9) | i as u64, f);
                }
                Slot::Leaf(leaf) => {
                    let leaf = Arc::clone(leaf);
                    drop(slot);
                    let snapshot = *leaf.inner.lock();
                    if let Some(res) = snapshot {
                        f((prefix << 9) | i as u64, &res);
                    }
                }
            }
        }
    }

    /// Drains reserved-but-unused frames, calling `release_frame` for each,
    /// until it returns `false` (target met) or the table has no more unused
    /// frames. Drained entries are deleted; their live pages stay mapped and
    /// keep benefiting from the contiguity already created (§4.3).
    ///
    /// Returns the number of frames drained.
    pub fn drain_unused(&self, mut release_frame: impl FnMut(GuestFrame) -> bool) -> u64 {
        let mut groups: Vec<u64> = Vec::new();
        self.for_each(|group, res| {
            if res.unused_count() > 0 {
                groups.push(group);
            }
        });
        let mut drained = 0u64;
        for group in groups {
            let Some(leaf) = self.leaf(group, false) else {
                continue;
            };
            let mut guard = leaf.inner.lock();
            let Some(res) = guard.as_mut() else {
                continue;
            };
            let unused: Vec<GuestFrame> = res.unused_frames().collect();
            if unused.is_empty() {
                continue;
            }
            // The reservation is destroyed: live pages stay mapped; no
            // future grants can come from it.
            let live = res.live;
            *guard = None;
            drop(guard);
            self.live_entries.fetch_sub(1, Ordering::Relaxed);
            self.unused_frames
                .fetch_sub(unused.len() as u64, Ordering::Relaxed);
            let _ = live;
            let mut stop = false;
            for frame in unused {
                drained += 1;
                if !release_frame(frame) {
                    stop = true;
                }
            }
            if stop {
                break;
            }
        }
        drained
    }

    /// Forcibly drains one group's reservation (if it exists), returning
    /// the frames it owned. Live pages stay mapped and are unaffected.
    /// Used when the OS targets a reserved frame for swap or compaction
    /// (§4.4 "Swap and THP").
    pub fn drain_group(&self, group: u64) -> Vec<GuestFrame> {
        let Some(leaf) = self.leaf(group, false) else {
            return Vec::new();
        };
        let mut guard = leaf.inner.lock();
        let Some(res) = guard.as_ref() else {
            return Vec::new();
        };
        let unused: Vec<GuestFrame> = res.unused_frames().collect();
        self.unused_frames
            .fetch_sub(unused.len() as u64, Ordering::Relaxed);
        *guard = None;
        self.live_entries.fetch_sub(1, Ordering::Relaxed);
        unused
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> PartStats {
        PartStats {
            hits: self.hits.load(Ordering::Relaxed),
            installs: self.installs.load(Ordering::Relaxed),
            retired_full: self.retired_full.load(Ordering::Relaxed),
            deleted_empty: self.deleted_empty.load(Ordering::Relaxed),
            live_entries: self.live_entries.load(Ordering::Relaxed),
            unused_frames: self.unused_frames.load(Ordering::Relaxed),
        }
    }

    /// Current reserved-but-unused frame count (the §6.2 metric).
    pub fn unused_frames(&self) -> u64 {
        self.unused_frames.load(Ordering::Relaxed)
    }

    /// Current number of live entries.
    pub fn live_entries(&self) -> u64 {
        self.live_entries.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(base: u64) -> impl FnOnce() -> Option<GuestFrame> {
        move || Some(GuestFrame::new(base))
    }

    #[test]
    fn install_then_hit() {
        let part = PaRt::new();
        let a = part.take_or_install(5, 0, chunk(80));
        assert_eq!(a, TakeOutcome::FromNewReservation(GuestFrame::new(80)));
        let b = part.take_or_install(5, 3, || panic!("no second chunk needed"));
        assert_eq!(b, TakeOutcome::FromReservation(GuestFrame::new(83)));
        let s = part.stats();
        assert_eq!(s.installs, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.unused_frames, 6);
    }

    #[test]
    fn factory_decline_reports_unavailable() {
        let part = PaRt::new();
        assert_eq!(
            part.take_or_install(1, 0, || None),
            TakeOutcome::Unavailable
        );
        assert_eq!(part.live_entries(), 0);
    }

    #[test]
    fn fully_granted_entry_retires() {
        let part = PaRt::new();
        part.take_or_install(7, 0, chunk(8));
        for off in 1..8 {
            part.take_or_install(7, off, || panic!("reservation exists"));
        }
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.stats().retired_full, 1);
        assert_eq!(part.unused_frames(), 0);
        // Post-retirement, frees are not tracked.
        assert_eq!(part.release(7, 0), ReleaseOutcome::NotTracked);
    }

    #[test]
    fn release_last_live_page_deletes_entry_and_returns_unused() {
        let part = PaRt::new();
        part.take_or_install(2, 1, chunk(16));
        part.take_or_install(2, 4, || None);
        match part.release(2, 1) {
            ReleaseOutcome::Released {
                entry_deleted,
                unused_frames,
            } => {
                assert!(!entry_deleted);
                assert!(unused_frames.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match part.release(2, 4) {
            ReleaseOutcome::Released {
                entry_deleted,
                unused_frames,
            } => {
                assert!(entry_deleted);
                // The whole chunk returns: freed pages re-joined the
                // reservation, so all of 16..24 is owned by it at death.
                let raws: Vec<u64> = unused_frames.iter().map(|f| f.raw()).collect();
                assert_eq!(raws, (16..24).collect::<Vec<u64>>());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.stats().deleted_empty, 1);
    }

    #[test]
    fn distinct_groups_are_independent() {
        let part = PaRt::new();
        part.take_or_install(0, 0, chunk(0));
        part.take_or_install(1, 0, chunk(8));
        // Far-apart groups exercise distinct subtrees.
        part.take_or_install(1 << 30, 0, chunk(16));
        assert_eq!(part.live_entries(), 3);
        assert_eq!(part.peek(0).unwrap().base, GuestFrame::new(0));
        assert_eq!(part.peek(1 << 30).unwrap().base, GuestFrame::new(16));
        assert!(part.peek(2).is_none());
    }

    #[test]
    fn refault_after_free_within_live_entry_regrants_same_frame() {
        let part = PaRt::new();
        part.take_or_install(3, 0, chunk(24));
        part.take_or_install(3, 2, || None);
        part.release(3, 2);
        // Page 2 faults again while the entry is alive: same frame comes
        // back, and unused accounting is unchanged (it was granted before).
        let r = part.take_or_install(3, 2, || panic!("entry exists"));
        assert_eq!(r, TakeOutcome::FromReservation(GuestFrame::new(26)));
        assert_eq!(part.unused_frames(), 6);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn double_grant_panics() {
        let part = PaRt::new();
        part.take_or_install(3, 0, chunk(24));
        part.take_or_install(3, 0, || None);
    }

    #[test]
    #[should_panic(expected = "group-aligned")]
    fn misaligned_chunk_panics() {
        let part = PaRt::new();
        part.take_or_install(3, 0, chunk(5));
    }

    #[test]
    fn for_each_visits_live_entries() {
        let part = PaRt::new();
        part.take_or_install(10, 0, chunk(0));
        part.take_or_install(20, 0, chunk(8));
        let mut seen = Vec::new();
        part.for_each(|g, r| seen.push((g, r.base.raw())));
        seen.sort_unstable();
        assert_eq!(seen, vec![(10, 0), (20, 8)]);
    }

    #[test]
    fn drain_unused_returns_frames_and_deletes_entries() {
        let part = PaRt::new();
        part.take_or_install(1, 0, chunk(0));
        part.take_or_install(2, 0, chunk(8));
        let mut freed = Vec::new();
        let drained = part.drain_unused(|f| {
            freed.push(f.raw());
            true
        });
        assert_eq!(drained, 14);
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.unused_frames(), 0);
        assert_eq!(freed.len(), 14);
        // Pages 0 of both groups stay granted (not in the freed list).
        assert!(!freed.contains(&0));
        assert!(!freed.contains(&8));
    }

    #[test]
    fn drain_unused_respects_stop_signal() {
        let part = PaRt::new();
        part.take_or_install(1, 0, chunk(0));
        part.take_or_install(2, 0, chunk(8));
        let mut count = 0;
        // Stop after the first entry's frames.
        part.drain_unused(|_| {
            count += 1;
            count < 7
        });
        // One entry drained (7 frames), the other survives.
        assert_eq!(part.live_entries(), 1);
    }

    #[test]
    fn concurrent_faulting_threads_are_safe() {
        // Many threads fault into disjoint and overlapping groups; chunk
        // bases come from an atomic bump allocator. Every granted frame must
        // be unique, and all bookkeeping must balance.
        use std::sync::atomic::AtomicU64;
        let part = Arc::new(PaRt::new());
        let next_chunk = Arc::new(AtomicU64::new(0));
        let threads = 8;
        let groups_per_thread = 64u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let part = Arc::clone(&part);
            let next_chunk = Arc::clone(&next_chunk);
            handles.push(std::thread::spawn(move || {
                let mut frames = Vec::new();
                for g in 0..groups_per_thread {
                    // Threads share groups (g) but own distinct offsets (t).
                    let out = part.take_or_install(g, t, || {
                        Some(GuestFrame::new(
                            next_chunk.fetch_add(GROUP_PAGES, Ordering::Relaxed),
                        ))
                    });
                    match out {
                        TakeOutcome::FromReservation(f) | TakeOutcome::FromNewReservation(f) => {
                            frames.push(f.raw())
                        }
                        TakeOutcome::Unavailable => unreachable!(),
                    }
                }
                frames
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "no frame granted twice");
        // 64 groups × 8 offsets each = all entries fully granted & retired.
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.unused_frames(), 0);
        assert_eq!(part.stats().installs, 64);
    }
}
