//! The Page Reservation Table (PaRT): a lock-free concurrent 4-level radix
//! tree.
//!
//! PaRT tracks one entry per aligned eight-page virtual group that currently
//! has a physical reservation (paper §4.2). A leaf packs the whole
//! reservation — base frame plus the 8-bit live mask — into a single
//! [`AtomicU64`] word, so grants, releases and retirement are one CAS each
//! and threads faulting into *disjoint groups never contend at all*,
//! satisfying (and strengthening) the paper's fine-grained-locking
//! scalability requirement:
//!
//! * **Atomic slot publication.** Interior nodes and leaves are published
//!   into their parent slot with a `null → ptr` CAS; a racing creator frees
//!   its candidate and adopts the winner's. Interior nodes are never
//!   reclaimed while the table lives.
//! * **CAS install, fused retire.** Installing a reservation is one
//!   `EMPTY → packed` CAS on the leaf word; granting the last page of a
//!   group CASes straight to `EMPTY`, so retirement can never be observed
//!   half-done. A thread that loses an install race parks its
//!   already-allocated chunk in a small internal spare pool, where the next
//!   install (or [`PaRt::drain_unused`]) picks it up — no frame is ever
//!   double-granted or leaked, and the public API is unchanged.
//! * **Epoch-style reclamation.** [`PaRt::drain_unused`] prunes empty leaf
//!   nodes: the word is CASed to a `RETIRED` sentinel, the leaf is unlinked
//!   from its parent slot, and the node itself is freed only after every
//!   operation pinned in the current or previous epoch has finished (a
//!   per-table three-bin epoch collector). Operations that encounter a
//!   `RETIRED` word help unlink it and re-descend.
//!
//! Under the `model-check` feature the structural atomics are routed through
//! the vendored loom stub (see `crate::sync`) and the install/retire/
//! reclaim paths are explored exhaustively over bounded schedules in
//! `tests/model_check.rs`.
//!
//! The tree is indexed by *group number* (virtual page number >> 3), nine
//! bits per level, covering a 48-bit virtual address space.

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

use parking_lot::Mutex;
use vmsim_types::{GuestFrame, GROUP_PAGES};

use crate::sync::{scan_load, AtomicPtr, AtomicU64, Ordering};

/// Fan-out of each radix level (nine index bits).
const FANOUT: usize = 512;
/// Number of radix levels.
const DEPTH: usize = 4;

/// Leaf word: no reservation present.
const EMPTY: u64 = 0;
/// Leaf word: the leaf node was pruned and is awaiting reclamation; any
/// operation that sees this helps unlink the node and re-descends.
const RETIRED: u64 = u64::MAX;

/// Packs a reservation into a leaf word: `base << 9 | live << 1 | 1`.
/// Bit 0 distinguishes a present word from `EMPTY`; a present word can never
/// equal `RETIRED` because fully-live words are retired eagerly (and frame
/// numbers stay far below 2^55).
#[inline]
fn pack(base: u64, live: u8) -> u64 {
    debug_assert!(base < 1 << 55, "frame number overflows the leaf word");
    debug_assert!(live != 0, "present words always have a live page");
    (base << 9) | (u64::from(live) << 1) | 1
}

/// Inverse of [`pack`].
#[inline]
fn unpack(word: u64) -> (u64, u8) {
    (word >> 9, ((word >> 1) & 0xff) as u8)
}

/// One reservation: an aligned eight-frame chunk and its usage mask.
///
/// Pages not currently mapped (`live` bit clear) are *owned by the
/// reservation* — whether never granted or granted and later freed — and
/// can be (re)granted without a buddy call. Frames only return to the buddy
/// allocator when the whole entry dies: retired after full grant, emptied
/// by the application freeing its last page, or reclaimed under pressure
/// (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reservation {
    /// Base frame of the chunk (aligned to eight frames).
    pub base: GuestFrame,
    /// Bit i set ⇒ page i of the group is currently mapped.
    pub live: u8,
}

impl Reservation {
    /// Frames of this chunk currently owned by the reservation (not mapped).
    pub fn unused_frames(&self) -> impl Iterator<Item = GuestFrame> + '_ {
        (0..GROUP_PAGES as u8)
            .filter(move |i| self.live & (1 << i) == 0)
            .map(move |i| GuestFrame::new(self.base.raw() + u64::from(i)))
    }

    /// Number of frames currently owned by the reservation.
    pub fn unused_count(&self) -> u32 {
        GROUP_PAGES as u32 - self.live.count_ones()
    }
}

/// Result of a take-or-install operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TakeOutcome {
    /// The page was granted from an existing reservation (the fast path the
    /// paper's §6.4 microbenchmark exercises).
    FromReservation(GuestFrame),
    /// A new reservation was installed and the page granted from it.
    FromNewReservation(GuestFrame),
    /// No reservation existed and the chunk factory declined (buddy could
    /// not supply an aligned chunk); the caller must fall back.
    Unavailable,
}

/// Result of releasing a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReleaseOutcome {
    /// The group had no reservation entry: free the frame as the default
    /// kernel would.
    NotTracked,
    /// The page was tracked: it returns to the reservation (re-grantable
    /// without a buddy call). If this was the group's last live page, the
    /// entry was deleted and **all eight frames** of the chunk are returned
    /// for the caller to hand back to the buddy allocator.
    Released {
        /// Frames to return to the buddy allocator (empty unless the entry
        /// was deleted; the whole chunk when it was).
        unused_frames: Vec<GuestFrame>,
        /// Whether the reservation entry was removed.
        entry_deleted: bool,
    },
}

/// An interior radix node: 512 atomically-published child pointers.
/// Slots at levels `0..DEPTH-1` point to child `Node`s (never reclaimed);
/// slots of level `DEPTH-1` nodes point to `LeafNode`s (`Arc`-backed,
/// reclaimed through the epoch collector).
struct Node {
    slots: Vec<AtomicPtr<()>>,
}

impl Node {
    fn new() -> Self {
        Self {
            slots: (0..FANOUT)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }
}

/// A leaf: the packed reservation word (see [`pack`]).
struct LeafNode {
    word: AtomicU64,
}

impl LeafNode {
    fn new() -> Self {
        Self {
            word: AtomicU64::new(EMPTY),
        }
    }
}

/// A leaf pointer queued for epoch-deferred reclamation.
struct RetiredLeaf(*const LeafNode);

// Safety: the pointee is an `Arc<LeafNode>` allocation (Sync) whose last
// reference is dropped by whichever thread drains the garbage bin.
unsafe impl Send for RetiredLeaf {}

/// Sentinel for a free epoch-participant or spare-pool slot.
const FREE_SLOT: u64 = u64::MAX;
/// Fixed number of epoch participant slots: the maximum number of PaRT
/// operations in flight at once on one table. Far above anything the
/// simulator or tests produce; `pin` retries when transiently full. Kept
/// small under model checking (`try_advance` scans every slot with
/// instrumented loads; model tests race two or three threads).
#[cfg(not(feature = "model-check"))]
const PARTICIPANTS: usize = 32;
#[cfg(feature = "model-check")]
const PARTICIPANTS: usize = 4;

/// Per-table epoch collector (three-bin scheme): operations pin the current
/// epoch in a participant slot; pruned leaves are pushed into the bin of the
/// epoch they were retired in and freed two epoch advances later, when no
/// pinned operation can still hold a pre-unlink pointer.
struct Collector {
    epoch: AtomicU64,
    slots: Vec<AtomicU64>,
    /// Bin `e % 3` holds leaves retired while the global epoch read `e`.
    /// The mutexes guard plain `Vec` pushes only — no instrumented atomic is
    /// ever touched while one is held, so under the model checker a critical
    /// section can never be preempted.
    bins: [Mutex<Vec<RetiredLeaf>>; 3],
}

impl Collector {
    fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            slots: (0..PARTICIPANTS)
                .map(|_| AtomicU64::new(FREE_SLOT))
                .collect(),
            bins: [
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
                Mutex::new(Vec::new()),
            ],
        }
    }

    /// Pins the current epoch. Every PaRT operation holds a guard for its
    /// duration; leaf nodes it may have observed cannot be freed until the
    /// guard drops.
    fn pin(&self) -> Guard<'_> {
        loop {
            let epoch = self.epoch.load(Ordering::SeqCst);
            for (i, slot) in self.slots.iter().enumerate() {
                if slot.load(Ordering::SeqCst) == FREE_SLOT
                    && slot
                        .compare_exchange(FREE_SLOT, epoch, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                {
                    return Guard {
                        collector: self,
                        slot: i,
                    };
                }
            }
            // All slots transiently busy: another operation will unpin.
        }
    }

    /// Queues an unlinked leaf for reclamation two epochs from now.
    fn defer_retire(&self, leaf: *const LeafNode) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        self.bins[(epoch % 3) as usize]
            .lock()
            .push(RetiredLeaf(leaf));
        self.try_advance();
    }

    /// Advances the epoch when no operation is pinned behind it, freeing the
    /// bin that is now two epochs old: any operation that could have
    /// observed those leaves pre-unlink would have blocked the previous
    /// advance.
    fn try_advance(&self) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        for slot in &self.slots {
            let pinned = slot.load(Ordering::SeqCst);
            if pinned != FREE_SLOT && pinned < epoch {
                return;
            }
        }
        if self
            .epoch
            .compare_exchange(epoch, epoch + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            let stale = std::mem::take(&mut *self.bins[((epoch + 2) % 3) as usize].lock());
            for leaf in stale {
                // Safety: unlinked two epochs ago; no pinned operation can
                // still hold this pointer (see advance rule above).
                unsafe { drop(Arc::from_raw(leaf.0)) };
            }
        }
    }
}

/// An epoch pin (see [`Collector::pin`]).
struct Guard<'a> {
    collector: &'a Collector,
    slot: usize,
}

impl Drop for Guard<'_> {
    fn drop(&mut self) {
        self.collector.slots[self.slot].store(FREE_SLOT, Ordering::SeqCst);
    }
}

/// Number of lock-free spare-chunk slots (overflow spills into a short
/// mutex-guarded list that, like the garbage bins, never holds its lock
/// across an instrumented atomic). Shrunk under model checking to keep the
/// scan short.
#[cfg(not(feature = "model-check"))]
const SPARE_SLOTS: usize = 16;
#[cfg(feature = "model-check")]
const SPARE_SLOTS: usize = 4;

/// Chunks allocated for an install that lost its race. The next install
/// claims a spare before calling its factory; [`PaRt::drain_unused`] drains
/// leftovers. Serial callers never race, so the pool stays empty and the
/// serial engine's behaviour is bit-identical to the old locked tree.
struct SparePool {
    /// Approximate occupancy, letting the (hot) empty case cost one load.
    hint: AtomicU64,
    slots: Vec<AtomicU64>,
    overflow: Mutex<Vec<u64>>,
}

impl SparePool {
    fn new() -> Self {
        Self {
            hint: AtomicU64::new(0),
            slots: (0..SPARE_SLOTS)
                .map(|_| AtomicU64::new(FREE_SLOT))
                .collect(),
            overflow: Mutex::new(Vec::new()),
        }
    }

    fn push(&self, base: u64) {
        debug_assert_ne!(base, FREE_SLOT);
        for slot in &self.slots {
            if slot.load(Ordering::SeqCst) == FREE_SLOT
                && slot
                    .compare_exchange(FREE_SLOT, base, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.hint.fetch_add(1, Ordering::SeqCst);
                return;
            }
        }
        self.overflow.lock().push(base);
        self.hint.fetch_add(1, Ordering::SeqCst);
    }

    fn pop(&self) -> Option<u64> {
        if self.hint.load(Ordering::SeqCst) == 0 {
            return None;
        }
        for slot in &self.slots {
            let base = slot.load(Ordering::SeqCst);
            if base != FREE_SLOT
                && slot
                    .compare_exchange(base, FREE_SLOT, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                self.hint.fetch_sub(1, Ordering::SeqCst);
                return Some(base);
            }
        }
        let got = self.overflow.lock().pop();
        if got.is_some() {
            self.hint.fetch_sub(1, Ordering::SeqCst);
        }
        got
    }
}

/// Counters exposed by a PaRT instance. All values are cumulative except
/// `live_entries` and `unused_frames`, which are gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartStats {
    /// Grants served from existing reservations.
    pub hits: u64,
    /// Reservations installed.
    pub installs: u64,
    /// Entries deleted because all eight pages were granted.
    pub retired_full: u64,
    /// Entries deleted because the application freed all its pages.
    pub deleted_empty: u64,
    /// Current number of live entries.
    pub live_entries: u64,
    /// Current reserved-but-unused frames across live entries.
    pub unused_frames: u64,
}

impl PartStats {
    /// Merges another table's counters into this one (used to aggregate the
    /// per-process PaRTs into one allocator-level view).
    pub fn merge(&mut self, other: &PartStats) {
        self.hits += other.hits;
        self.installs += other.installs;
        self.retired_full += other.retired_full;
        self.deleted_empty += other.deleted_empty;
        self.live_entries += other.live_entries;
        self.unused_frames += other.unused_frames;
    }
}

impl vmsim_obs::MetricSource for PartStats {
    fn source_name(&self) -> &'static str {
        "part"
    }

    fn emit(&self, out: &mut Vec<vmsim_obs::Metric>) {
        out.push(vmsim_obs::Metric::u64("hits", self.hits));
        out.push(vmsim_obs::Metric::u64("installs", self.installs));
        out.push(vmsim_obs::Metric::u64("retired_full", self.retired_full));
        out.push(vmsim_obs::Metric::u64("deleted_empty", self.deleted_empty));
        out.push(vmsim_obs::Metric::u64("live_entries", self.live_entries));
        out.push(vmsim_obs::Metric::u64("unused_frames", self.unused_frames));
    }
}

/// The lock-free concurrent Page Reservation Table.
///
/// All methods take `&self`; atomic leaf words and CAS-published nodes make
/// concurrent use by many faulting threads safe without any blocking on the
/// grant path. Shared between parent and child after `fork` via `Arc`
/// (paper §4.4).
///
/// # Examples
///
/// ```
/// use ptemagnet::{PaRt, TakeOutcome};
/// use vmsim_types::GuestFrame;
///
/// let part = PaRt::new();
/// // First fault to group 5 installs a reservation from an 8-aligned chunk.
/// let got = part.take_or_install(5, 2, || Some(GuestFrame::new(64)));
/// assert_eq!(got, TakeOutcome::FromNewReservation(GuestFrame::new(66)));
/// // Later faults in the group are buddy-free fast-path hits.
/// let got = part.take_or_install(5, 3, || unreachable!());
/// assert_eq!(got, TakeOutcome::FromReservation(GuestFrame::new(67)));
/// assert_eq!(part.unused_frames(), 6);
/// ```
pub struct PaRt {
    root: Node,
    collector: Collector,
    spare: SparePool,
    /// One-entry leaf cache. Faulting streams hit the same group several
    /// times in a row (lookup + grant, eight pages per group), making this a
    /// near-free shortcut past the radix descent. The cache holds a real
    /// `Arc`, so a cached leaf that was concurrently pruned is still safe to
    /// inspect — its `RETIRED` word sends the operation back down the tree.
    /// Compiled out under model checking to keep the schedule space small.
    #[cfg(not(feature = "model-check"))]
    last_leaf: Mutex<Option<(u64, Arc<LeafNode>)>>,
    /// Leaf nodes pruned and queued for epoch reclamation (not part of
    /// [`PartStats`]: surfaced for tests via [`PaRt::pruned_leaves`]).
    pruned: StdAtomicU64,
    hits: StdAtomicU64,
    installs: StdAtomicU64,
    retired_full: StdAtomicU64,
    deleted_empty: StdAtomicU64,
    live_entries: StdAtomicU64,
    unused_frames: StdAtomicU64,
}

impl Default for PaRt {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Debug for PaRt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = self.stats();
        write!(
            f,
            "PaRt(entries={}, unused={}, hits={}, installs={})",
            s.live_entries, s.unused_frames, s.hits, s.installs
        )
    }
}

impl PaRt {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self {
            root: Node::new(),
            collector: Collector::new(),
            spare: SparePool::new(),
            #[cfg(not(feature = "model-check"))]
            last_leaf: Mutex::new(None),
            pruned: StdAtomicU64::new(0),
            hits: StdAtomicU64::new(0),
            installs: StdAtomicU64::new(0),
            retired_full: StdAtomicU64::new(0),
            deleted_empty: StdAtomicU64::new(0),
            live_entries: StdAtomicU64::new(0),
            unused_frames: StdAtomicU64::new(0),
        }
    }

    /// Radix index of `group` at `level` (level 0 = root).
    #[inline]
    fn index(group: u64, level: usize) -> usize {
        ((group >> (9 * (DEPTH - 1 - level))) & (FANOUT as u64 - 1)) as usize
    }

    /// Finds the leaf for `group` through the one-entry cache, upgrading the
    /// epoch-protected pointer into an owned `Arc`.
    fn leaf(&self, group: u64, create: bool, guard: &Guard<'_>) -> Option<Arc<LeafNode>> {
        #[cfg(not(feature = "model-check"))]
        {
            let cache = self.last_leaf.lock();
            if let Some((cached_group, leaf)) = &*cache {
                if *cached_group == group {
                    return Some(Arc::clone(leaf));
                }
            }
        }
        let ptr = self.descend(group, create, guard)?;
        // Safety: `guard` pins the epoch, so even a concurrently pruned leaf
        // cannot have been freed yet; bumping the strong count turns the
        // borrowed pointer into an owned handle that outlives the guard.
        let leaf = unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        };
        #[cfg(not(feature = "model-check"))]
        {
            *self.last_leaf.lock() = Some((group, Arc::clone(&leaf)));
        }
        Some(leaf)
    }

    /// Drops a cached leaf for `group` (it was observed `RETIRED`).
    fn forget_cached(&self, group: u64) {
        #[cfg(not(feature = "model-check"))]
        {
            let mut cache = self.last_leaf.lock();
            if cache.as_ref().is_some_and(|(g, _)| *g == group) {
                *cache = None;
            }
        }
        #[cfg(feature = "model-check")]
        let _ = group;
    }

    /// The full radix descent behind [`PaRt::leaf`]'s cache. Interior nodes
    /// and leaves are published with a `null → ptr` CAS; a `RETIRED` leaf
    /// found at the bottom is helped out of its slot and the level retried,
    /// so every retry reflects another thread's completed progress.
    fn descend(&self, group: u64, create: bool, _guard: &Guard<'_>) -> Option<*const LeafNode> {
        let mut node: &Node = &self.root;
        for level in 0..DEPTH - 1 {
            let slot = &node.slots[Self::index(group, level)];
            let mut ptr = slot.load(Ordering::SeqCst);
            if ptr.is_null() {
                if !create {
                    return None;
                }
                let candidate = Box::into_raw(Box::new(Node::new())).cast::<()>();
                match slot.compare_exchange(
                    std::ptr::null_mut(),
                    candidate,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => ptr = candidate,
                    Err(current) => {
                        // Safety: the candidate was never published.
                        unsafe { drop(Box::from_raw(candidate.cast::<Node>())) };
                        ptr = current;
                    }
                }
            }
            // Safety: interior nodes are never reclaimed while the table
            // lives, so a published pointer stays valid.
            node = unsafe { &*ptr.cast_const().cast::<Node>() };
        }
        let slot = &node.slots[Self::index(group, DEPTH - 1)];
        loop {
            let ptr = slot.load(Ordering::SeqCst);
            if ptr.is_null() {
                if !create {
                    return None;
                }
                let candidate = Arc::into_raw(Arc::new(LeafNode::new()))
                    .cast_mut()
                    .cast::<()>();
                match slot.compare_exchange(
                    std::ptr::null_mut(),
                    candidate,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => return Some(candidate.cast_const().cast::<LeafNode>()),
                    Err(_) => {
                        // Safety: the candidate was never published.
                        unsafe { drop(Arc::from_raw(candidate.cast_const().cast::<LeafNode>())) };
                        continue;
                    }
                }
            }
            let leaf = ptr.cast_const().cast::<LeafNode>();
            // Safety: `_guard` pins the epoch; a pruned leaf is unlinked but
            // not yet freed.
            if unsafe { &*leaf }.word.load(Ordering::SeqCst) == RETIRED {
                // Help the pruner unlink, then retry the level.
                let _ = slot.compare_exchange(
                    ptr,
                    std::ptr::null_mut(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                continue;
            }
            return Some(leaf);
        }
    }

    /// Grants page `offset` of `group`, installing a new reservation from
    /// `chunk_factory` if none exists.
    ///
    /// `chunk_factory` must return the base of an **aligned eight-frame
    /// chunk** (a buddy order-3 block), or `None` if no such chunk is
    /// available (high fragmentation / memory pressure) — in which case
    /// [`TakeOutcome::Unavailable`] tells the caller to fall back to default
    /// allocation.
    ///
    /// The factory is called at most once. If the install CAS then loses a
    /// race, the chunk is parked in the internal spare pool (re-used by the
    /// next install on any group, drained by [`PaRt::drain_unused`]) and the
    /// grant is served from the reservation the race winner installed.
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 8` or if the page is already granted and live —
    /// the OS above guarantees a page faults only while unmapped.
    pub fn take_or_install(
        &self,
        group: u64,
        offset: u64,
        chunk_factory: impl FnOnce() -> Option<GuestFrame>,
    ) -> TakeOutcome {
        assert!(offset < GROUP_PAGES, "offset {offset} out of group range");
        let bit = 1u8 << offset;
        let guard = self.collector.pin();
        let mut factory = Some(chunk_factory);
        loop {
            let leaf = self.leaf(group, true, &guard).expect("created on demand");
            let word = leaf.word.load(Ordering::SeqCst);
            if word == RETIRED {
                self.forget_cached(group);
                continue;
            }
            if word == EMPTY {
                let base = match self.spare.pop() {
                    Some(base) => base,
                    None => match factory.take() {
                        Some(make) => match make() {
                            Some(frame) => frame.raw(),
                            None => return TakeOutcome::Unavailable,
                        },
                        // The factory's chunk was parked after a lost race
                        // and another thread claimed it from the pool: treat
                        // it like a declined buddy call.
                        None => return TakeOutcome::Unavailable,
                    },
                };
                assert_eq!(
                    base % GROUP_PAGES,
                    0,
                    "reservation chunks must be group-aligned"
                );
                match leaf.word.compare_exchange(
                    EMPTY,
                    pack(base, bit),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                ) {
                    Ok(_) => {
                        self.installs.fetch_add(1, StdOrdering::Relaxed);
                        self.live_entries.fetch_add(1, StdOrdering::Relaxed);
                        self.unused_frames
                            .fetch_add(GROUP_PAGES - 1, StdOrdering::Relaxed);
                        return TakeOutcome::FromNewReservation(GuestFrame::new(base + offset));
                    }
                    Err(_) => {
                        self.spare.push(base);
                        continue;
                    }
                }
            }
            let (base, live) = unpack(word);
            assert!(
                live & bit == 0,
                "page {offset} of group {group:#x} is already live"
            );
            let new_live = live | bit;
            let next = if new_live == 0xff {
                // Fully mapped: retire the entry in the same CAS (§4.2).
                EMPTY
            } else {
                pack(base, new_live)
            };
            if leaf
                .word
                .compare_exchange(word, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.unused_frames.fetch_sub(1, StdOrdering::Relaxed);
                self.hits.fetch_add(1, StdOrdering::Relaxed);
                if new_live == 0xff {
                    self.live_entries.fetch_sub(1, StdOrdering::Relaxed);
                    self.retired_full.fetch_add(1, StdOrdering::Relaxed);
                }
                return TakeOutcome::FromReservation(GuestFrame::new(base + offset));
            }
        }
    }

    /// Attempts to grant page `offset` of `group` from an *existing*
    /// reservation, without installing one. Returns `None` when no entry
    /// covers the group **or the page is already live in it** — unlike
    /// [`PaRt::take_or_install`], which treats a live page as a caller
    /// contract violation. Used on the fork-inheritance path (§4.4), where
    /// the parent may legitimately still have the page mapped (the child is
    /// COW-breaking it).
    ///
    /// # Panics
    ///
    /// Panics if `offset >= 8`.
    pub fn try_take(&self, group: u64, offset: u64) -> Option<GuestFrame> {
        assert!(offset < GROUP_PAGES, "offset {offset} out of group range");
        let bit = 1u8 << offset;
        let guard = self.collector.pin();
        loop {
            let leaf = self.leaf(group, false, &guard)?;
            let word = leaf.word.load(Ordering::SeqCst);
            if word == RETIRED {
                self.forget_cached(group);
                continue;
            }
            if word == EMPTY {
                return None;
            }
            let (base, live) = unpack(word);
            if live & bit != 0 {
                return None;
            }
            let new_live = live | bit;
            let next = if new_live == 0xff {
                EMPTY
            } else {
                pack(base, new_live)
            };
            if leaf
                .word
                .compare_exchange(word, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.unused_frames.fetch_sub(1, StdOrdering::Relaxed);
                self.hits.fetch_add(1, StdOrdering::Relaxed);
                if new_live == 0xff {
                    self.live_entries.fetch_sub(1, StdOrdering::Relaxed);
                    self.retired_full.fetch_add(1, StdOrdering::Relaxed);
                }
                return Some(GuestFrame::new(base + offset));
            }
        }
    }

    /// Releases page `offset` of `group` (application `free()` path, §4.3).
    ///
    /// If the freed page empties the reservation, the entry is deleted and
    /// the never-granted frames are handed back for the caller to return to
    /// the buddy allocator.
    pub fn release(&self, group: u64, offset: u64) -> ReleaseOutcome {
        assert!(offset < GROUP_PAGES, "offset {offset} out of group range");
        let bit = 1u8 << offset;
        let guard = self.collector.pin();
        loop {
            let Some(leaf) = self.leaf(group, false, &guard) else {
                return ReleaseOutcome::NotTracked;
            };
            let word = leaf.word.load(Ordering::SeqCst);
            if word == RETIRED {
                self.forget_cached(group);
                continue;
            }
            if word == EMPTY {
                return ReleaseOutcome::NotTracked;
            }
            let (base, live) = unpack(word);
            if live & bit == 0 {
                // Tracked group, but this page is not live in it.
                return ReleaseOutcome::NotTracked;
            }
            // The page returns to the reservation, not to the buddy
            // allocator — it can be re-granted on a later fault without a
            // buddy call.
            let new_live = live & !bit;
            let next = if new_live == 0 {
                EMPTY
            } else {
                pack(base, new_live)
            };
            if leaf
                .word
                .compare_exchange(word, next, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                continue;
            }
            if new_live == 0 {
                // The application freed all its pages in this group: the
                // entry dies and every frame of the chunk goes back to the
                // caller.
                let unused: Vec<GuestFrame> = (0..GROUP_PAGES)
                    .map(|i| GuestFrame::new(base + i))
                    .collect();
                self.unused_frames
                    .fetch_sub(GROUP_PAGES - 1, StdOrdering::Relaxed);
                self.live_entries.fetch_sub(1, StdOrdering::Relaxed);
                self.deleted_empty.fetch_add(1, StdOrdering::Relaxed);
                return ReleaseOutcome::Released {
                    unused_frames: unused,
                    entry_deleted: true,
                };
            }
            self.unused_frames.fetch_add(1, StdOrdering::Relaxed);
            return ReleaseOutcome::Released {
                unused_frames: Vec::new(),
                entry_deleted: false,
            };
        }
    }

    /// Looks up the reservation covering `group` without modifying it.
    pub fn peek(&self, group: u64) -> Option<Reservation> {
        let guard = self.collector.pin();
        loop {
            let leaf = self.leaf(group, false, &guard)?;
            let word = leaf.word.load(Ordering::SeqCst);
            if word == RETIRED {
                self.forget_cached(group);
                continue;
            }
            if word == EMPTY {
                return None;
            }
            let (base, live) = unpack(word);
            return Some(Reservation {
                base: GuestFrame::new(base),
                live,
            });
        }
    }

    /// Visits every live reservation (in unspecified order).
    pub fn for_each(&self, mut f: impl FnMut(u64, &Reservation)) {
        let guard = self.collector.pin();
        Self::visit(&self.root, 0, 0, &guard, &mut f);
    }

    /// Tree walk behind [`PaRt::for_each`]: `_guard` pins the epoch for the
    /// leaves dereferenced along the way.
    fn visit(
        node: &Node,
        level: usize,
        prefix: u64,
        _guard: &Guard<'_>,
        f: &mut impl FnMut(u64, &Reservation),
    ) {
        for (i, slot) in node.slots.iter().enumerate() {
            let ptr = scan_load(slot);
            if ptr.is_null() {
                continue;
            }
            if level < DEPTH - 1 {
                // Safety: interior nodes are never reclaimed.
                let child = unsafe { &*ptr.cast_const().cast::<Node>() };
                Self::visit(child, level + 1, (prefix << 9) | i as u64, _guard, f);
            } else {
                // Safety: `_guard` pins the epoch.
                let leaf = unsafe { &*ptr.cast_const().cast::<LeafNode>() };
                let word = leaf.word.load(Ordering::SeqCst);
                if word != EMPTY && word != RETIRED {
                    let (base, live) = unpack(word);
                    f(
                        (prefix << 9) | i as u64,
                        &Reservation {
                            base: GuestFrame::new(base),
                            live,
                        },
                    );
                }
            }
        }
    }

    /// Drains reserved-but-unused frames, calling `release_frame` for each,
    /// until it returns `false` (target met) or the table has no more unused
    /// frames. Drained entries are deleted; their live pages stay mapped and
    /// keep benefiting from the contiguity already created (§4.3). Spare
    /// chunks parked by lost install races are drained the same way, and
    /// emptied leaf nodes are pruned afterwards (epoch-deferred).
    ///
    /// Returns the number of frames drained.
    pub fn drain_unused(&self, mut release_frame: impl FnMut(GuestFrame) -> bool) -> u64 {
        let guard = self.collector.pin();
        let mut groups: Vec<u64> = Vec::new();
        Self::visit(&self.root, 0, 0, &guard, &mut |group, res| {
            if res.unused_count() > 0 {
                groups.push(group);
            }
        });
        let mut drained = 0u64;
        let mut stop = false;
        for group in groups {
            let Some(leaf) = self.leaf(group, false, &guard) else {
                continue;
            };
            loop {
                let word = leaf.word.load(Ordering::SeqCst);
                if word == EMPTY || word == RETIRED {
                    break;
                }
                let (base, live) = unpack(word);
                let res = Reservation {
                    base: GuestFrame::new(base),
                    live,
                };
                let unused: Vec<GuestFrame> = res.unused_frames().collect();
                if unused.is_empty() {
                    break;
                }
                if leaf
                    .word
                    .compare_exchange(word, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
                {
                    continue;
                }
                // The reservation is destroyed: live pages stay mapped; no
                // future grants can come from it.
                self.live_entries.fetch_sub(1, StdOrdering::Relaxed);
                self.unused_frames
                    .fetch_sub(unused.len() as u64, StdOrdering::Relaxed);
                for frame in unused {
                    drained += 1;
                    if !release_frame(frame) {
                        stop = true;
                    }
                }
                break;
            }
            if stop {
                break;
            }
        }
        if !stop {
            while let Some(base) = self.spare.pop() {
                for i in 0..GROUP_PAGES {
                    drained += 1;
                    if !release_frame(GuestFrame::new(base + i)) {
                        stop = true;
                    }
                }
                if stop {
                    break;
                }
            }
        }
        self.prune_with(&guard);
        drained
    }

    /// Prunes empty leaf nodes out of the tree: each is CASed to the
    /// `RETIRED` sentinel, unlinked from its parent slot, and queued on the
    /// epoch collector for deferred reclamation. Concurrent operations that
    /// observe the sentinel help unlink and re-descend; live entries are
    /// untouched. Called by [`PaRt::drain_unused`]; public so reclamation
    /// can be driven (and model-checked) directly.
    pub fn prune_empty(&self) {
        let guard = self.collector.pin();
        self.prune_with(&guard);
    }

    fn prune_with(&self, _guard: &Guard<'_>) {
        self.prune_node(&self.root, 0);
        #[cfg(not(feature = "model-check"))]
        {
            *self.last_leaf.lock() = None;
        }
    }

    fn prune_node(&self, node: &Node, level: usize) {
        for slot in &node.slots {
            let ptr = scan_load(slot);
            if ptr.is_null() {
                continue;
            }
            if level < DEPTH - 1 {
                // Safety: interior nodes are never reclaimed.
                self.prune_node(unsafe { &*ptr.cast_const().cast::<Node>() }, level + 1);
                continue;
            }
            // Safety: the caller's guard pins the epoch.
            let leaf = unsafe { &*ptr.cast_const().cast::<LeafNode>() };
            if leaf.word.load(Ordering::SeqCst) == EMPTY
                && leaf
                    .word
                    .compare_exchange(EMPTY, RETIRED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
            {
                // Winning the RETIRED transition makes this thread the sole
                // unlinker; helpers may beat it to the slot CAS, never to a
                // different value.
                let _ = slot.compare_exchange(
                    ptr,
                    std::ptr::null_mut(),
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
                self.collector
                    .defer_retire(ptr.cast_const().cast::<LeafNode>());
                self.pruned.fetch_add(1, StdOrdering::Relaxed);
            }
        }
    }

    /// Forcibly drains one group's reservation (if it exists), returning
    /// the frames it owned. Live pages stay mapped and are unaffected.
    /// Used when the OS targets a reserved frame for swap or compaction
    /// (§4.4 "Swap and THP").
    pub fn drain_group(&self, group: u64) -> Vec<GuestFrame> {
        let guard = self.collector.pin();
        loop {
            let Some(leaf) = self.leaf(group, false, &guard) else {
                return Vec::new();
            };
            let word = leaf.word.load(Ordering::SeqCst);
            if word == RETIRED {
                self.forget_cached(group);
                continue;
            }
            if word == EMPTY {
                return Vec::new();
            }
            let (base, live) = unpack(word);
            let res = Reservation {
                base: GuestFrame::new(base),
                live,
            };
            let unused: Vec<GuestFrame> = res.unused_frames().collect();
            if leaf
                .word
                .compare_exchange(word, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                self.unused_frames
                    .fetch_sub(unused.len() as u64, StdOrdering::Relaxed);
                self.live_entries.fetch_sub(1, StdOrdering::Relaxed);
                return unused;
            }
        }
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> PartStats {
        PartStats {
            hits: self.hits.load(StdOrdering::Relaxed),
            installs: self.installs.load(StdOrdering::Relaxed),
            retired_full: self.retired_full.load(StdOrdering::Relaxed),
            deleted_empty: self.deleted_empty.load(StdOrdering::Relaxed),
            live_entries: self.live_entries.load(StdOrdering::Relaxed),
            unused_frames: self.unused_frames.load(StdOrdering::Relaxed),
        }
    }

    /// Current reserved-but-unused frame count (the §6.2 metric).
    pub fn unused_frames(&self) -> u64 {
        self.unused_frames.load(StdOrdering::Relaxed)
    }

    /// Current number of live entries.
    pub fn live_entries(&self) -> u64 {
        self.live_entries.load(StdOrdering::Relaxed)
    }

    /// Leaf nodes pruned so far (cumulative; test/diagnostic surface).
    pub fn pruned_leaves(&self) -> u64 {
        self.pruned.load(StdOrdering::Relaxed)
    }

    /// Chunk bases currently parked in the spare pool (quiescent snapshot;
    /// always empty for serial callers — test/diagnostic surface).
    pub fn spare_chunks(&self) -> Vec<u64> {
        let mut chunks: Vec<u64> = self
            .spare
            .slots
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|&b| b != FREE_SLOT)
            .collect();
        chunks.extend(self.spare.overflow.lock().iter().copied());
        chunks
    }
}

impl Drop for PaRt {
    fn drop(&mut self) {
        // Free leaves still queued on the collector (they were unlinked from
        // the tree, so the walk below cannot double-free them).
        for bin in &self.collector.bins {
            for leaf in std::mem::take(&mut *bin.lock()) {
                // Safety: unlinked, and no operation can be in flight during
                // drop (exclusive access).
                unsafe { drop(Arc::from_raw(leaf.0)) };
            }
        }
        fn free(node: &Node, level: usize) {
            for slot in &node.slots {
                let ptr = slot.load(Ordering::SeqCst);
                if ptr.is_null() {
                    continue;
                }
                if level < DEPTH - 1 {
                    // Safety: exclusively owned during drop.
                    let child = unsafe { Box::from_raw(ptr.cast::<Node>()) };
                    free(&child, level + 1);
                } else {
                    // Safety: the tree holds the strong count taken at
                    // publication.
                    unsafe { drop(Arc::from_raw(ptr.cast_const().cast::<LeafNode>())) };
                }
            }
        }
        free(&self.root, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(base: u64) -> impl FnOnce() -> Option<GuestFrame> {
        move || Some(GuestFrame::new(base))
    }

    #[test]
    fn install_then_hit() {
        let part = PaRt::new();
        let a = part.take_or_install(5, 0, chunk(80));
        assert_eq!(a, TakeOutcome::FromNewReservation(GuestFrame::new(80)));
        let b = part.take_or_install(5, 3, || panic!("no second chunk needed"));
        assert_eq!(b, TakeOutcome::FromReservation(GuestFrame::new(83)));
        let s = part.stats();
        assert_eq!(s.installs, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.unused_frames, 6);
    }

    #[test]
    fn factory_decline_reports_unavailable() {
        let part = PaRt::new();
        assert_eq!(
            part.take_or_install(1, 0, || None),
            TakeOutcome::Unavailable
        );
        assert_eq!(part.live_entries(), 0);
    }

    #[test]
    fn fully_granted_entry_retires() {
        let part = PaRt::new();
        part.take_or_install(7, 0, chunk(8));
        for off in 1..8 {
            part.take_or_install(7, off, || panic!("reservation exists"));
        }
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.stats().retired_full, 1);
        assert_eq!(part.unused_frames(), 0);
        // Post-retirement, frees are not tracked.
        assert_eq!(part.release(7, 0), ReleaseOutcome::NotTracked);
    }

    #[test]
    fn release_last_live_page_deletes_entry_and_returns_unused() {
        let part = PaRt::new();
        part.take_or_install(2, 1, chunk(16));
        part.take_or_install(2, 4, || None);
        match part.release(2, 1) {
            ReleaseOutcome::Released {
                entry_deleted,
                unused_frames,
            } => {
                assert!(!entry_deleted);
                assert!(unused_frames.is_empty());
            }
            other => panic!("unexpected {other:?}"),
        }
        match part.release(2, 4) {
            ReleaseOutcome::Released {
                entry_deleted,
                unused_frames,
            } => {
                assert!(entry_deleted);
                // The whole chunk returns: freed pages re-joined the
                // reservation, so all of 16..24 is owned by it at death.
                let raws: Vec<u64> = unused_frames.iter().map(|f| f.raw()).collect();
                assert_eq!(raws, (16..24).collect::<Vec<u64>>());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.stats().deleted_empty, 1);
    }

    #[test]
    fn distinct_groups_are_independent() {
        let part = PaRt::new();
        part.take_or_install(0, 0, chunk(0));
        part.take_or_install(1, 0, chunk(8));
        // Far-apart groups exercise distinct subtrees.
        part.take_or_install(1 << 30, 0, chunk(16));
        assert_eq!(part.live_entries(), 3);
        assert_eq!(part.peek(0).unwrap().base, GuestFrame::new(0));
        assert_eq!(part.peek(1 << 30).unwrap().base, GuestFrame::new(16));
        assert!(part.peek(2).is_none());
    }

    #[test]
    fn refault_after_free_within_live_entry_regrants_same_frame() {
        let part = PaRt::new();
        part.take_or_install(3, 0, chunk(24));
        part.take_or_install(3, 2, || None);
        part.release(3, 2);
        // Page 2 faults again while the entry is alive: same frame comes
        // back, and unused accounting is unchanged (it was granted before).
        let r = part.take_or_install(3, 2, || panic!("entry exists"));
        assert_eq!(r, TakeOutcome::FromReservation(GuestFrame::new(26)));
        assert_eq!(part.unused_frames(), 6);
    }

    #[test]
    #[should_panic(expected = "already live")]
    fn double_grant_panics() {
        let part = PaRt::new();
        part.take_or_install(3, 0, chunk(24));
        part.take_or_install(3, 0, || None);
    }

    #[test]
    #[should_panic(expected = "group-aligned")]
    fn misaligned_chunk_panics() {
        let part = PaRt::new();
        part.take_or_install(3, 0, chunk(5));
    }

    #[test]
    fn for_each_visits_live_entries() {
        let part = PaRt::new();
        part.take_or_install(10, 0, chunk(0));
        part.take_or_install(20, 0, chunk(8));
        let mut seen = Vec::new();
        part.for_each(|g, r| seen.push((g, r.base.raw())));
        seen.sort_unstable();
        assert_eq!(seen, vec![(10, 0), (20, 8)]);
    }

    #[test]
    fn drain_unused_returns_frames_and_deletes_entries() {
        let part = PaRt::new();
        part.take_or_install(1, 0, chunk(0));
        part.take_or_install(2, 0, chunk(8));
        let mut freed = Vec::new();
        let drained = part.drain_unused(|f| {
            freed.push(f.raw());
            true
        });
        assert_eq!(drained, 14);
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.unused_frames(), 0);
        assert_eq!(freed.len(), 14);
        // Pages 0 of both groups stay granted (not in the freed list).
        assert!(!freed.contains(&0));
        assert!(!freed.contains(&8));
    }

    #[test]
    fn drain_unused_respects_stop_signal() {
        let part = PaRt::new();
        part.take_or_install(1, 0, chunk(0));
        part.take_or_install(2, 0, chunk(8));
        let mut count = 0;
        // Stop after the first entry's frames.
        part.drain_unused(|_| {
            count += 1;
            count < 7
        });
        // One entry drained (7 frames), the other survives.
        assert_eq!(part.live_entries(), 1);
    }

    #[test]
    fn drain_unused_prunes_emptied_leaves_and_groups_stay_usable() {
        let part = PaRt::new();
        part.take_or_install(9, 0, chunk(0));
        part.drain_unused(|_| true);
        assert!(part.pruned_leaves() >= 1, "the emptied leaf was pruned");
        // The group is immediately reusable through a fresh leaf.
        let again = part.take_or_install(9, 1, chunk(8));
        assert_eq!(again, TakeOutcome::FromNewReservation(GuestFrame::new(9)));
        assert_eq!(part.peek(9).unwrap().base, GuestFrame::new(8));
    }

    #[test]
    fn serial_callers_never_park_spares() {
        let part = PaRt::new();
        for g in 0..32 {
            part.take_or_install(g, 0, chunk(g * 8));
        }
        assert!(part.spare_chunks().is_empty());
    }

    #[test]
    fn concurrent_faulting_threads_are_safe() {
        // Many threads fault into disjoint and overlapping groups; chunk
        // bases come from an atomic bump allocator. Every granted frame must
        // be unique, and all bookkeeping must balance.
        use std::sync::atomic::AtomicU64;
        let part = Arc::new(PaRt::new());
        let next_chunk = Arc::new(AtomicU64::new(0));
        let threads = 8;
        let groups_per_thread = 64u64;
        let mut handles = Vec::new();
        for t in 0..threads {
            let part = Arc::clone(&part);
            let next_chunk = Arc::clone(&next_chunk);
            handles.push(std::thread::spawn(move || {
                let mut frames = Vec::new();
                for g in 0..groups_per_thread {
                    // Threads share groups (g) but own distinct offsets (t).
                    let out = part.take_or_install(g, t, || {
                        Some(GuestFrame::new(
                            next_chunk.fetch_add(GROUP_PAGES, StdOrdering::Relaxed),
                        ))
                    });
                    match out {
                        TakeOutcome::FromReservation(f) | TakeOutcome::FromNewReservation(f) => {
                            frames.push(f.raw())
                        }
                        TakeOutcome::Unavailable => unreachable!(),
                    }
                }
                frames
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before, "no frame granted twice");
        // 64 groups × 8 offsets each = all entries fully granted & retired.
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.unused_frames(), 0);
        assert_eq!(part.stats().installs, 64);
        // Conservation: every allocated chunk is either fully granted or
        // parked in the spare pool — nothing leaked.
        let allocated_chunks = next_chunk.load(StdOrdering::Relaxed) / GROUP_PAGES;
        assert_eq!(
            allocated_chunks,
            64 + part.spare_chunks().len() as u64,
            "chunks = installs + spares"
        );
    }
}
