//! The PTEMagnet reservation allocator (paper §4.1–§4.2).
//!
//! Plugs into the guest OS through [`GuestFrameAllocator`]. On the first
//! fault to an eight-page group it takes an aligned order-3 chunk from the
//! buddy allocator, grants the faulting page, and parks the rest in the
//! process's [`PaRt`]. Later faults in the group are PaRT hits — no buddy
//! call at all, which is why allocation gets (slightly) *faster* with
//! PTEMagnet (§6.4) while guaranteeing guest-physical contiguity.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmsim_os::{AllocCost, GuestBuddy, GuestFrameAllocator, Pid};
use vmsim_types::{GuestFrame, GuestVirtPage, MemError, Result, GROUP_SHIFT};

use crate::part::{PaRt, ReleaseOutcome, TakeOutcome};
use crate::policy::EnablePolicy;

/// Cumulative counters of the reservation allocator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReservationStats {
    /// Faults served from an existing reservation (fast path).
    pub reservation_hits: u64,
    /// New reservations installed (order-3 buddy allocations).
    pub reservations_created: u64,
    /// Faults that fell back to order-0 allocation (no aligned chunk
    /// available, or PTEMagnet disabled for the process by policy).
    pub fallbacks: u64,
    /// Frames returned to the buddy allocator by reclamation.
    pub reclaimed_frames: u64,
}

impl vmsim_obs::MetricSource for ReservationStats {
    fn source_name(&self) -> &'static str {
        "reservation"
    }

    fn emit(&self, out: &mut Vec<vmsim_obs::Metric>) {
        out.push(vmsim_obs::Metric::u64("hits", self.reservation_hits));
        out.push(vmsim_obs::Metric::u64("created", self.reservations_created));
        out.push(vmsim_obs::Metric::u64("fallbacks", self.fallbacks));
        out.push(vmsim_obs::Metric::u64(
            "reclaimed_frames",
            self.reclaimed_frames,
        ));
    }
}

/// The PTEMagnet guest frame allocator.
///
/// Each process owns a [`PaRt`]; forked children additionally hold `Arc`
/// references to their ancestors' tables so a child fault can be served from
/// a parent reservation, while children never *create* reservations in the
/// parent's table (§4.4).
///
/// # Examples
///
/// ```
/// use ptemagnet::ReservationAllocator;
/// use vmsim_os::{GuestBuddy, GuestFrameAllocator, Pid};
/// use vmsim_types::GuestVirtPage;
///
/// # fn main() -> Result<(), vmsim_types::MemError> {
/// let mut alloc = ReservationAllocator::new();
/// let mut buddy = GuestBuddy::new(256);
/// let (first, _) = alloc.allocate(Pid(1), GuestVirtPage::new(8), &mut buddy)?;
/// let (second, cost) = alloc.allocate(Pid(1), GuestVirtPage::new(9), &mut buddy)?;
/// // Adjacent virtual pages are guaranteed adjacent physical frames.
/// assert_eq!(second.raw(), first.raw() + 1);
/// assert!(cost.reservation_hit);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ReservationAllocator {
    /// Per-process reservation tables.
    parts: HashMap<Pid, Arc<PaRt>>,
    /// Ancestor tables visible to each process (fork inheritance chain).
    inherited: HashMap<Pid, Vec<Arc<PaRt>>>,
    policy: EnablePolicy,
    /// Declared memory limits for the policy check (cgroup model, §4.4).
    memory_limits: HashMap<Pid, u64>,
    /// Reverse index: chunk base frame -> (owner pid, group), for the swap
    /// hook (§4.4). Entries are validated lazily against the owning PaRT,
    /// so stale entries (retired/drained groups) are harmless.
    chunk_owner: HashMap<u64, (Pid, u64)>,
    stats: ReservationStats,
    /// Victim selection for reclamation ("randomly selected application",
    /// §4.3) — seeded for reproducibility.
    rng: StdRng,
}

impl Default for ReservationAllocator {
    fn default() -> Self {
        Self::new()
    }
}

impl ReservationAllocator {
    /// Creates an allocator with PTEMagnet enabled for every process.
    pub fn new() -> Self {
        Self::with_policy(EnablePolicy::Always)
    }

    /// Creates an allocator with a conditional enablement policy.
    pub fn with_policy(policy: EnablePolicy) -> Self {
        Self {
            parts: HashMap::new(),
            inherited: HashMap::new(),
            policy,
            memory_limits: HashMap::new(),
            chunk_owner: HashMap::new(),
            stats: ReservationStats::default(),
            rng: StdRng::seed_from_u64(0x9e37_79b9),
        }
    }

    /// Registers a process's declared memory limit (the cgroup
    /// `memory.limit_in_bytes` the policy inspects).
    pub fn set_memory_limit(&mut self, pid: Pid, bytes: u64) {
        self.memory_limits.insert(pid, bytes);
    }

    /// Allocator counters.
    pub fn stats(&self) -> ReservationStats {
        self.stats
    }

    /// The reservation table of `pid`, if it has one.
    pub fn part_of(&self, pid: Pid) -> Option<&Arc<PaRt>> {
        self.parts.get(&pid)
    }

    /// Reserved-but-unused frames across all processes (the §6.2 metric).
    pub fn total_unused_frames(&self) -> u64 {
        self.parts.values().map(|p| p.unused_frames()).sum()
    }

    fn part(&mut self, pid: Pid) -> Arc<PaRt> {
        Arc::clone(
            self.parts
                .entry(pid)
                .or_insert_with(|| Arc::new(PaRt::new())),
        )
    }

    fn fallback(&mut self, buddy: &mut GuestBuddy) -> Result<(GuestFrame, AllocCost)> {
        let gfn = buddy.alloc(0)?;
        self.stats.fallbacks += 1;
        Ok((
            gfn,
            AllocCost {
                buddy_calls: 1,
                fallback: true,
                ..AllocCost::default()
            },
        ))
    }
}

impl GuestFrameAllocator for ReservationAllocator {
    fn name(&self) -> &'static str {
        "ptemagnet"
    }

    fn emit_metrics(&self, reg: &mut vmsim_obs::Registry) {
        reg.record(&self.stats);
        let mut parts = crate::part::PartStats::default();
        for part in self.parts.values() {
            parts.merge(&part.stats());
        }
        reg.record(&parts);
        reg.gauge_u64("part.tables", self.parts.len() as u64);
    }

    fn allocate(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        buddy: &mut GuestBuddy,
    ) -> Result<(GuestFrame, AllocCost)> {
        if !self.policy.enabled(self.memory_limits.get(&pid).copied()) {
            return self.fallback(buddy);
        }
        let group = vpn.group_id();
        let offset = vpn.group_offset();

        // A child first consults ancestor tables (§4.4): if the page is
        // covered by a live parental reservation and not itself mapped by
        // the ancestor (e.g. the child is COW-breaking a shared page), take
        // it from there.
        if let Some(chain) = self.inherited.get(&pid) {
            for ancestor in chain.clone() {
                if let Some(gfn) = ancestor.try_take(group, offset) {
                    self.stats.reservation_hits += 1;
                    return Ok((
                        gfn,
                        AllocCost {
                            part_lookups: 1,
                            reservation_hit: true,
                            ..AllocCost::default()
                        },
                    ));
                }
            }
        }

        let part = self.part(pid);
        // Fast path: the group already has a reservation with this page
        // available.
        if let Some(gfn) = part.try_take(group, offset) {
            self.stats.reservation_hits += 1;
            return Ok((
                gfn,
                AllocCost {
                    part_lookups: 1,
                    reservation_hit: true,
                    ..AllocCost::default()
                },
            ));
        }
        // An entry exists but this page is live in it: the process is
        // COW-breaking a page it still shares through that reservation, so
        // the copy needs a fresh frame from the default path.
        if part.peek(group).is_some() {
            let (gfn, mut cost) = self.fallback(buddy)?;
            cost.part_lookups = 1;
            return Ok((gfn, cost));
        }
        // No reservation: install one. The chunk factory runs under the
        // group's leaf lock, exactly like the kernel patch calls the buddy
        // allocator from the fault handler.
        let mut buddy_calls = 0u32;
        let outcome = part.take_or_install(group, offset, || {
            buddy_calls += 1;
            match buddy.alloc(GROUP_SHIFT) {
                Ok(base) => {
                    // Reservations are handed back frame-by-frame later, so
                    // convert the order-3 bookkeeping to order-0 pieces now.
                    buddy
                        .fragment_allocation(base, GROUP_SHIFT)
                        .expect("freshly allocated chunk can be fragmented");
                    Some(base)
                }
                Err(_) => None,
            }
        });
        match outcome {
            TakeOutcome::FromReservation(gfn) => {
                self.stats.reservation_hits += 1;
                Ok((
                    gfn,
                    AllocCost {
                        part_lookups: 1,
                        reservation_hit: true,
                        ..AllocCost::default()
                    },
                ))
            }
            TakeOutcome::FromNewReservation(gfn) => {
                self.stats.reservations_created += 1;
                self.chunk_owner
                    .insert(gfn.raw() & !(vmsim_types::GROUP_PAGES - 1), (pid, group));
                Ok((
                    gfn,
                    AllocCost {
                        buddy_calls,
                        part_lookups: 1,
                        reservation_new: true,
                        ..AllocCost::default()
                    },
                ))
            }
            TakeOutcome::Unavailable => {
                // No aligned chunk available: behave like the default kernel.
                self.fallback(buddy)
            }
        }
    }

    fn free(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        gfn: GuestFrame,
        buddy: &mut GuestBuddy,
    ) -> Result<()> {
        let group = vpn.group_id();
        let offset = vpn.group_offset();
        // The page may be tracked by the process's own table or an
        // ancestor's (if granted from an inherited reservation).
        let own = self.parts.get(&pid);
        let chain = self.inherited.get(&pid).map_or(&[][..], |c| c.as_slice());
        for table in own.into_iter().chain(chain) {
            // Only the table whose reservation covers this exact frame may
            // account the release.
            let covers = table
                .peek(group)
                .is_some_and(|r| r.base.raw() + offset == gfn.raw());
            if !covers {
                continue;
            }
            match table.release(group, offset) {
                ReleaseOutcome::Released {
                    unused_frames,
                    entry_deleted,
                } => {
                    // While the entry lives, the freed page stays parked in
                    // the reservation (re-grantable without a buddy call);
                    // only entry death returns frames — all of them — to
                    // the buddy allocator.
                    if entry_deleted {
                        for f in unused_frames {
                            buddy.free(f, 0)?;
                        }
                    }
                    return Ok(());
                }
                ReleaseOutcome::NotTracked => {}
            }
        }
        // Not covered by any reservation (entry retired, reclaimed, or
        // allocated via fallback): default kernel path.
        buddy.free(gfn, 0)
    }

    fn fork(&mut self, parent: Pid, child: Pid) {
        // The child sees the parent's table plus everything the parent
        // inherited, but creates new reservations only in its own table.
        let mut chain = Vec::new();
        if let Some(p) = self.parts.get(&parent) {
            chain.push(Arc::clone(p));
        }
        if let Some(pchain) = self.inherited.get(&parent) {
            chain.extend(pchain.iter().cloned());
        }
        if !chain.is_empty() {
            self.inherited.insert(child, chain);
        }
        if let Some(limit) = self.memory_limits.get(&parent).copied() {
            self.memory_limits.insert(child, limit);
        }
    }

    fn exit(&mut self, pid: Pid, buddy: &mut GuestBuddy) {
        self.inherited.remove(&pid);
        self.memory_limits.remove(&pid);
        if let Some(part) = self.parts.remove(&pid) {
            // Return every frame still parked in reservations. Live pages
            // were already freed by the OS unmap path (release() handled
            // them), so only never-granted frames remain here.
            part.drain_unused(|f| {
                buddy
                    .free(f, 0)
                    .expect("reserved frames are live order-0 allocations");
                true
            });
        }
    }

    fn reclaim(&mut self, buddy: &mut GuestBuddy, target_frames: u64) -> u64 {
        // Walk the reservations of randomly selected processes until the
        // target is met (§4.3).
        let mut released = 0u64;
        let mut candidates: Vec<Pid> = self
            .parts
            .iter()
            .filter(|(_, p)| p.unused_frames() > 0)
            .map(|(&pid, _)| pid)
            .collect();
        // HashMap iteration order is arbitrary; sort before applying the
        // seeded RNG so victim selection is reproducible across runs.
        candidates.sort_unstable();
        while released < target_frames && !candidates.is_empty() {
            let idx = self.rng.random_range(0..candidates.len());
            let victim = candidates.swap_remove(idx);
            let part = Arc::clone(&self.parts[&victim]);
            let mut remaining = target_frames - released;
            released += part.drain_unused(|f| {
                buddy
                    .free(f, 0)
                    .expect("reserved frames are live order-0 allocations");
                remaining = remaining.saturating_sub(1);
                remaining > 0
            });
        }
        self.stats.reclaimed_frames += released;
        released
    }

    fn on_frame_targeted(&mut self, gfn: GuestFrame, buddy: &mut GuestBuddy) -> u64 {
        let chunk = gfn.raw() & !(vmsim_types::GROUP_PAGES - 1);
        let Some(&(pid, group)) = self.chunk_owner.get(&chunk) else {
            return 0;
        };
        let covers = self
            .parts
            .get(&pid)
            .and_then(|p| p.peek(group))
            .is_some_and(|r| r.base.raw() == chunk);
        if !covers {
            // Stale: the reservation retired, emptied, or was reclaimed.
            self.chunk_owner.remove(&chunk);
            return 0;
        }
        let part = Arc::clone(&self.parts[&pid]);
        let mut released = 0u64;
        for f in part.drain_group(group) {
            buddy
                .free(f, 0)
                .expect("reserved frames are live order-0 allocations");
            released += 1;
        }
        self.chunk_owner.remove(&chunk);
        self.stats.reclaimed_frames += released;
        released
    }

    fn reserved_unused_frames(&self) -> u64 {
        self.total_unused_frames()
    }

    fn any_reserved_unused_frame(&self) -> Option<GuestFrame> {
        // Lowest frame number across every table: a min is independent of
        // map/tree iteration order, so the pick is deterministic.
        let mut best: Option<u64> = None;
        for part in self.parts.values() {
            part.for_each(|_group, r| {
                for f in r.unused_frames() {
                    best = Some(best.map_or(f.raw(), |b| b.min(f.raw())));
                }
            });
        }
        best.map(GuestFrame::new)
    }

    fn reserved_unused_frames_of(&self, pid: Pid) -> u64 {
        self.parts.get(&pid).map_or(0, |p| p.unused_frames())
    }
}

/// A convenience error kept for API completeness: currently unused paths
/// return standard [`MemError`] values.
#[doc(hidden)]
pub type ReservationError = MemError;

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_types::GROUP_PAGES;

    fn setup() -> (ReservationAllocator, GuestBuddy) {
        (ReservationAllocator::new(), GuestBuddy::new(1024))
    }

    #[test]
    fn first_fault_reserves_whole_group() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        let (gfn, cost) = a.allocate(pid, GuestVirtPage::new(8), &mut buddy).unwrap();
        assert_eq!(gfn.raw() % GROUP_PAGES, 0);
        assert_eq!(cost.buddy_calls, 1);
        assert!(!cost.reservation_hit);
        // 8 frames left the pool even though one page was granted.
        assert_eq!(buddy.free_frames(), 1024 - 8);
        assert_eq!(a.reserved_unused_frames(), 7);
    }

    #[test]
    fn later_faults_hit_reservation_and_are_contiguous() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        let (first, _) = a.allocate(pid, GuestVirtPage::new(16), &mut buddy).unwrap();
        for off in 1..GROUP_PAGES {
            let (gfn, cost) = a
                .allocate(pid, GuestVirtPage::new(16 + off), &mut buddy)
                .unwrap();
            assert_eq!(gfn.raw(), first.raw() + off, "contiguity guaranteed");
            assert!(cost.reservation_hit);
            assert_eq!(cost.buddy_calls, 0);
        }
        assert_eq!(a.stats().reservation_hits, 7);
        assert_eq!(a.reserved_unused_frames(), 0);
    }

    #[test]
    fn interleaved_processes_stay_contiguous() {
        // The headline property: colocation does NOT fragment groups.
        let (mut a, mut buddy) = setup();
        let p1 = Pid(1);
        let p2 = Pid(2);
        let mut frames1 = Vec::new();
        for off in 0..GROUP_PAGES {
            let (f1, _) = a.allocate(p1, GuestVirtPage::new(off), &mut buddy).unwrap();
            let (_f2, _) = a.allocate(p2, GuestVirtPage::new(off), &mut buddy).unwrap();
            frames1.push(f1.raw());
        }
        assert!(frames1.windows(2).all(|w| w[1] == w[0] + 1));
    }

    #[test]
    fn fallback_when_no_aligned_chunk() {
        let (mut a, mut buddy) = setup();
        // Shred the pool: allocate everything, free every other frame —
        // plenty of free memory, no order-3 block.
        let mut held = Vec::new();
        for _ in 0..1024 {
            held.push(buddy.alloc(0).unwrap());
        }
        for f in held.iter().skip(1).step_by(2) {
            buddy.free(*f, 0).unwrap();
        }
        let (gfn, cost) = a
            .allocate(Pid(1), GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        assert_eq!(cost.buddy_calls, 1);
        assert!(!cost.reservation_hit);
        assert_eq!(a.stats().fallbacks, 1);
        // Frame is usable and freeable.
        a.free(Pid(1), GuestVirtPage::new(0), gfn, &mut buddy)
            .unwrap();
    }

    #[test]
    fn oom_propagates() {
        let mut a = ReservationAllocator::new();
        let mut buddy = GuestBuddy::new(8);
        a.allocate(Pid(1), GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        assert!(matches!(
            a.allocate(Pid(1), GuestVirtPage::new(64), &mut buddy),
            Err(MemError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn free_of_all_granted_pages_returns_unused_frames() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        let (g0, _) = a.allocate(pid, GuestVirtPage::new(0), &mut buddy).unwrap();
        let (g1, _) = a.allocate(pid, GuestVirtPage::new(1), &mut buddy).unwrap();
        assert_eq!(buddy.free_frames(), 1024 - 8);
        a.free(pid, GuestVirtPage::new(0), g0, &mut buddy).unwrap();
        // Entry still alive: the freed frame stays parked in the
        // reservation (re-grantable), not in the buddy pool.
        assert_eq!(buddy.free_frames(), 1024 - 8);
        assert_eq!(a.reserved_unused_frames(), 7);
        a.free(pid, GuestVirtPage::new(1), g1, &mut buddy).unwrap();
        // Last live page freed: entry deleted, all 8 frames back.
        assert_eq!(buddy.free_frames(), 1024);
        assert_eq!(a.reserved_unused_frames(), 0);
    }

    #[test]
    fn free_after_full_grant_uses_default_path() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        let mut frames = Vec::new();
        for off in 0..GROUP_PAGES {
            frames.push(
                a.allocate(pid, GuestVirtPage::new(off), &mut buddy)
                    .unwrap()
                    .0,
            );
        }
        for (off, gfn) in frames.into_iter().enumerate() {
            a.free(pid, GuestVirtPage::new(off as u64), gfn, &mut buddy)
                .unwrap();
        }
        assert_eq!(buddy.free_frames(), 1024);
    }

    #[test]
    fn child_takes_from_parent_reservation() {
        let (mut a, mut buddy) = setup();
        let parent = Pid(1);
        let child = Pid(2);
        let (pf, _) = a
            .allocate(parent, GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        a.fork(parent, child);
        // Child faults page 1 of the same group: granted from the parent's
        // reservation, adjacent to the parent's frame.
        let (cf, cost) = a
            .allocate(child, GuestVirtPage::new(1), &mut buddy)
            .unwrap();
        assert_eq!(cf.raw(), pf.raw() + 1);
        assert!(cost.reservation_hit);
        // A fault in a fresh group creates a reservation in the CHILD's own
        // table, not the parent's.
        a.allocate(child, GuestVirtPage::new(64), &mut buddy)
            .unwrap();
        assert_eq!(a.part_of(child).unwrap().live_entries(), 1);
        assert_eq!(a.part_of(parent).unwrap().live_entries(), 1);
    }

    #[test]
    fn exit_returns_all_reserved_frames() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        let (gfn, _) = a.allocate(pid, GuestVirtPage::new(0), &mut buddy).unwrap();
        // The OS frees the mapped page first (unmap path), then exits.
        a.free(pid, GuestVirtPage::new(0), gfn, &mut buddy).unwrap();
        a.exit(pid, &mut buddy);
        assert_eq!(buddy.free_frames(), 1024);
    }

    #[test]
    fn exit_with_live_pages_still_drains_unused() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        a.allocate(pid, GuestVirtPage::new(0), &mut buddy).unwrap();
        a.exit(pid, &mut buddy);
        // 7 unused frames drained; the granted one is owned by the OS layer.
        assert_eq!(buddy.free_frames(), 1024 - 1);
    }

    #[test]
    fn reclaim_meets_target_and_counts() {
        let (mut a, mut buddy) = setup();
        for g in 0..4u64 {
            a.allocate(Pid(1), GuestVirtPage::new(g * 8), &mut buddy)
                .unwrap();
        }
        assert_eq!(a.reserved_unused_frames(), 28);
        let released = a.reclaim(&mut buddy, 10);
        assert!(released >= 10, "met the target, got {released}");
        assert!(a.reserved_unused_frames() <= 28 - released);
        assert_eq!(a.stats().reclaimed_frames, released);
    }

    #[test]
    fn reclaimed_groups_no_longer_grant() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        let (f0, _) = a.allocate(pid, GuestVirtPage::new(0), &mut buddy).unwrap();
        a.reclaim(&mut buddy, 100);
        // Fault page 1: the old reservation is gone, so a new chunk (or
        // fallback) serves it — and the frame is NOT adjacent-by-guarantee.
        let (f1, _) = a.allocate(pid, GuestVirtPage::new(1), &mut buddy).unwrap();
        assert_ne!(f1.raw(), f0.raw());
        // Frame 0 can still be freed through the default path.
        a.free(pid, GuestVirtPage::new(0), f0, &mut buddy).unwrap();
    }

    #[test]
    fn policy_disables_reservations_for_small_processes() {
        let mut a = ReservationAllocator::with_policy(EnablePolicy::MemoryLimitAbove(1024 * 1024));
        let mut buddy = GuestBuddy::new(1024);
        let small = Pid(1);
        let big = Pid(2);
        a.set_memory_limit(small, 4096);
        a.set_memory_limit(big, 64 * 1024 * 1024);
        let (_f, cost) = a
            .allocate(small, GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        assert!(!cost.reservation_hit);
        assert_eq!(a.stats().fallbacks, 1);
        assert_eq!(a.reserved_unused_frames(), 0);
        a.allocate(big, GuestVirtPage::new(0), &mut buddy).unwrap();
        assert_eq!(a.reserved_unused_frames(), 7);
    }

    #[test]
    fn cow_break_on_live_page_falls_back_to_fresh_frame() {
        // Regression (found by tests/stress.rs): after fork, a process
        // COW-breaking a page that is still live in a covering reservation
        // must get a *new* frame, not panic or double-grant.
        let (mut a, mut buddy) = setup();
        let parent = Pid(1);
        let child = Pid(2);
        let (orig, _) = a
            .allocate(parent, GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        a.fork(parent, child);
        // Parent COW-breaks its own page 0 (own-table path).
        let (copy_p, cost) = a
            .allocate(parent, GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        assert_ne!(copy_p, orig);
        assert!(!cost.reservation_hit);
        // Child COW-breaks the same page (inherited-table path).
        let (copy_c, _) = a
            .allocate(child, GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        assert_ne!(copy_c, orig);
        assert_ne!(copy_c, copy_p);
        // Everything remains freeable without leaks.
        a.free(parent, GuestVirtPage::new(0), copy_p, &mut buddy)
            .unwrap();
        a.free(child, GuestVirtPage::new(0), copy_c, &mut buddy)
            .unwrap();
        a.free(parent, GuestVirtPage::new(0), orig, &mut buddy)
            .unwrap();
        a.exit(child, &mut buddy);
        a.exit(parent, &mut buddy);
        assert_eq!(buddy.free_frames(), 1024);
    }

    #[test]
    fn swap_target_reclaims_covering_reservation() {
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        let (gfn, _) = a.allocate(pid, GuestVirtPage::new(0), &mut buddy).unwrap();
        assert_eq!(a.reserved_unused_frames(), 7);
        // The OS targets a *reserved* (unmapped) frame of the same chunk.
        let target = GuestFrame::new(gfn.raw() + 3);
        let released = a.on_frame_targeted(target, &mut buddy);
        assert_eq!(released, 7, "whole reservation reclaimed");
        assert_eq!(a.reserved_unused_frames(), 0);
        // The mapped page is untouched and still freeable (default path).
        a.free(pid, GuestVirtPage::new(0), gfn, &mut buddy).unwrap();
        assert_eq!(buddy.free_frames(), 1024);
        // Re-targeting is a no-op.
        assert_eq!(a.on_frame_targeted(target, &mut buddy), 0);
    }

    #[test]
    fn swap_target_on_unreserved_frame_is_noop() {
        let (mut a, mut buddy) = setup();
        assert_eq!(a.on_frame_targeted(GuestFrame::new(500), &mut buddy), 0);
    }

    #[test]
    fn adversarial_every_eighth_page_wastes_seven_eighths() {
        // The pathological pattern discussed in §6.2: touching only every
        // eighth page reserves 8x the application's footprint.
        let (mut a, mut buddy) = setup();
        let pid = Pid(1);
        for g in 0..8u64 {
            a.allocate(pid, GuestVirtPage::new(g * 8), &mut buddy)
                .unwrap();
        }
        assert_eq!(a.reserved_unused_frames(), 7 * 8);
        assert_eq!(buddy.free_frames(), 1024 - 64);
    }
}
