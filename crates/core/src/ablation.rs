//! Ablation variants of PTEMagnet's design choices.
//!
//! The paper fixes two design parameters with geometric arguments:
//! the 8-page reservation granularity (§4.1: eight 8-byte PTEs fill one
//! 64-byte cache line) and fine-grained per-node PaRT locking (§4.2).
//! These variants let the `vmsim-bench` ablation benches quantify both
//! choices empirically.

use std::collections::HashMap;

use parking_lot::Mutex;
use vmsim_os::{AllocCost, GuestBuddy, GuestFrameAllocator, Pid};
use vmsim_types::{GuestFrame, GuestVirtPage, Result};

use crate::part::{PaRt, ReleaseOutcome, TakeOutcome};

/// A reservation allocator with configurable group size (1, 2, 4, 8, or 16
/// pages), for the granularity ablation.
///
/// Uses straightforward hash-map bookkeeping instead of the radix-tree PaRT;
/// the point of this type is layout behaviour, not lookup scalability.
#[derive(Debug)]
pub struct GranularReservationAllocator {
    /// log2 of pages per reservation group.
    order: u32,
    /// (pid, group) -> (base frame, live mask). Non-live pages are owned by
    /// the reservation, exactly like [`crate::PaRt`]'s semantics.
    entries: HashMap<(Pid, u64), (GuestFrame, u32)>,
    hits: u64,
    installs: u64,
    fallbacks: u64,
}

impl GranularReservationAllocator {
    /// Creates an allocator reserving 2^`order`-page groups.
    ///
    /// # Panics
    ///
    /// Panics if `order > 4` (32-page groups exceed the mask width and the
    /// buddy orders this ablation explores).
    pub fn new(order: u32) -> Self {
        assert!(order <= 4, "granularity ablation covers 1..=16 pages");
        Self {
            order,
            entries: HashMap::new(),
            hits: 0,
            installs: 0,
            fallbacks: 0,
        }
    }

    /// Pages per reservation group.
    pub fn group_pages(&self) -> u64 {
        1 << self.order
    }

    /// (hits, installs, fallbacks) counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.installs, self.fallbacks)
    }
}

impl GuestFrameAllocator for GranularReservationAllocator {
    fn name(&self) -> &'static str {
        "granular-reservation"
    }

    fn allocate(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        buddy: &mut GuestBuddy,
    ) -> Result<(GuestFrame, AllocCost)> {
        let pages = self.group_pages();
        let group = vpn.raw() / pages;
        let offset = (vpn.raw() % pages) as u32;
        let bit = 1u32 << offset;
        if let Some((base, live)) = self.entries.get_mut(&(pid, group)) {
            if *live & bit != 0 {
                // COW break of a page still live in the reservation: the
                // copy needs a fresh frame from the default path.
                let gfn = buddy.alloc(0)?;
                self.fallbacks += 1;
                return Ok((
                    gfn,
                    AllocCost {
                        buddy_calls: 1,
                        part_lookups: 1,
                        fallback: true,
                        ..AllocCost::default()
                    },
                ));
            }
            let frame = GuestFrame::new(base.raw() + u64::from(offset));
            *live |= bit;
            self.hits += 1;
            let full = u32::MAX >> (32 - pages);
            if *live == full {
                self.entries.remove(&(pid, group));
            }
            return Ok((
                frame,
                AllocCost {
                    part_lookups: 1,
                    reservation_hit: true,
                    ..AllocCost::default()
                },
            ));
        }
        match buddy.alloc(self.order) {
            Ok(base) => {
                buddy
                    .fragment_allocation(base, self.order)
                    .expect("fresh chunk fragments");
                if pages > 1 {
                    self.entries.insert((pid, group), (base, bit));
                }
                self.installs += 1;
                Ok((
                    GuestFrame::new(base.raw() + u64::from(offset)),
                    AllocCost {
                        buddy_calls: 1,
                        part_lookups: 1,
                        reservation_new: pages > 1,
                        ..AllocCost::default()
                    },
                ))
            }
            Err(_) => {
                let gfn = buddy.alloc(0)?;
                self.fallbacks += 1;
                Ok((
                    gfn,
                    AllocCost {
                        buddy_calls: 1,
                        fallback: true,
                        ..AllocCost::default()
                    },
                ))
            }
        }
    }

    fn free(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        gfn: GuestFrame,
        buddy: &mut GuestBuddy,
    ) -> Result<()> {
        let pages = self.group_pages();
        let group = vpn.raw() / pages;
        let offset = (vpn.raw() % pages) as u32;
        let bit = 1u32 << offset;
        if let Some((base, live)) = self.entries.get_mut(&(pid, group)) {
            if base.raw() + u64::from(offset) == gfn.raw() && *live & bit != 0 {
                // The page rejoins the reservation; frames reach the buddy
                // allocator only when the entry dies.
                *live &= !bit;
                if *live == 0 {
                    let (base, _) = self.entries.remove(&(pid, group)).expect("entry");
                    for i in 0..pages {
                        buddy.free(GuestFrame::new(base.raw() + i), 0)?;
                    }
                }
                return Ok(());
            }
        }
        buddy.free(gfn, 0)
    }

    fn reserved_unused_frames(&self) -> u64 {
        let pages = self.group_pages();
        self.entries
            .values()
            .map(|(_, live)| pages - u64::from(live.count_ones()))
            .sum()
    }
}

/// A PaRT with one global lock instead of per-node locks, for the locking
/// ablation (§4.2 argues fine-grained locking is needed for concurrently
/// faulting threads).
///
/// Wraps the real [`PaRt`] behind a single [`Mutex`], serializing all
/// operations the way a naive implementation would.
#[derive(Debug, Default)]
pub struct GlobalLockPart {
    inner: Mutex<PaRt>,
}

impl GlobalLockPart {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fully serialized [`PaRt::take_or_install`].
    pub fn take_or_install(
        &self,
        group: u64,
        offset: u64,
        chunk_factory: impl FnOnce() -> Option<GuestFrame>,
    ) -> TakeOutcome {
        self.inner
            .lock()
            .take_or_install(group, offset, chunk_factory)
    }

    /// Fully serialized [`PaRt::release`].
    pub fn release(&self, group: u64, offset: u64) -> ReleaseOutcome {
        self.inner.lock().release(group, offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_one_behaves_like_default() {
        let mut a = GranularReservationAllocator::new(0);
        let mut buddy = GuestBuddy::new(64);
        let (f, cost) = a
            .allocate(Pid(1), GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        assert_eq!(cost.buddy_calls, 1);
        assert_eq!(a.reserved_unused_frames(), 0);
        a.free(Pid(1), GuestVirtPage::new(0), f, &mut buddy)
            .unwrap();
        assert_eq!(buddy.free_frames(), 64);
    }

    #[test]
    fn granularity_sixteen_reserves_sixteen() {
        let mut a = GranularReservationAllocator::new(4);
        let mut buddy = GuestBuddy::new(64);
        let (f0, _) = a
            .allocate(Pid(1), GuestVirtPage::new(0), &mut buddy)
            .unwrap();
        assert_eq!(buddy.free_frames(), 48);
        assert_eq!(a.reserved_unused_frames(), 15);
        let (f5, cost) = a
            .allocate(Pid(1), GuestVirtPage::new(5), &mut buddy)
            .unwrap();
        assert!(cost.reservation_hit);
        assert_eq!(f5.raw(), f0.raw() + 5);
    }

    #[test]
    fn contiguity_holds_under_interleaving_at_each_granularity() {
        for order in [1u32, 2, 3, 4] {
            let pages = 1u64 << order;
            let mut a = GranularReservationAllocator::new(order);
            let mut buddy = GuestBuddy::new(1024);
            let mut frames = Vec::new();
            for vpn in 0..pages {
                let (f, _) = a
                    .allocate(Pid(1), GuestVirtPage::new(vpn), &mut buddy)
                    .unwrap();
                // Interleave a churner.
                a.allocate(Pid(2), GuestVirtPage::new(1000 + vpn * 100), &mut buddy)
                    .unwrap();
                frames.push(f.raw());
            }
            assert!(
                frames.windows(2).all(|w| w[1] == w[0] + 1),
                "order {order} keeps groups contiguous"
            );
        }
    }

    #[test]
    fn free_cycle_is_leak_free_at_every_granularity() {
        for order in [0u32, 1, 2, 3, 4] {
            let pages = 1u64 << order;
            let mut a = GranularReservationAllocator::new(order);
            let mut buddy = GuestBuddy::new(256);
            let mut got = Vec::new();
            for vpn in 0..pages + 3 {
                got.push((
                    vpn,
                    a.allocate(Pid(1), GuestVirtPage::new(vpn), &mut buddy)
                        .unwrap()
                        .0,
                ));
            }
            for (vpn, f) in got {
                a.free(Pid(1), GuestVirtPage::new(vpn), f, &mut buddy)
                    .unwrap();
            }
            assert_eq!(buddy.free_frames(), 256, "order {order} leaks");
        }
    }

    #[test]
    fn global_lock_part_matches_part_semantics() {
        let g = GlobalLockPart::new();
        let r = g.take_or_install(3, 1, || Some(GuestFrame::new(8)));
        assert_eq!(r, TakeOutcome::FromNewReservation(GuestFrame::new(9)));
        let r = g.take_or_install(3, 2, || None);
        assert_eq!(r, TakeOutcome::FromReservation(GuestFrame::new(10)));
        match g.release(3, 1) {
            ReleaseOutcome::Released { entry_deleted, .. } => assert!(!entry_deleted),
            other => panic!("unexpected {other:?}"),
        }
    }
}
