//! The allocation-policy registry: named policies → allocators.
//!
//! Every experiment-facing layer (manifests, the `vmsim` CLI, the scenario
//! driver, the ablation benches) selects allocators by **name** through
//! [`resolve`], so adding a policy means adding one arm here — not a new
//! enum variant in the harness and not a new binary.
//!
//! The registry is layered: [`vmsim_os::resolve_os_policy`] owns the
//! OS-native names (`default`), and this module adds the paper's policies
//! and ablations on top:
//!
//! | Name             | Allocator                                          |
//! |------------------|----------------------------------------------------|
//! | `default`        | [`vmsim_os::DefaultAllocator`] (order-0 buddy)     |
//! | `ptemagnet`      | [`ReservationAllocator`] (the paper's mechanism)   |
//! | `thp`            | [`ThpAllocator`] (THP=always, §2.3 baseline)       |
//! | `ca-paging-like` | [`CaPagingLike`] (best-effort contiguity, §7)      |
//! | `granular:N`     | [`GranularReservationAllocator`] with N-page groups|
//!
//! `N` in `granular:N` must be a power of two in 1..=16 (the granularity
//! ablation's sweep); `granular:8` matches PTEMagnet's group size.

use vmsim_os::GuestFrameAllocator;

use crate::ablation::GranularReservationAllocator;
use crate::baselines::{CaPagingLike, ThpAllocator};
use crate::reservation::ReservationAllocator;

/// A policy name the registry cannot resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownPolicy {
    /// The name that failed to resolve.
    pub name: String,
}

impl core::fmt::Display for UnknownPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "unknown policy {:?} (known: {}, granular:N for N in {{1,2,4,8,16}})",
            self.name,
            catalog().join(", ")
        )
    }
}

impl std::error::Error for UnknownPolicy {}

/// The fixed policy names, for `vmsim list` and error messages (the
/// parameterized `granular:N` family is documented alongside).
pub fn catalog() -> Vec<&'static str> {
    let mut names = vmsim_os::OS_POLICY_NAMES.to_vec();
    names.extend(["ptemagnet", "thp", "ca-paging-like", "granular:8"]);
    names
}

/// Resolves a policy name to a fresh allocator instance.
///
/// # Errors
///
/// Returns [`UnknownPolicy`] if the name is neither an OS-native policy,
/// one of the paper's policies, nor a valid `granular:N`.
pub fn resolve(name: &str) -> Result<Box<dyn GuestFrameAllocator>, UnknownPolicy> {
    if let Some(alloc) = vmsim_os::resolve_os_policy(name) {
        return Ok(alloc);
    }
    match name {
        "ptemagnet" => Ok(Box::new(ReservationAllocator::new())),
        "thp" => Ok(Box::new(ThpAllocator::new())),
        "ca-paging-like" => Ok(Box::new(CaPagingLike::new())),
        _ => {
            if let Some(pages) = name.strip_prefix("granular:") {
                if let Ok(n) = pages.parse::<u64>() {
                    if n.is_power_of_two() && (1..=16).contains(&n) {
                        return Ok(Box::new(GranularReservationAllocator::new(
                            n.trailing_zeros(),
                        )));
                    }
                }
            }
            Err(UnknownPolicy {
                name: name.to_string(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_resolve_and_label_themselves() {
        for name in catalog() {
            let alloc = resolve(name).expect(name);
            if let Some(base) = name.strip_suffix(":8") {
                assert_eq!(base, "granular");
                assert_eq!(alloc.name(), "granular-reservation");
            } else {
                assert_eq!(alloc.name(), name);
            }
        }
    }

    #[test]
    fn granular_family_parses_powers_of_two_only() {
        for n in [1u64, 2, 4, 8, 16] {
            assert!(resolve(&format!("granular:{n}")).is_ok());
        }
        for bad in ["granular:3", "granular:32", "granular:0", "granular:x"] {
            assert!(resolve(bad).is_err(), "{bad} must not resolve");
        }
    }

    #[test]
    fn unknown_names_error_with_catalog() {
        let err = resolve("nonexistent").unwrap_err();
        assert_eq!(err.name, "nonexistent");
        let msg = err.to_string();
        assert!(msg.contains("ptemagnet") && msg.contains("default"));
    }
}
