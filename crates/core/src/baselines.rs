//! Comparative baseline allocators: CA-paging-like best-effort contiguity
//! (related work, §7) and transparent huge pages (the "big hammer"
//! alternative §2.3 argues is avoided in production clouds).

use std::collections::HashMap;

use vmsim_os::{AllocCost, AllocGrant, GuestBuddy, GuestFrameAllocator, Pid};
use vmsim_types::{GuestFrame, GuestVirtPage, Result, PT_INDEX_BITS};

/// A CA-paging-like best-effort contiguity allocator (§7, Alverti et al.).
///
/// On each fault it *tries* to extend the process's previous allocation by
/// taking the neighbouring frame, falling back to a normal order-0
/// allocation when that frame is taken. Unlike PTEMagnet it reserves
/// nothing, so colocated allocation churn steals the neighbouring frames and
/// contiguity degrades with co-runner pressure — the comparison the
/// `ablate_besteffort` bench quantifies.
#[derive(Clone, Debug, Default)]
pub struct CaPagingLike {
    /// Last frame granted per (process, contiguity goal): keyed by the vpn's
    /// predecessor so independent regions track independently.
    last_grant: HashMap<(Pid, u64), GuestFrame>,
    /// Successful neighbour extensions.
    extended: u64,
    /// Faults that fell back to arbitrary placement.
    fallback: u64,
}

impl CaPagingLike {
    /// Creates the allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Faults that successfully extended a contiguous run.
    pub fn extended(&self) -> u64 {
        self.extended
    }

    /// Faults that could not preserve contiguity.
    pub fn fallbacks(&self) -> u64 {
        self.fallback
    }
}

impl GuestFrameAllocator for CaPagingLike {
    fn name(&self) -> &'static str {
        "ca-paging-like"
    }

    fn allocate(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        buddy: &mut GuestBuddy,
    ) -> Result<(GuestFrame, AllocCost)> {
        // If the preceding virtual page was recently granted a frame, try
        // the physically neighbouring frame to extend the run.
        if vpn.raw() > 0 {
            if let Some(&prev) = self.last_grant.get(&(pid, vpn.raw() - 1)) {
                let want = GuestFrame::new(prev.raw() + 1);
                if buddy.try_alloc_frame_at(want) {
                    self.extended += 1;
                    self.last_grant.remove(&(pid, vpn.raw() - 1));
                    self.last_grant.insert((pid, vpn.raw()), want);
                    return Ok((
                        want,
                        AllocCost {
                            buddy_calls: 1,
                            ..AllocCost::default()
                        },
                    ));
                }
            }
        }
        let gfn = buddy.alloc(0)?;
        self.fallback += 1;
        self.last_grant.insert((pid, vpn.raw()), gfn);
        Ok((
            gfn,
            AllocCost {
                buddy_calls: 1,
                ..AllocCost::default()
            },
        ))
    }

    fn free(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        gfn: GuestFrame,
        buddy: &mut GuestBuddy,
    ) -> Result<()> {
        self.last_grant.remove(&(pid, vpn.raw()));
        buddy.free(gfn, 0)
    }
}

/// A transparent-huge-pages (THP=always) allocation policy (§2.3).
///
/// When the kernel reports that a 2 MB mapping is possible, try an order-9
/// buddy allocation and map the whole region at once; otherwise fall back
/// to 4 KB pages. When it succeeds, THP also yields host-PTE locality (512
/// contiguous guest frames) — but it pays 2 MB zeroing latency up front,
/// suffers internal fragmentation for sparsely touched regions, and stops
/// succeeding at all once physical memory is fragmented, which is exactly
/// why the paper's target clouds run with THP disabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThpAllocator {
    huge_allocs: u64,
    huge_failures: u64,
    small_allocs: u64,
}

impl ThpAllocator {
    /// log2 pages per huge mapping (x86 2 MB / 4 KB = 512 = 2^9).
    const HUGE_ORDER: u32 = PT_INDEX_BITS;

    /// Creates the allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Successful huge allocations.
    pub fn huge_allocs(&self) -> u64 {
        self.huge_allocs
    }

    /// Huge attempts that failed for lack of an order-9 block.
    pub fn huge_failures(&self) -> u64 {
        self.huge_failures
    }

    /// 4 KB allocations (non-candidates plus fallbacks).
    pub fn small_allocs(&self) -> u64 {
        self.small_allocs
    }
}

impl GuestFrameAllocator for ThpAllocator {
    fn name(&self) -> &'static str {
        "thp"
    }

    fn allocate(
        &mut self,
        _pid: Pid,
        _vpn: GuestVirtPage,
        buddy: &mut GuestBuddy,
    ) -> Result<(GuestFrame, AllocCost)> {
        let gfn = buddy.alloc(0)?;
        self.small_allocs += 1;
        Ok((
            gfn,
            AllocCost {
                buddy_calls: 1,
                ..AllocCost::default()
            },
        ))
    }

    fn allocate_grant(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        huge_candidate: bool,
        buddy: &mut GuestBuddy,
    ) -> Result<(AllocGrant, AllocCost)> {
        if huge_candidate {
            match buddy.alloc(Self::HUGE_ORDER) {
                Ok(chunk) => {
                    // Frames may come back one by one after demotion.
                    buddy
                        .fragment_allocation(chunk, Self::HUGE_ORDER)
                        .expect("fresh chunk fragments");
                    self.huge_allocs += 1;
                    return Ok((
                        AllocGrant::Huge(chunk),
                        AllocCost {
                            buddy_calls: 1,
                            ..AllocCost::default()
                        },
                    ));
                }
                Err(_) => self.huge_failures += 1,
            }
        }
        let (gfn, cost) = self.allocate(pid, vpn, buddy)?;
        Ok((AllocGrant::Small(gfn), cost))
    }

    fn free(
        &mut self,
        _pid: Pid,
        _vpn: GuestVirtPage,
        gfn: GuestFrame,
        buddy: &mut GuestBuddy,
    ) -> Result<()> {
        buddy.free(gfn, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_faults_extend_contiguously() {
        let mut a = CaPagingLike::new();
        let mut buddy = GuestBuddy::new(256);
        let pid = Pid(1);
        let mut frames = Vec::new();
        for vpn in 0..8u64 {
            frames.push(
                a.allocate(pid, GuestVirtPage::new(vpn), &mut buddy)
                    .unwrap()
                    .0
                    .raw(),
            );
        }
        assert!(frames.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(a.extended(), 7);
    }

    #[test]
    fn interleaved_churn_breaks_contiguity() {
        // A co-runner grabbing frames between faults steals the neighbours —
        // best effort degrades where PTEMagnet would not.
        let mut a = CaPagingLike::new();
        let mut buddy = GuestBuddy::new(256);
        let app = Pid(1);
        let churn = Pid(2);
        let mut extended_broken = false;
        let mut churn_vpn = 1000u64;
        for vpn in 0..8u64 {
            let (f, _) = a
                .allocate(app, GuestVirtPage::new(vpn), &mut buddy)
                .unwrap();
            // Churn takes the next frames immediately.
            for _ in 0..2 {
                a.allocate(churn, GuestVirtPage::new(churn_vpn), &mut buddy)
                    .unwrap();
                churn_vpn += 2; // non-adjacent vpns: churn never extends
            }
            let _ = f;
        }
        if a.fallbacks() > 1 {
            extended_broken = true;
        }
        assert!(extended_broken, "churn must force fallbacks");
    }

    #[test]
    fn free_returns_frames() {
        let mut a = CaPagingLike::new();
        let mut buddy = GuestBuddy::new(64);
        let pid = Pid(1);
        let (f, _) = a.allocate(pid, GuestVirtPage::new(0), &mut buddy).unwrap();
        a.free(pid, GuestVirtPage::new(0), f, &mut buddy).unwrap();
        assert_eq!(buddy.free_frames(), 64);
    }

    #[test]
    fn thp_grants_huge_when_candidate() {
        let mut a = ThpAllocator::new();
        let mut buddy = GuestBuddy::new(1024);
        let (grant, _) = a
            .allocate_grant(Pid(1), GuestVirtPage::new(0), true, &mut buddy)
            .unwrap();
        match grant {
            AllocGrant::Huge(chunk) => assert_eq!(chunk.raw() % 512, 0),
            other => panic!("expected huge grant, got {other:?}"),
        }
        assert_eq!(buddy.free_frames(), 512);
        assert_eq!(a.huge_allocs(), 1);
    }

    #[test]
    fn thp_falls_back_without_candidate_or_memory() {
        let mut a = ThpAllocator::new();
        let mut buddy = GuestBuddy::new(1024);
        // Not a candidate: small page.
        let (grant, _) = a
            .allocate_grant(Pid(1), GuestVirtPage::new(0), false, &mut buddy)
            .unwrap();
        assert!(matches!(grant, AllocGrant::Small(_)));
        // Shred memory so no order-9 block exists: candidate fails over.
        let mut held = vec![];
        while let Ok(f) = buddy.alloc(8) {
            held.push(f);
        }
        let (grant, _) = a
            .allocate_grant(Pid(1), GuestVirtPage::new(512), true, &mut buddy)
            .unwrap();
        assert!(matches!(grant, AllocGrant::Small(_)));
        assert_eq!(a.huge_failures(), 1);
    }

    #[test]
    fn thp_frames_free_individually_after_demotion() {
        let mut a = ThpAllocator::new();
        let mut buddy = GuestBuddy::new(1024);
        let (grant, _) = a
            .allocate_grant(Pid(1), GuestVirtPage::new(0), true, &mut buddy)
            .unwrap();
        let AllocGrant::Huge(chunk) = grant else {
            panic!("huge expected");
        };
        for i in 0..512u64 {
            a.free(
                Pid(1),
                GuestVirtPage::new(i),
                GuestFrame::new(chunk.raw() + i),
                &mut buddy,
            )
            .unwrap();
        }
        assert_eq!(buddy.free_frames(), 1024);
    }
}
