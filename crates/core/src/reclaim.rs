//! The memory-pressure reclamation daemon (paper §4.3).
//!
//! Like the kernel's `swappiness`-style thresholds, a configurable
//! free-memory threshold triggers a daemon that walks the PaRT of victim
//! processes, returning reserved-but-unused frames to the buddy allocator
//! until consumption drops below the threshold. Reclamation is a plain
//! `free()` — no page-table updates, no TLB flushes, no page locking — so it
//! cannot cause the latency anomalies of THP/superpage demotion.

use serde::{Deserialize, Serialize};
use vmsim_os::GuestOs;

/// Configuration and driver for reservation reclamation.
///
/// # Examples
///
/// ```
/// use ptemagnet::{ReclaimDaemon, ReservationAllocator};
/// use vmsim_os::GuestOs;
///
/// let mut guest = GuestOs::new(1024, Box::new(ReservationAllocator::new()));
/// let daemon = ReclaimDaemon::new(0.1);
/// // Plenty of free memory: the daemon stays idle.
/// assert_eq!(daemon.run(&mut guest), 0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReclaimDaemon {
    /// Wake the daemon when the free fraction of guest memory falls below
    /// this value (e.g. 0.1 = reclaim when less than 10 % is free).
    pub threshold: f64,
    /// Keep reclaiming until the free fraction reaches this value
    /// (hysteresis; must be ≥ `threshold`).
    pub restore_to: f64,
}

impl ReclaimDaemon {
    /// Creates a daemon with the given wake threshold and 2× hysteresis.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= threshold <= 1.0`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must be in [0,1]"
        );
        Self {
            threshold,
            restore_to: (threshold * 2.0).min(1.0),
        }
    }

    /// Runs one daemon pass against the guest OS: if free memory is below
    /// the threshold, drains reservations until `restore_to` is reached or
    /// no reserved-unused memory remains. Returns frames reclaimed.
    pub fn run(&self, guest: &mut GuestOs) -> u64 {
        if guest.buddy().free_fraction() >= self.threshold {
            return 0;
        }
        let total = guest.buddy().total_frames();
        let want_free = (self.restore_to * total as f64) as u64;
        let have_free = guest.buddy().free_frames();
        let target = want_free.saturating_sub(have_free);
        if target == 0 {
            return 0;
        }
        guest.reclaim_reservations(target)
    }
}

impl Default for ReclaimDaemon {
    /// A daemon that wakes below 10 % free memory.
    fn default() -> Self {
        Self::new(0.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReservationAllocator;
    use vmsim_types::GuestVirtPage;

    #[test]
    fn idle_above_threshold() {
        let mut guest = GuestOs::new(1024, Box::new(ReservationAllocator::new()));
        let daemon = ReclaimDaemon::new(0.1);
        assert_eq!(daemon.run(&mut guest), 0);
    }

    #[test]
    fn reclaims_unused_reservation_frames_under_pressure() {
        let mut guest = GuestOs::new(256, Box::new(ReservationAllocator::new()));
        let pid = guest.spawn();
        // Touch one page in each of 29 groups: 29 × 8 = 232 frames reserved
        // (plus PT overhead), leaving well under 10% free.
        let va = guest.mmap(pid, 29 * 8).unwrap();
        for g in 0..29 {
            guest
                .page_fault(pid, GuestVirtPage::new(va.page().raw() + g * 8))
                .unwrap();
        }
        assert!(guest.buddy().free_fraction() < 0.1);
        let daemon = ReclaimDaemon::new(0.1);
        let reclaimed = daemon.run(&mut guest);
        assert!(reclaimed > 0);
        assert!(guest.buddy().free_fraction() >= 0.1);
        // Mapped pages were untouched: rss unchanged.
        assert_eq!(guest.process(pid).unwrap().rss_pages, 29);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_rejected() {
        ReclaimDaemon::new(1.5);
    }
}
