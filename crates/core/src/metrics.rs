//! Convenience wrappers around the host-PT fragmentation metric (§3.2).
//!
//! The metric itself — mean distinct cache lines holding the host PTEs of
//! each 8-page guest-virtual group — is computed by
//! [`vmsim_os::Machine::host_pt_fragmentation`] from real page-table entry
//! addresses; this module adds the side-by-side comparison used by Figure 5
//! and Tables 1/4.

use vmsim_os::{Machine, Pid};
use vmsim_pt::LineCensus;
use vmsim_types::Result;

/// Side-by-side guest-PT vs host-PT fragmentation for one process.
#[derive(Clone, Debug, PartialEq)]
pub struct FragmentationComparison {
    /// gPTE census (always ≈1.0: guest PTEs are indexed by virtual address).
    pub guest: LineCensus,
    /// hPTE census (the quantity PTEMagnet improves).
    pub host: LineCensus,
}

impl FragmentationComparison {
    /// Ratio of host to guest fragmentation (≥ 1.0 in practice).
    pub fn host_blowup(&self) -> f64 {
        if self.guest.mean() == 0.0 {
            0.0
        } else {
            self.host.mean() / self.guest.mean()
        }
    }
}

/// Measures both fragmentation censuses for `pid` on `machine`.
///
/// # Errors
///
/// Returns [`vmsim_types::MemError::NoSuchProcess`] for unknown pids.
pub fn fragmentation_comparison(machine: &Machine, pid: Pid) -> Result<FragmentationComparison> {
    Ok(FragmentationComparison {
        guest: machine.guest_pt_fragmentation(pid)?,
        host: machine.host_pt_fragmentation(pid)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ReservationAllocator;
    use vmsim_os::MachineConfig;
    use vmsim_types::GuestVirtAddr;

    #[test]
    fn ptemagnet_pins_host_fragmentation_to_one() {
        let mut m = Machine::with_allocator(
            MachineConfig::small(),
            Box::new(ReservationAllocator::new()),
        );
        let a = m.guest_mut().spawn();
        let b = m.guest_mut().spawn();
        let va_a = m.guest_mut().mmap(a, 64).unwrap();
        let va_b = m.guest_mut().mmap(b, 64).unwrap();
        // Aggressively interleaved faulting.
        for i in 0..64 {
            m.touch(0, a, GuestVirtAddr::new(va_a.raw() + i * 4096), false)
                .unwrap();
            m.touch(1, b, GuestVirtAddr::new(va_b.raw() + i * 4096), false)
                .unwrap();
        }
        let cmp = fragmentation_comparison(&m, a).unwrap();
        assert!(
            (cmp.host.mean() - 1.0).abs() < 1e-9,
            "got {}",
            cmp.host.mean()
        );
        assert!((cmp.guest.mean() - 1.0).abs() < 1e-9);
        assert!((cmp.host_blowup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn default_allocator_blows_up_under_interleaving() {
        let mut m = Machine::new(MachineConfig::small());
        let a = m.guest_mut().spawn();
        let b = m.guest_mut().spawn();
        let va_a = m.guest_mut().mmap(a, 64).unwrap();
        let va_b = m.guest_mut().mmap(b, 64).unwrap();
        for i in 0..64 {
            m.touch(0, a, GuestVirtAddr::new(va_a.raw() + i * 4096), false)
                .unwrap();
            m.touch(1, b, GuestVirtAddr::new(va_b.raw() + i * 4096), false)
                .unwrap();
        }
        let cmp = fragmentation_comparison(&m, a).unwrap();
        assert!(cmp.host_blowup() > 1.5, "got {}", cmp.host_blowup());
    }
}
