//! Atomics facade for the PaRT's concurrent structure.
//!
//! The lock-free PaRT ([`crate::part`]) routes every *structural* atomic —
//! tree slot pointers, packed leaf words, the spare-chunk pool, and the
//! epoch collector — through this module. Under the `model-check` feature
//! those atomics come from the vendored loom stub, where each operation is a
//! scheduling point of a bounded deterministic interleaving search
//! (`tests/model_check.rs`); in normal builds they are plain `std` atomics.
//!
//! Statistics counters deliberately do **not** go through this facade: they
//! are `Relaxed` tallies whose interleavings are not interesting, and
//! keeping them uninstrumented keeps the model-check state space small.

#[cfg(feature = "model-check")]
pub(crate) use loom::sync::atomic::{AtomicPtr, AtomicU64};

#[cfg(not(feature = "model-check"))]
pub(crate) use std::sync::atomic::{AtomicPtr, AtomicU64};

pub(crate) use std::sync::atomic::Ordering;

/// Pointer load for bulk tree scans ([`crate::part`]'s `for_each` walk and
/// leaf pruning iterate all 512 slots of every node, almost all null).
/// Under model checking this skips the per-slot scheduling point — scanning
/// empty slots adds nothing to the interleaving space, and every non-null
/// hit is re-examined through fully instrumented operations.
#[inline]
pub(crate) fn scan_load<T>(slot: &AtomicPtr<T>) -> *mut T {
    #[cfg(feature = "model-check")]
    {
        slot.load_raw()
    }
    #[cfg(not(feature = "model-check"))]
    {
        slot.load(Ordering::SeqCst)
    }
}
