//! Conditional enablement policy (paper §4.4, "System interface for
//! enabling PTEMagnet").
//!
//! In a public cloud the orchestrator declares each container's maximum
//! memory usage (`memory.limit_in_bytes`); the guest kernel can enable
//! PTEMagnet only for processes whose declared limit exceeds a threshold —
//! big-memory applications are the ones with TLB pressure. The paper also
//! finds PTEMagnet never slows anything down, so [`EnablePolicy::Always`] is
//! a safe default.

use serde::{Deserialize, Serialize};

/// When to use reservation-based allocation for a process.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EnablePolicy {
    /// Reserve for every process (the paper's evaluated configuration).
    #[default]
    Always,
    /// Never reserve (behaves exactly like the default kernel; useful as an
    /// in-place baseline switch).
    Never,
    /// Reserve only for processes whose declared memory limit is at least
    /// this many bytes (cgroup-driven enablement).
    MemoryLimitAbove(u64),
}

impl EnablePolicy {
    /// Decides whether reservations apply to a process with the given
    /// declared memory limit (if any was registered).
    pub fn enabled(&self, memory_limit: Option<u64>) -> bool {
        match self {
            EnablePolicy::Always => true,
            EnablePolicy::Never => false,
            EnablePolicy::MemoryLimitAbove(threshold) => {
                memory_limit.is_some_and(|l| l >= *threshold)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_and_never() {
        assert!(EnablePolicy::Always.enabled(None));
        assert!(EnablePolicy::Always.enabled(Some(1)));
        assert!(!EnablePolicy::Never.enabled(Some(u64::MAX)));
    }

    #[test]
    fn threshold_requires_declared_limit() {
        let p = EnablePolicy::MemoryLimitAbove(1 << 30);
        assert!(
            !p.enabled(None),
            "undeclared limits stay on the default path"
        );
        assert!(!p.enabled(Some(1 << 20)));
        assert!(p.enabled(Some(1 << 30)));
        assert!(p.enabled(Some(1 << 31)));
    }

    #[test]
    fn default_is_always() {
        assert_eq!(EnablePolicy::default(), EnablePolicy::Always);
    }
}
