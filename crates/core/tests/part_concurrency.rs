//! Property-based concurrency tests of the lock-free PaRT.
//!
//! `tests/model_check.rs` proves small fixed races exhaustively under the
//! model checker; this suite attacks the same invariants from the other
//! side — randomized operation plans executed by **real OS threads**, so
//! the full production configuration (leaf cache, 512-way nodes, 16-slot
//! spare pool) is exercised under genuine preemption:
//!
//! * **No frame is ever granted twice** while its grant is outstanding.
//! * **Chunk and frame conservation**: every chunk a factory allocates is
//!   installed, parked in the spare pool, or returned — across grants,
//!   releases, and a final drain, `8 × chunks = returned + drained +
//!   still-mapped`.
//! * **Retire-exactly-once**: a fully granted group bumps `retired_full`
//!   exactly once, and the counter gauges always match a structural
//!   `for_each` walk of the tree.
//!
//! Each case partitions the (group, offset) grant cells among threads, so
//! the contract "a page only faults while unmapped" holds by construction
//! while the *words and tree nodes* those cells share are contended freely.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;
use ptemagnet::{PaRt, ReleaseOutcome, TakeOutcome};
use vmsim_types::{GuestFrame, GROUP_PAGES};

/// One thread's work list: the grant cells it owns, in execution order.
type Plan = Vec<(u64, u64)>;

/// Splits every (group, offset) cell in `mask` across `threads` round-robin
/// by `assign`, yielding per-thread shuffled plans.
fn partition(groups: u64, masks: &[u8], threads: usize, salt: u64) -> Vec<Plan> {
    let mut plans = vec![Vec::new(); threads];
    for group in 0..groups {
        for offset in 0..GROUP_PAGES {
            if masks[group as usize] & (1 << offset) != 0 {
                // Deterministic scatter of cells over threads.
                let t = ((group
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(offset)
                    .wrapping_add(salt))
                    >> 7) as usize
                    % threads;
                plans[t].push((group, offset));
            }
        }
    }
    // Interleave groups within each plan so threads collide on the same
    // group words at staggered times.
    for (t, plan) in plans.iter_mut().enumerate() {
        let len = plan.len().max(1);
        plan.rotate_left((salt as usize + t) % len);
    }
    plans
}

/// Sums the structural truth straight off the tree.
fn structural(part: &PaRt) -> (u64, u64) {
    let mut entries = 0u64;
    let mut unused = 0u64;
    part.for_each(|_, res| {
        entries += 1;
        unused += u64::from(res.unused_count());
    });
    (entries, unused)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Grant-only storm: threads fault into shared groups, each owning a
    /// disjoint set of offsets. Every granted frame must be unique, every
    /// allocated chunk installed or parked, every fully granted group
    /// retired exactly once, and the gauges must match the tree.
    #[test]
    fn threaded_grants_never_duplicate_frames(
        threads in 2usize..=6,
        groups in 1u64..=24,
        masks in proptest::collection::vec(1u8..=255, 24),
        salt in any::<u64>(),
    ) {
        let part = Arc::new(PaRt::new());
        let next_chunk = Arc::new(AtomicU64::new(0));
        let plans = partition(groups, &masks, threads, salt);
        let mut handles = Vec::new();
        for plan in plans {
            let part = Arc::clone(&part);
            let next_chunk = Arc::clone(&next_chunk);
            handles.push(std::thread::spawn(move || {
                let mut granted = Vec::with_capacity(plan.len());
                for (group, offset) in plan {
                    let out = part.take_or_install(group, offset, || {
                        Some(GuestFrame::new(
                            next_chunk.fetch_add(GROUP_PAGES, Ordering::Relaxed),
                        ))
                    });
                    match out {
                        TakeOutcome::FromReservation(f)
                        | TakeOutcome::FromNewReservation(f) => granted.push(f.raw()),
                        TakeOutcome::Unavailable => panic!("factory never declines"),
                    }
                }
                granted
            }));
        }
        let granted: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();

        // No frame granted twice.
        let unique: HashSet<u64> = granted.iter().copied().collect();
        prop_assert_eq!(unique.len(), granted.len(), "duplicate grant");

        let s = part.stats();
        let full = masks[..groups as usize].iter().filter(|m| **m == 0xff).count() as u64;
        // Retire-exactly-once: one retirement per fully-granted group.
        prop_assert_eq!(s.retired_full, full);
        prop_assert_eq!(s.live_entries, groups - full);
        prop_assert_eq!(s.hits + s.installs, granted.len() as u64);
        // Every group saw exactly one install (entries never die mid-case).
        prop_assert_eq!(s.installs, groups);
        // Chunk conservation: allocated = installed + parked.
        let allocated = next_chunk.load(Ordering::Relaxed) / GROUP_PAGES;
        prop_assert_eq!(allocated, s.installs + part.spare_chunks().len() as u64);
        // Gauges match a structural walk.
        let (entries, unused) = structural(&part);
        prop_assert_eq!(s.live_entries, entries);
        prop_assert_eq!(s.unused_frames, unused);
    }

    /// Grants mixed with releases, then a full drain: wherever the
    /// interleaving lands, every frame of every allocated chunk is
    /// accounted for exactly once — returned by a deleting release, freed
    /// down the default path, drained at the end, or still mapped.
    #[test]
    fn threaded_releases_conserve_every_frame(
        threads in 2usize..=6,
        groups in 1u64..=16,
        masks in proptest::collection::vec(1u8..=255, 16),
        release_one_in in 1u64..=3,
        salt in any::<u64>(),
    ) {
        let part = Arc::new(PaRt::new());
        let next_chunk = Arc::new(AtomicU64::new(0));
        let plans = partition(groups, &masks, threads, salt);
        let mut handles = Vec::new();
        for plan in plans {
            let part = Arc::clone(&part);
            let next_chunk = Arc::clone(&next_chunk);
            handles.push(std::thread::spawn(move || {
                // Frames this thread still considers mapped, plus frames
                // returned to it (deletions + default-path frees).
                let mut mapped: Vec<u64> = Vec::new();
                let mut returned = 0u64;
                for (i, (group, offset)) in plan.iter().copied().enumerate() {
                    let out = part.take_or_install(group, offset, || {
                        Some(GuestFrame::new(
                            next_chunk.fetch_add(GROUP_PAGES, Ordering::Relaxed),
                        ))
                    });
                    let frame = match out {
                        TakeOutcome::FromReservation(f)
                        | TakeOutcome::FromNewReservation(f) => f.raw(),
                        TakeOutcome::Unavailable => panic!("factory never declines"),
                    };
                    mapped.push(frame);
                    if i as u64 % (release_one_in + 1) == release_one_in {
                        // The app frees the page it just faulted in.
                        mapped.pop();
                        match part.release(group, offset) {
                            ReleaseOutcome::Released { unused_frames, .. } => {
                                // The freed page rejoined the reservation
                                // (drained later) unless the entry died, in
                                // which case the whole chunk came back.
                                returned += unused_frames.len() as u64;
                            }
                            ReleaseOutcome::NotTracked => {
                                // Entry already retired: default-path free.
                                returned += 1;
                            }
                        }
                    }
                }
                (mapped, returned)
            }));
        }
        let mut mapped: Vec<u64> = Vec::new();
        let mut returned = 0u64;
        for h in handles {
            let (m, r) = h.join().unwrap();
            mapped.extend(m);
            returned += r;
        }

        // Mapped frames are unique even after re-grant churn.
        let unique: HashSet<u64> = mapped.iter().copied().collect();
        prop_assert_eq!(unique.len(), mapped.len(), "frame mapped twice");

        // Gauges match the tree before draining.
        let s = part.stats();
        let (entries, unused) = structural(&part);
        prop_assert_eq!(s.live_entries, entries);
        prop_assert_eq!(s.unused_frames, unused);

        // Drain everything left (reservations + parked spares): full
        // conservation over all chunks the factories pulled.
        let drained = part.drain_unused(|_| true);
        let allocated_frames = next_chunk.load(Ordering::Relaxed);
        prop_assert_eq!(
            allocated_frames,
            returned + drained + mapped.len() as u64,
            "a frame leaked or was double-owned"
        );
        prop_assert_eq!(part.unused_frames(), 0);
        prop_assert!(part.spare_chunks().is_empty());
    }
}
