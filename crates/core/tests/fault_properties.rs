//! Property-based tests of graceful degradation under fault injection.
//!
//! Whatever the fault schedule — per-allocation denial rolls, fragmentation
//! shocks, reclaim storms, host swap-outs — three safety properties must
//! hold unconditionally:
//!
//! 1. a served page fault always leaves the faulting page mapped;
//! 2. reservation reclaim never changes a PTE that is already mapped;
//! 3. the PaRT never references a frame the buddy considers free.

use std::collections::HashMap;

use proptest::prelude::*;
use ptemagnet::ReservationAllocator;
use vmsim_os::{GuestBuddy, GuestFrameAllocator, Machine, MachineConfig, Pid};
use vmsim_types::{FaultInjector, FaultPlan, GuestFrame, GuestVirtPage, GROUP_PAGES, PAGE_SIZE};

/// `None` one time in four, otherwise a period drawn from `range`.
fn opt_period(range: std::ops::Range<u64>) -> impl Strategy<Value = Option<u64>> {
    prop_oneof![
        1 => Just(None),
        3 => range.prop_map(Some),
    ]
}

/// Arbitrary fault plans, up to and including 100% denial rates: the safety
/// properties may not depend on the injector being merciful.
fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        (any::<u64>(), 0u64..=100, 0u64..=100),
        (opt_period(1..50), 0u32..4),
        (opt_period(1..40), 1u64..128, opt_period(1..60)),
    )
        .prop_map(
            |((seed, chunk_pct, oom_pct), (shock, order), (storm, frames, swap))| FaultPlan {
                seed,
                chunk_fail_rate: chunk_pct as f64 / 100.0,
                oom_rate: oom_pct as f64 / 100.0,
                frag_shock_every: shock,
                frag_shock_order: order,
                reclaim_storm_every: storm,
                reclaim_storm_frames: frames,
                swap_out_every: swap,
                daemon_threshold: Some(0.05),
                daemon_restore_to: Some(0.1),
            },
        )
}

fn faulted_machine(plan: FaultPlan, run_seed: u64) -> Machine {
    let mut m = Machine::with_allocator(
        MachineConfig::small(),
        Box::new(ReservationAllocator::new()),
    );
    m.install_faults(plan, run_seed);
    m
}

#[derive(Clone, Debug)]
enum DegradeOp {
    Touch { vpn: u64 },
    Reclaim { target: u64 },
}

fn degrade_op_strategy() -> impl Strategy<Value = DegradeOp> {
    prop_oneof![
        5 => (0u64..192).prop_map(|vpn| DegradeOp::Touch { vpn }),
        1 => (1u64..512).prop_map(|target| DegradeOp::Reclaim { target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn served_page_faults_always_map_the_page(
        plan in plan_strategy(),
        run_seed in any::<u64>(),
        vpns in prop::collection::vec(0u64..192, 1..120),
    ) {
        // Graceful degradation, part 1: however aggressively the injector
        // denies the buddy, an access to a valid VMA must never observably
        // fail — the machine absorbs the denial (fallback or reclaim+retry)
        // and the faulting page ends up mapped.
        let mut m = faulted_machine(plan, run_seed);
        let pid = m.guest_mut().spawn();
        let base = m.guest_mut().mmap(pid, 192).unwrap();
        for vpn in vpns {
            let out = m.touch(0, pid, base + vpn * PAGE_SIZE, false);
            prop_assert!(out.is_ok(), "touch failed under faults: {out:?}");
            let page = GuestVirtPage::new(base.page().raw() + vpn);
            prop_assert!(
                m.guest().process(pid).unwrap().page_table.translate(page).is_some(),
                "page {page:?} not mapped after its fault was served"
            );
        }
    }

    #[test]
    fn reclaim_never_changes_a_mapped_pte(
        plan in plan_strategy(),
        run_seed in any::<u64>(),
        ops in prop::collection::vec(degrade_op_strategy(), 1..120),
    ) {
        // Graceful degradation, part 2: reclaim (explicit or storm-driven)
        // may only harvest reserved-unused frames. Every translation that
        // existed before a reclaim must read back unchanged after it.
        let mut m = faulted_machine(plan, run_seed);
        let pid = m.guest_mut().spawn();
        let base = m.guest_mut().mmap(pid, 192).unwrap();
        let mut mapped: HashMap<u64, GuestFrame> = HashMap::new();
        for op in ops {
            match op {
                DegradeOp::Touch { vpn } => {
                    let out = m.touch(0, pid, base + vpn * PAGE_SIZE, false);
                    prop_assert!(out.is_ok(), "touch failed under faults: {out:?}");
                    let page = GuestVirtPage::new(base.page().raw() + vpn);
                    let gfn = m
                        .guest()
                        .process(pid)
                        .unwrap()
                        .page_table
                        .translate(page)
                        .expect("just faulted");
                    mapped.entry(vpn).or_insert(gfn);
                }
                DegradeOp::Reclaim { target } => {
                    m.reclaim_reservations(target);
                }
            }
            let pt = &m.guest().process(pid).unwrap().page_table;
            for (&vpn, &gfn) in &mapped {
                let page = GuestVirtPage::new(base.page().raw() + vpn);
                prop_assert_eq!(
                    pt.translate(page),
                    Some(gfn),
                    "mapped PTE for vpn {} changed", vpn
                );
            }
        }
    }
}

#[derive(Clone, Debug)]
enum AllocOp {
    Alloc { pid: u64, vpn: u64 },
    Free { pid: u64, vpn: u64 },
    Reclaim { target: u64 },
}

fn alloc_op_strategy() -> impl Strategy<Value = AllocOp> {
    prop_oneof![
        6 => (1u64..4, 0u64..64).prop_map(|(pid, vpn)| AllocOp::Alloc { pid, vpn }),
        3 => (1u64..4, 0u64..64).prop_map(|(pid, vpn)| AllocOp::Free { pid, vpn }),
        1 => (1u64..32).prop_map(|target| AllocOp::Reclaim { target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn part_never_references_a_freed_frame(
        plan in plan_strategy(),
        run_seed in any::<u64>(),
        ops in prop::collection::vec(alloc_op_strategy(), 1..150),
    ) {
        // Graceful degradation, part 3: whatever mix of denials, fallbacks,
        // frees and reclaims the run sees, no reservation in any process's
        // PaRT may reference a frame the buddy has on its free lists —
        // every referenced frame is either granted (mapped) or held in
        // reserve, never both reserved and free.
        let mut alloc = ReservationAllocator::new();
        let mut buddy = GuestBuddy::new(1024);
        buddy.set_fault_injector(FaultInjector::new(&plan, run_seed));
        let mut live: HashMap<(u64, u64), GuestFrame> = HashMap::new();
        for op in ops {
            match op {
                AllocOp::Alloc { pid, vpn } => {
                    if live.contains_key(&(pid, vpn)) {
                        continue;
                    }
                    // Denied allocations are a legitimate outcome here (the
                    // machine layer handles recovery); the invariant below
                    // must hold either way.
                    if let Ok((gfn, _)) =
                        alloc.allocate(Pid(pid), GuestVirtPage::new(vpn), &mut buddy)
                    {
                        live.insert((pid, vpn), gfn);
                    }
                }
                AllocOp::Free { pid, vpn } => {
                    if let Some(gfn) = live.remove(&(pid, vpn)) {
                        alloc
                            .free(Pid(pid), GuestVirtPage::new(vpn), gfn, &mut buddy)
                            .unwrap();
                    }
                }
                AllocOp::Reclaim { target } => {
                    alloc.reclaim(&mut buddy, target);
                }
            }
            let mut violations: Vec<GuestFrame> = Vec::new();
            for pid in 1..4u64 {
                if let Some(part) = alloc.part_of(Pid(pid)) {
                    part.for_each(|_, res| {
                        for off in 0..GROUP_PAGES {
                            let frame = GuestFrame::new(res.base.raw() + off);
                            if buddy.is_frame_free(frame) {
                                violations.push(frame);
                            }
                        }
                    });
                }
            }
            prop_assert!(
                violations.is_empty(),
                "PaRT references frames on the free lists: {violations:?}"
            );
        }
    }
}
