//! Property-based tests for the Page Reservation Table against a flat
//! reference model, plus multithreaded linearizability smoke checks.

use std::collections::HashMap;

use proptest::prelude::*;
use ptemagnet::{PaRt, ReleaseOutcome, TakeOutcome};
use vmsim_types::{GuestFrame, GROUP_PAGES};

#[derive(Clone, Debug)]
enum Op {
    Take { group: u64, offset: u64 },
    Release { group: u64, offset: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..24, 0u64..8).prop_map(|(group, offset)| Op::Take { group, offset }),
        2 => (0u64..24, 0u64..8).prop_map(|(group, offset)| Op::Release { group, offset }),
    ]
}

/// Flat model of one reservation: base and live mask (non-live pages are
/// owned by the reservation).
#[derive(Clone, Copy, Debug)]
struct ModelRes {
    base: u64,
    live: u8,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn part_matches_flat_model(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let part = PaRt::new();
        let mut model: HashMap<u64, ModelRes> = HashMap::new();
        let mut next_chunk = 0u64;

        for op in ops {
            match op {
                Op::Take { group, offset } => {
                    let bit = 1u8 << offset;
                    let model_entry = model.get(&group).copied();
                    // Skip operations the OS contract forbids (double
                    // grant of a live page).
                    if model_entry.is_some_and(|m| m.live & bit != 0) {
                        continue;
                    }
                    let chunk_base = next_chunk;
                    let out = part.take_or_install(group, offset, || {
                        Some(GuestFrame::new(chunk_base))
                    });
                    match model_entry {
                        Some(mut m) => {
                            prop_assert_eq!(
                                out,
                                TakeOutcome::FromReservation(GuestFrame::new(m.base + offset))
                            );
                            m.live |= bit;
                            if m.live == 0xff {
                                model.remove(&group);
                            } else {
                                model.insert(group, m);
                            }
                        }
                        None => {
                            prop_assert_eq!(
                                out,
                                TakeOutcome::FromNewReservation(GuestFrame::new(
                                    chunk_base + offset
                                ))
                            );
                            next_chunk += GROUP_PAGES;
                            model.insert(
                                group,
                                ModelRes {
                                    base: chunk_base,
                                    live: bit,
                                },
                            );
                        }
                    }
                }
                Op::Release { group, offset } => {
                    let bit = 1u8 << offset;
                    let out = part.release(group, offset);
                    match model.get(&group).copied() {
                        Some(mut m) if m.live & bit != 0 => {
                            m.live &= !bit;
                            if m.live == 0 {
                                // Entry death returns the whole chunk.
                                let expected_unused: Vec<u64> =
                                    (0..8u64).map(|i| m.base + i).collect();
                                match out {
                                    ReleaseOutcome::Released {
                                        unused_frames,
                                        entry_deleted,
                                    } => {
                                        prop_assert!(entry_deleted);
                                        let got: Vec<u64> =
                                            unused_frames.iter().map(|f| f.raw()).collect();
                                        prop_assert_eq!(got, expected_unused);
                                    }
                                    other => prop_assert!(false, "expected release, got {other:?}"),
                                }
                                model.remove(&group);
                            } else {
                                prop_assert_eq!(
                                    out,
                                    ReleaseOutcome::Released {
                                        unused_frames: vec![],
                                        entry_deleted: false
                                    }
                                );
                                model.insert(group, m);
                            }
                        }
                        _ => {
                            prop_assert_eq!(out, ReleaseOutcome::NotTracked);
                        }
                    }
                }
            }

            // Gauges agree with the model at every step.
            prop_assert_eq!(part.live_entries() as usize, model.len());
            let model_unused: u64 = model
                .values()
                .map(|m| GROUP_PAGES - u64::from(m.live.count_ones()))
                .sum();
            prop_assert_eq!(part.unused_frames(), model_unused);
        }
    }

    #[test]
    fn peek_agrees_with_grants(groups in prop::collection::vec(0u64..16, 1..40)) {
        let part = PaRt::new();
        let mut expected: HashMap<u64, u64> = HashMap::new();
        let mut next = 0u64;
        for g in groups {
            if expected.contains_key(&g) {
                continue;
            }
            let base = next;
            part.take_or_install(g, 0, || Some(GuestFrame::new(base)));
            expected.insert(g, base);
            next += GROUP_PAGES;
        }
        for (g, base) in expected {
            let res = part.peek(g).unwrap();
            prop_assert_eq!(res.base, GuestFrame::new(base));
            prop_assert_eq!(res.live, 1);
        }
        prop_assert!(part.peek(999).is_none());
    }
}

#[test]
fn concurrent_mixed_take_release_is_consistent() {
    // Threads hammer disjoint offsets of shared groups with take+release
    // cycles; afterwards the table must be empty and balanced.
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    let part = Arc::new(PaRt::new());
    let next = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0u64..8 {
            let part = Arc::clone(&part);
            let next = Arc::clone(&next);
            s.spawn(move || {
                for round in 0..200u64 {
                    let group = round % 16;
                    let out = part.take_or_install(group, t, || {
                        Some(GuestFrame::new(
                            next.fetch_add(GROUP_PAGES, Ordering::Relaxed),
                        ))
                    });
                    assert!(!matches!(out, TakeOutcome::Unavailable));
                    part.release(group, t);
                }
            });
        }
    });
    // Every grant was released; entries may persist (partially granted) but
    // the live masks must all be clear — i.e. releasing them drains nothing
    // unexpected and no page is still considered live.
    let mut live_pages = 0u64;
    part.for_each(|_, res| live_pages += u64::from(res.live.count_ones()));
    assert_eq!(live_pages, 0);
}
