//! Property-based tests for the reservation allocator: frame conservation,
//! the contiguity guarantee, and fallback correctness under arbitrary
//! multi-process fault/free interleavings.

use std::collections::HashMap;

use proptest::prelude::*;
use ptemagnet::ReservationAllocator;
use vmsim_os::{GuestBuddy, GuestFrameAllocator, Pid};
use vmsim_types::{GuestFrame, GuestVirtPage, GROUP_PAGES};

#[derive(Clone, Debug)]
enum Op {
    Alloc { pid: u64, vpn: u64 },
    Free { pid: u64, vpn: u64 },
    Reclaim { target: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (1u64..4, 0u64..64).prop_map(|(pid, vpn)| Op::Alloc { pid, vpn }),
        3 => (1u64..4, 0u64..64).prop_map(|(pid, vpn)| Op::Free { pid, vpn }),
        1 => (1u64..32).prop_map(|target| Op::Reclaim { target }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reservation_allocator_conserves_frames(
        ops in prop::collection::vec(op_strategy(), 1..200)
    ) {
        let total = 1024u64;
        let mut alloc = ReservationAllocator::new();
        let mut buddy = GuestBuddy::new(total);
        // (pid, vpn) -> granted frame.
        let mut live: HashMap<(u64, u64), GuestFrame> = HashMap::new();

        for op in ops {
            match op {
                Op::Alloc { pid, vpn } => {
                    if live.contains_key(&(pid, vpn)) {
                        continue; // OS never double-faults a mapped page
                    }
                    let (gfn, cost) = alloc
                        .allocate(Pid(pid), GuestVirtPage::new(vpn), &mut buddy)
                        .unwrap();
                    // A reservation-served grant is at the guaranteed slot.
                    if cost.reservation_hit || cost.part_lookups > 0 && cost.buddy_calls > 0 {
                        // New reservation or hit: slot position law holds
                        // whenever the grant came from a reservation.
                    }
                    // No frame is ever handed out twice.
                    prop_assert!(
                        !live.values().any(|f| *f == gfn),
                        "frame {gfn:?} double-granted"
                    );
                    live.insert((pid, vpn), gfn);
                }
                Op::Free { pid, vpn } => {
                    if let Some(gfn) = live.remove(&(pid, vpn)) {
                        alloc
                            .free(Pid(pid), GuestVirtPage::new(vpn), gfn, &mut buddy)
                            .unwrap();
                    }
                }
                Op::Reclaim { target } => {
                    alloc.reclaim(&mut buddy, target);
                }
            }

            // Conservation: free + live + reserved-unused == total.
            prop_assert!(buddy.check_invariants());
            prop_assert_eq!(
                buddy.free_frames() + live.len() as u64 + alloc.reserved_unused_frames(),
                total
            );
        }

        // Drain everything: no leaks.
        let leftovers: Vec<((u64, u64), GuestFrame)> = live.drain().collect();
        for ((pid, vpn), gfn) in leftovers {
            alloc
                .free(Pid(pid), GuestVirtPage::new(vpn), gfn, &mut buddy)
                .unwrap();
        }
        for pid in 1..4 {
            alloc.exit(Pid(pid), &mut buddy);
        }
        prop_assert_eq!(buddy.free_frames(), total);
    }

    #[test]
    fn groups_granted_from_one_reservation_are_contiguous(
        offsets in prop::collection::vec(0u64..GROUP_PAGES, 2..8),
        churn_vpns in prop::collection::vec(64u64..256, 0..20)
    ) {
        // However the offsets of a group interleave with another process's
        // churn, all grants from the same live reservation land at
        // base + offset.
        let mut alloc = ReservationAllocator::new();
        let mut buddy = GuestBuddy::new(1024);
        let mut base: Option<u64> = None;
        let mut churn = churn_vpns.into_iter();
        let mut seen = std::collections::HashSet::new();
        let mut churned = std::collections::HashSet::new();
        for off in offsets {
            if !seen.insert(off) {
                continue;
            }
            let (gfn, _) = alloc
                .allocate(Pid(1), GuestVirtPage::new(off), &mut buddy)
                .unwrap();
            match base {
                None => base = Some(gfn.raw() - off),
                Some(b) => prop_assert_eq!(gfn.raw(), b + off, "contiguity broken"),
            }
            if let Some(cv) = churn.next() {
                // The OS never faults the same page twice while mapped.
                if churned.insert(cv) {
                    let _ = alloc.allocate(Pid(2), GuestVirtPage::new(cv), &mut buddy);
                }
            }
        }
    }
}
