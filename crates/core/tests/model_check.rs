//! Model-checked interleaving proofs for the lock-free PaRT.
//!
//! Compiled only under the `model-check` feature, which routes the PaRT's
//! structural atomics through the vendored loom stub: every load/store/CAS
//! becomes a scheduling point, and `loom::model` explores the bounded space
//! of thread interleavings deterministically. Serial set-up before
//! `loom::thread::spawn` contributes no branching (one runnable thread has
//! one schedule), so each test pre-populates its table cheaply and then
//! races exactly the transition it targets:
//!
//! * CAS **install** (two faulting threads racing an empty group),
//! * fused **retire** (two threads granting the last two pages),
//! * **release vs. take** (entry deletion racing a new fault),
//! * **reclaim** (leaf pruning racing an install into the pruned group).
//!
//! `naive_read_then_write_install_is_caught` is the negative control: it
//! re-implements the install path with the CAS replaced by the naive
//! load-then-store and proves the checker finds the double-install schedule
//! — i.e. these tests would go red if the real PaRT's install CAS were
//! weakened the same way (`install_race_has_a_single_winner` is the same
//! race against the real table).
//!
//! Run with: `cargo test -p ptemagnet --features model-check`.

#![cfg(feature = "model-check")]

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

use loom::sync::atomic::{AtomicU64, Ordering};
use ptemagnet::{PaRt, ReleaseOutcome, TakeOutcome};
use vmsim_types::GuestFrame;

fn frame_of(out: TakeOutcome) -> u64 {
    match out {
        TakeOutcome::FromReservation(f) | TakeOutcome::FromNewReservation(f) => f.raw(),
        TakeOutcome::Unavailable => panic!("grant unexpectedly unavailable"),
    }
}

/// Two threads fault into the same empty group with distinct chunk
/// factories. Exactly one install may win; the loser's chunk must be parked
/// in the spare pool, both grants must come from the winning chunk, and no
/// frame may be granted twice — under every interleaving.
#[test]
fn install_race_has_a_single_winner() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        let calls = Arc::new(StdAtomicU64::new(0));
        let part2 = Arc::clone(&part);
        let calls2 = Arc::clone(&calls);
        let t = loom::thread::spawn(move || {
            frame_of(part2.take_or_install(3, 1, || {
                calls2.fetch_add(1, StdOrdering::Relaxed);
                Some(GuestFrame::new(8))
            }))
        });
        let a = frame_of(part.take_or_install(3, 0, || {
            calls.fetch_add(1, StdOrdering::Relaxed);
            Some(GuestFrame::new(16))
        }));
        let b = t.join().unwrap();
        assert_ne!(a, b, "no frame granted twice");
        let s = part.stats();
        assert_eq!(s.installs, 1, "exactly one install wins");
        assert_eq!(s.hits, 1, "the loser is served from the winner's entry");
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.unused_frames, 6);
        // Both grants come from the single tracked chunk.
        let base = part.peek(3).expect("entry live").base.raw();
        assert_eq!(a, base, "offset 0 grant");
        assert_eq!(b, base + 1, "offset 1 grant");
        // Chunk conservation: every chunk the factories allocated is either
        // the installed one or parked in the spare pool — never leaked.
        assert_eq!(
            calls.load(StdOrdering::Relaxed),
            s.installs + part.spare_chunks().len() as u64,
            "allocated chunks = installs + parked spares"
        );
    });
}

/// Two threads grant the last two pages of a nearly-full group. Whichever
/// CAS completes the mask retires the entry in the same step: retirement
/// must happen exactly once and the entry must be gone afterwards.
#[test]
fn concurrent_final_grants_retire_exactly_once() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        part.take_or_install(1, 0, || Some(GuestFrame::new(0)));
        for off in 1..6 {
            part.take_or_install(1, off, || panic!("entry exists"));
        }
        let part2 = Arc::clone(&part);
        let t =
            loom::thread::spawn(move || frame_of(part2.take_or_install(1, 6, || unreachable!())));
        let a = frame_of(part.take_or_install(1, 7, || unreachable!()));
        let b = t.join().unwrap();
        assert_eq!((a, b), (7, 6), "grants come from the reserved chunk");
        let s = part.stats();
        assert_eq!(s.retired_full, 1, "the full entry retires exactly once");
        assert_eq!(s.live_entries, 0);
        assert_eq!(s.unused_frames, 0);
        assert!(part.peek(1).is_none(), "retired entry is gone");
    });
}

/// A release of the last live page (which deletes the entry and returns the
/// whole chunk) races a fault into the same group. Either the fault hits
/// the still-live entry first, or it faults into a dead group and installs
/// fresh — both must leave the accounting exactly consistent, with no frame
/// lost or double-owned.
#[test]
fn release_race_with_take_conserves_frames() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        part.take_or_install(2, 0, || Some(GuestFrame::new(8)));
        let part2 = Arc::clone(&part);
        let t =
            loom::thread::spawn(move || part2.take_or_install(2, 1, || Some(GuestFrame::new(16))));
        let released = part.release(2, 0);
        let took = t.join().unwrap();
        let s = part.stats();
        match took {
            // The fault hit the original entry before the release deleted
            // it, so the release only dropped page 0 back into a still-live
            // reservation.
            TakeOutcome::FromReservation(f) => {
                assert_eq!(f.raw(), 9);
                match released {
                    ReleaseOutcome::Released {
                        entry_deleted,
                        unused_frames,
                    } => {
                        assert!(!entry_deleted, "entry still has page 1 live");
                        assert!(unused_frames.is_empty());
                    }
                    other => panic!("tracked release, got {other:?}"),
                }
                assert_eq!(part.peek(2).expect("entry live").live, 1 << 1);
            }
            // The release deleted the entry first (returning all 8 frames),
            // so the fault installed a fresh chunk.
            TakeOutcome::FromNewReservation(f) => {
                assert_eq!(f.raw(), 17);
                match released {
                    ReleaseOutcome::Released {
                        entry_deleted,
                        unused_frames,
                    } => {
                        assert!(entry_deleted);
                        assert_eq!(unused_frames.len(), 8, "whole chunk returned");
                    }
                    other => panic!("tracked release, got {other:?}"),
                }
                assert_eq!(part.peek(2).expect("entry live").base.raw(), 16);
            }
            TakeOutcome::Unavailable => panic!("factory always supplies a chunk"),
        }
        // Both orders end with one live entry holding one live page.
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.unused_frames, 7);
    });
}

/// Epoch reclamation racing an install: one thread prunes the empty leaf
/// left behind by a deleted entry (CAS to `RETIRED`, unlink, deferred free)
/// while another faults into that same group. The install must never be
/// swallowed by the pruner — it either beats the `RETIRED` transition or
/// re-descends into a fresh leaf.
#[test]
fn prune_never_swallows_a_concurrent_install() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        // Leave group 4 with an empty (prunable) leaf behind.
        part.take_or_install(4, 0, || Some(GuestFrame::new(8)));
        let deleted = part.release(4, 0);
        assert!(matches!(
            deleted,
            ReleaseOutcome::Released {
                entry_deleted: true,
                ..
            }
        ));
        let part2 = Arc::clone(&part);
        let t = loom::thread::spawn(move || part2.prune_empty());
        let got = frame_of(part.take_or_install(4, 2, || Some(GuestFrame::new(16))));
        t.join().unwrap();
        assert_eq!(got, 18);
        let res = part
            .peek(4)
            .expect("the installed reservation must survive pruning");
        assert_eq!(res.base.raw(), 16);
        assert_eq!(res.live, 1 << 2);
        assert_eq!(part.live_entries(), 1);
        assert_eq!(part.unused_frames(), 7);
    });
}

/// Negative control: the PaRT's install path with its CAS replaced by the
/// naive load-then-store. The checker must find the schedule where both
/// threads observe `EMPTY` and double-install, one overwriting the other —
/// proving this suite would catch that exact weakening of the real code.
#[test]
fn naive_read_then_write_install_is_caught() {
    const EMPTY: u64 = 0;
    fn pack(base: u64, live: u8) -> u64 {
        (base << 9) | (u64::from(live) << 1) | 1
    }

    let violated = loom::model_finds_violation(|| {
        let word = Arc::new(AtomicU64::new(EMPTY));
        let installs = Arc::new(StdAtomicU64::new(0));
        let grant = |word: &AtomicU64, installs: &StdAtomicU64, offset: u8, chunk: u64| -> u64 {
            let seen = word.load(Ordering::SeqCst);
            if seen == EMPTY {
                // BUG under test: publication by blind store. The real PaRT
                // uses compare_exchange(EMPTY, ..) here.
                word.store(pack(chunk, 1 << offset), Ordering::SeqCst);
                installs.fetch_add(1, StdOrdering::Relaxed);
                chunk + u64::from(offset)
            } else {
                let base = seen >> 9;
                let live = ((seen >> 1) & 0xff) as u8;
                word.store(pack(base, live | (1 << offset)), Ordering::SeqCst);
                base + u64::from(offset)
            }
        };
        let word2 = Arc::clone(&word);
        let installs2 = Arc::clone(&installs);
        let t = loom::thread::spawn(move || grant(&word2, &installs2, 1, 8));
        let a = grant(&word, &installs, 0, 16);
        let b = t.join().unwrap();
        assert_eq!(
            installs.load(StdOrdering::Relaxed),
            1,
            "a second chunk was installed over the first"
        );
        let final_word = word.load(Ordering::SeqCst);
        let base = final_word >> 9;
        let live = (final_word >> 1) & 0xff;
        assert_eq!(live, 0b11, "a grant was lost from the live mask");
        assert!(
            a / 8 * 8 == base && b / 8 * 8 == base,
            "a granted frame escaped the tracked reservation"
        );
    });
    assert!(
        violated,
        "the model checker must catch the naive install race"
    );
}
