//! Model-checked interleaving proofs for the lock-free PaRT.
//!
//! Compiled only under the `model-check` feature, which routes the PaRT's
//! structural atomics through the vendored loom stub: every load/store/CAS
//! becomes a scheduling point, and `loom::model` explores the bounded space
//! of thread interleavings deterministically. Serial set-up before
//! `loom::thread::spawn` contributes no branching (one runnable thread has
//! one schedule), so each test pre-populates its table cheaply and then
//! races exactly the transition it targets:
//!
//! * CAS **install** (two faulting threads racing an empty group),
//! * fused **retire** (two threads granting the last two pages),
//! * **release vs. take** (entry deletion racing a new fault),
//! * **reclaim** (leaf pruning racing an install into the pruned group),
//! * **harvest** (the reclaim daemon's [`PaRt::drain_unused`] racing a
//!   fault, a release, and the fused final-grant retire — no frame may be
//!   both granted and harvested, and live pages are never drained).
//!
//! `naive_read_then_write_install_is_caught` and
//! `naive_harvest_blind_store_is_caught` are the negative controls: each
//! re-implements one path with its CAS replaced by the naive
//! load-then-store and proves the checker finds the double-install /
//! double-ownership schedule — i.e. these tests would go red if the real
//! PaRT's install or harvest CAS were weakened the same way
//! (`install_race_has_a_single_winner` and
//! `harvest_race_with_install_conserves_frames` are the same races against
//! the real table).
//!
//! Run with: `cargo test -p ptemagnet --features model-check`.

#![cfg(feature = "model-check")]

use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::Arc;

use loom::sync::atomic::{AtomicU64, Ordering};
use ptemagnet::{PaRt, ReleaseOutcome, TakeOutcome};
use vmsim_types::GuestFrame;

fn frame_of(out: TakeOutcome) -> u64 {
    match out {
        TakeOutcome::FromReservation(f) | TakeOutcome::FromNewReservation(f) => f.raw(),
        TakeOutcome::Unavailable => panic!("grant unexpectedly unavailable"),
    }
}

/// Two threads fault into the same empty group with distinct chunk
/// factories. Exactly one install may win; the loser's chunk must be parked
/// in the spare pool, both grants must come from the winning chunk, and no
/// frame may be granted twice — under every interleaving.
#[test]
fn install_race_has_a_single_winner() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        let calls = Arc::new(StdAtomicU64::new(0));
        let part2 = Arc::clone(&part);
        let calls2 = Arc::clone(&calls);
        let t = loom::thread::spawn(move || {
            frame_of(part2.take_or_install(3, 1, || {
                calls2.fetch_add(1, StdOrdering::Relaxed);
                Some(GuestFrame::new(8))
            }))
        });
        let a = frame_of(part.take_or_install(3, 0, || {
            calls.fetch_add(1, StdOrdering::Relaxed);
            Some(GuestFrame::new(16))
        }));
        let b = t.join().unwrap();
        assert_ne!(a, b, "no frame granted twice");
        let s = part.stats();
        assert_eq!(s.installs, 1, "exactly one install wins");
        assert_eq!(s.hits, 1, "the loser is served from the winner's entry");
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.unused_frames, 6);
        // Both grants come from the single tracked chunk.
        let base = part.peek(3).expect("entry live").base.raw();
        assert_eq!(a, base, "offset 0 grant");
        assert_eq!(b, base + 1, "offset 1 grant");
        // Chunk conservation: every chunk the factories allocated is either
        // the installed one or parked in the spare pool — never leaked.
        assert_eq!(
            calls.load(StdOrdering::Relaxed),
            s.installs + part.spare_chunks().len() as u64,
            "allocated chunks = installs + parked spares"
        );
    });
}

/// Two threads grant the last two pages of a nearly-full group. Whichever
/// CAS completes the mask retires the entry in the same step: retirement
/// must happen exactly once and the entry must be gone afterwards.
#[test]
fn concurrent_final_grants_retire_exactly_once() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        part.take_or_install(1, 0, || Some(GuestFrame::new(0)));
        for off in 1..6 {
            part.take_or_install(1, off, || panic!("entry exists"));
        }
        let part2 = Arc::clone(&part);
        let t =
            loom::thread::spawn(move || frame_of(part2.take_or_install(1, 6, || unreachable!())));
        let a = frame_of(part.take_or_install(1, 7, || unreachable!()));
        let b = t.join().unwrap();
        assert_eq!((a, b), (7, 6), "grants come from the reserved chunk");
        let s = part.stats();
        assert_eq!(s.retired_full, 1, "the full entry retires exactly once");
        assert_eq!(s.live_entries, 0);
        assert_eq!(s.unused_frames, 0);
        assert!(part.peek(1).is_none(), "retired entry is gone");
    });
}

/// A release of the last live page (which deletes the entry and returns the
/// whole chunk) races a fault into the same group. Either the fault hits
/// the still-live entry first, or it faults into a dead group and installs
/// fresh — both must leave the accounting exactly consistent, with no frame
/// lost or double-owned.
#[test]
fn release_race_with_take_conserves_frames() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        part.take_or_install(2, 0, || Some(GuestFrame::new(8)));
        let part2 = Arc::clone(&part);
        let t =
            loom::thread::spawn(move || part2.take_or_install(2, 1, || Some(GuestFrame::new(16))));
        let released = part.release(2, 0);
        let took = t.join().unwrap();
        let s = part.stats();
        match took {
            // The fault hit the original entry before the release deleted
            // it, so the release only dropped page 0 back into a still-live
            // reservation.
            TakeOutcome::FromReservation(f) => {
                assert_eq!(f.raw(), 9);
                match released {
                    ReleaseOutcome::Released {
                        entry_deleted,
                        unused_frames,
                    } => {
                        assert!(!entry_deleted, "entry still has page 1 live");
                        assert!(unused_frames.is_empty());
                    }
                    other => panic!("tracked release, got {other:?}"),
                }
                assert_eq!(part.peek(2).expect("entry live").live, 1 << 1);
            }
            // The release deleted the entry first (returning all 8 frames),
            // so the fault installed a fresh chunk.
            TakeOutcome::FromNewReservation(f) => {
                assert_eq!(f.raw(), 17);
                match released {
                    ReleaseOutcome::Released {
                        entry_deleted,
                        unused_frames,
                    } => {
                        assert!(entry_deleted);
                        assert_eq!(unused_frames.len(), 8, "whole chunk returned");
                    }
                    other => panic!("tracked release, got {other:?}"),
                }
                assert_eq!(part.peek(2).expect("entry live").base.raw(), 16);
            }
            TakeOutcome::Unavailable => panic!("factory always supplies a chunk"),
        }
        // Both orders end with one live entry holding one live page.
        assert_eq!(s.live_entries, 1);
        assert_eq!(s.unused_frames, 7);
    });
}

/// Epoch reclamation racing an install: one thread prunes the empty leaf
/// left behind by a deleted entry (CAS to `RETIRED`, unlink, deferred free)
/// while another faults into that same group. The install must never be
/// swallowed by the pruner — it either beats the `RETIRED` transition or
/// re-descends into a fresh leaf.
#[test]
fn prune_never_swallows_a_concurrent_install() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        // Leave group 4 with an empty (prunable) leaf behind.
        part.take_or_install(4, 0, || Some(GuestFrame::new(8)));
        let deleted = part.release(4, 0);
        assert!(matches!(
            deleted,
            ReleaseOutcome::Released {
                entry_deleted: true,
                ..
            }
        ));
        let part2 = Arc::clone(&part);
        let t = loom::thread::spawn(move || part2.prune_empty());
        let got = frame_of(part.take_or_install(4, 2, || Some(GuestFrame::new(16))));
        t.join().unwrap();
        assert_eq!(got, 18);
        let res = part
            .peek(4)
            .expect("the installed reservation must survive pruning");
        assert_eq!(res.base.raw(), 16);
        assert_eq!(res.live, 1 << 2);
        assert_eq!(part.live_entries(), 1);
        assert_eq!(part.unused_frames(), 7);
    });
}

/// The reclaim daemon's harvest (`drain_unused`) races a fault into the
/// only reservation with unused frames. Either the fault's grant lands
/// before the harvest CAS (and the harvested set excludes the granted
/// page), or the harvest destroys the entry first and the fault installs a
/// fresh chunk. In every interleaving no frame is both granted and
/// harvested, no live page is drained, and the accounting stays exact.
#[test]
fn harvest_race_with_install_conserves_frames() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        // Group 5: base 8, page 0 live, pages 1..8 unused.
        part.take_or_install(5, 0, || Some(GuestFrame::new(8)));
        let part2 = Arc::clone(&part);
        let t =
            loom::thread::spawn(move || part2.take_or_install(5, 3, || Some(GuestFrame::new(16))));
        let mut harvested: Vec<u64> = Vec::new();
        let drained = part.drain_unused(|f| {
            harvested.push(f.raw());
            true
        });
        let took = t.join().unwrap();
        assert_eq!(drained, harvested.len() as u64);
        let mut dedup = harvested.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), harvested.len(), "no frame drained twice");
        assert!(!harvested.contains(&8), "live page 0 must never be drained");
        match took {
            // The grant landed before the harvest CAS: the harvest re-read
            // the word and excluded the now-live page 3.
            TakeOutcome::FromReservation(f) => {
                assert_eq!(f.raw(), 11);
                assert_eq!(drained, 6);
                assert!(
                    !harvested.contains(&11),
                    "granted frame must not be harvested"
                );
                assert_eq!(part.live_entries(), 0);
                assert_eq!(part.unused_frames(), 0);
                assert!(part.peek(5).is_none(), "harvest deleted the entry");
            }
            // The harvest destroyed the reservation first, so the fault
            // installed a fresh chunk (possibly re-descending past the
            // pruned leaf).
            TakeOutcome::FromNewReservation(f) => {
                assert_eq!(f.raw(), 19);
                assert_eq!(drained, 7, "all seven unused frames drained");
                assert_eq!(part.live_entries(), 1);
                assert_eq!(part.unused_frames(), 7);
                let res = part.peek(5).expect("fresh entry survives the prune");
                assert_eq!(res.base.raw(), 16);
                assert_eq!(res.live, 1 << 3);
            }
            TakeOutcome::Unavailable => panic!("factory always supplies a chunk"),
        }
    });
}

/// Harvest races a release of one of two live pages. The released page
/// either rejoins the unused pool in time to be harvested (drained exactly
/// once) or the harvest deletes the entry first and the release reports the
/// page untracked. The page that stays live (frame 9) must never be
/// drained under any interleaving.
#[test]
fn harvest_race_with_release_never_frees_a_live_page() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        // Group 6: base 8, pages 0 and 1 live, six unused frames.
        part.take_or_install(6, 0, || Some(GuestFrame::new(8)));
        part.take_or_install(6, 1, || panic!("entry exists"));
        let part2 = Arc::clone(&part);
        let t = loom::thread::spawn(move || part2.release(6, 0));
        let mut harvested: Vec<u64> = Vec::new();
        let drained = part.drain_unused(|f| {
            harvested.push(f.raw());
            true
        });
        let released = t.join().unwrap();
        assert_eq!(drained, harvested.len() as u64);
        let mut dedup = harvested.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), harvested.len(), "no frame drained twice");
        assert!(!harvested.contains(&9), "live page 1 must never be drained");
        match released {
            // The harvest destroyed the entry before the release reached
            // it: page 0 stays mapped, the release falls back to the
            // default kernel path.
            ReleaseOutcome::NotTracked => {
                assert_eq!(drained, 6);
                assert!(!harvested.contains(&8), "page 0 was still live");
            }
            // The release dropped page 0 back into the pool first; the
            // harvest re-read the word and drained all seven unused frames,
            // page 0's included — each exactly once.
            ReleaseOutcome::Released {
                entry_deleted,
                unused_frames,
            } => {
                assert!(!entry_deleted, "page 1 keeps the entry live");
                assert!(unused_frames.is_empty());
                assert_eq!(drained, 7);
                assert!(harvested.contains(&8), "released page rejoins the pool");
            }
        }
        // Both orders end with the entry harvested and the books closed.
        assert_eq!(part.live_entries(), 0);
        assert_eq!(part.unused_frames(), 0);
        assert!(part.peek(6).is_none());
    });
}

/// Harvest races the grant of a group's last unused page (which fuses with
/// retirement). Either the grant wins — the entry retires full and the
/// harvest finds nothing — or the harvest destroys the reservation first
/// and the fault installs a fresh chunk. The contested frame (15) is
/// granted or harvested, never both.
#[test]
fn harvest_race_with_final_grant_retires_or_drains_once() {
    loom::model(|| {
        let part = Arc::new(PaRt::new());
        // Group 7: pages 0..7 live, exactly one unused frame (15) left.
        part.take_or_install(7, 0, || Some(GuestFrame::new(8)));
        for off in 1..7 {
            part.take_or_install(7, off, || panic!("entry exists"));
        }
        let part2 = Arc::clone(&part);
        let t =
            loom::thread::spawn(move || part2.take_or_install(7, 7, || Some(GuestFrame::new(16))));
        let mut harvested: Vec<u64> = Vec::new();
        let drained = part.drain_unused(|f| {
            harvested.push(f.raw());
            true
        });
        let took = t.join().unwrap();
        let s = part.stats();
        match took {
            // The final grant completed the mask and retired the entry
            // before the harvest CAS: nothing left to drain.
            TakeOutcome::FromReservation(f) => {
                assert_eq!(f.raw(), 15);
                assert_eq!(drained, 0, "retired entry has nothing to harvest");
                assert!(harvested.is_empty());
                assert_eq!(s.retired_full, 1, "full entry retires exactly once");
                assert_eq!(s.live_entries, 0);
                assert_eq!(s.unused_frames, 0);
            }
            // The harvest took frame 15 first; the fault installed fresh
            // and no retirement happened.
            TakeOutcome::FromNewReservation(f) => {
                assert_eq!(f.raw(), 23);
                assert_eq!(harvested, vec![15]);
                assert_eq!(s.retired_full, 0);
                assert_eq!(s.live_entries, 1);
                assert_eq!(s.unused_frames, 7);
                assert_eq!(part.peek(7).expect("fresh entry").base.raw(), 16);
            }
            TakeOutcome::Unavailable => panic!("factory always supplies a chunk"),
        }
        assert!(part.peek(7).map_or(true, |r| r.base.raw() == 16));
    });
}

/// Negative control: the PaRT's install path with its CAS replaced by the
/// naive load-then-store. The checker must find the schedule where both
/// threads observe `EMPTY` and double-install, one overwriting the other —
/// proving this suite would catch that exact weakening of the real code.
#[test]
fn naive_read_then_write_install_is_caught() {
    const EMPTY: u64 = 0;
    fn pack(base: u64, live: u8) -> u64 {
        (base << 9) | (u64::from(live) << 1) | 1
    }

    let violated = loom::model_finds_violation(|| {
        let word = Arc::new(AtomicU64::new(EMPTY));
        let installs = Arc::new(StdAtomicU64::new(0));
        let grant = |word: &AtomicU64, installs: &StdAtomicU64, offset: u8, chunk: u64| -> u64 {
            let seen = word.load(Ordering::SeqCst);
            if seen == EMPTY {
                // BUG under test: publication by blind store. The real PaRT
                // uses compare_exchange(EMPTY, ..) here.
                word.store(pack(chunk, 1 << offset), Ordering::SeqCst);
                installs.fetch_add(1, StdOrdering::Relaxed);
                chunk + u64::from(offset)
            } else {
                let base = seen >> 9;
                let live = ((seen >> 1) & 0xff) as u8;
                word.store(pack(base, live | (1 << offset)), Ordering::SeqCst);
                base + u64::from(offset)
            }
        };
        let word2 = Arc::clone(&word);
        let installs2 = Arc::clone(&installs);
        let t = loom::thread::spawn(move || grant(&word2, &installs2, 1, 8));
        let a = grant(&word, &installs, 0, 16);
        let b = t.join().unwrap();
        assert_eq!(
            installs.load(StdOrdering::Relaxed),
            1,
            "a second chunk was installed over the first"
        );
        let final_word = word.load(Ordering::SeqCst);
        let base = final_word >> 9;
        let live = (final_word >> 1) & 0xff;
        assert_eq!(live, 0b11, "a grant was lost from the live mask");
        assert!(
            a / 8 * 8 == base && b / 8 * 8 == base,
            "a granted frame escaped the tracked reservation"
        );
    });
    assert!(
        violated,
        "the model checker must catch the naive install race"
    );
}

/// Negative control for the harvest path: a reclaim daemon that loads the
/// packed word, computes the unused frames from that stale snapshot, and
/// then publishes `EMPTY` with a blind store (the real `drain_unused`
/// CASes the loaded word and retries on failure). The checker must find
/// the schedule where a concurrent CAS grant lands between the harvester's
/// load and its store: the granted frame is then also collected as
/// "unused" — one frame, two owners.
#[test]
fn naive_harvest_blind_store_is_caught() {
    const EMPTY: u64 = 0;
    fn pack(base: u64, live: u8) -> u64 {
        (base << 9) | (u64::from(live) << 1) | 1
    }
    fn unpack(word: u64) -> (u64, u8) {
        (word >> 9, ((word >> 1) & 0xff) as u8)
    }

    let violated = loom::model_finds_violation(|| {
        // One leaf word: base 8, page 0 live, pages 1..8 unused.
        let word = Arc::new(AtomicU64::new(pack(8, 0b1)));
        let word2 = Arc::clone(&word);
        // A faithful CAS grant of offset 3, as the real take_or_install
        // performs it (install fresh if the entry was harvested away).
        let t = loom::thread::spawn(move || loop {
            let seen = word2.load(Ordering::SeqCst);
            if seen == EMPTY {
                if word2
                    .compare_exchange(EMPTY, pack(16, 1 << 3), Ordering::SeqCst, Ordering::SeqCst)
                    .is_ok()
                {
                    return 16 + 3;
                }
            } else {
                let (base, live) = unpack(seen);
                if word2
                    .compare_exchange(
                        seen,
                        pack(base, live | (1 << 3)),
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                    )
                    .is_ok()
                {
                    return base + 3;
                }
            }
        });
        // BUG under test: harvest by load-then-blind-store. The real
        // drain_unused compare_exchanges the exact word it computed the
        // unused set from, so a grant racing in forces a re-read.
        let seen = word.load(Ordering::SeqCst);
        let mut harvested: Vec<u64> = Vec::new();
        if seen != EMPTY {
            let (base, live) = unpack(seen);
            for off in 0..8u64 {
                if live & (1 << off) == 0 {
                    harvested.push(base + off);
                }
            }
            word.store(EMPTY, Ordering::SeqCst);
        }
        let granted = t.join().unwrap();
        assert!(
            !harvested.contains(&granted),
            "a frame was both granted and harvested (double-owned)"
        );
    });
    assert!(
        violated,
        "the model checker must catch the naive harvest race"
    );
}
