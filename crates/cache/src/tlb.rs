//! Two-level TLB model caching guest-virtual → host-physical translations.
//!
//! Entries are tagged with an address-space identifier (ASID, one per guest
//! process) so colocated applications contend for TLB capacity without false
//! sharing of translations — matching how PCID-tagged TLBs behave on the
//! paper's hardware.

use vmsim_types::{GuestVirtPage, HostFrame};

use crate::config::TlbConfig;
use crate::set_assoc::SetAssoc;

/// A two-level (L1 DTLB + L2 STLB) translation lookaside buffer.
///
/// # Examples
///
/// ```
/// use vmsim_cache::{Tlb, TlbConfig};
/// use vmsim_types::{GuestVirtPage, HostFrame};
///
/// let mut tlb = Tlb::new(TlbConfig::default());
/// let vpn = GuestVirtPage::new(0x1234);
/// assert!(tlb.lookup(1, vpn).is_none());
/// tlb.insert(1, vpn, HostFrame::new(99));
/// assert_eq!(tlb.lookup(1, vpn), Some(HostFrame::new(99)));
/// // A different process does not see the entry.
/// assert!(tlb.lookup(2, vpn).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    l1: SetAssoc<HostFrame>,
    l2: SetAssoc<HostFrame>,
    /// L0 "last translation" fast path: the L1 slot of the most recent hit.
    /// Page-walk loops touch the same page repeatedly, so the next lookup
    /// usually resolves with one compare instead of a set scan. The hinted
    /// lookup verifies the slot and performs the exact counter/LRU updates
    /// of a plain lookup, so every observable value is unchanged.
    l0_slot: usize,
    hits_l1: u64,
    hits_l2: u64,
    misses: u64,
}

impl Tlb {
    /// Builds a TLB with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if either level's implied set count is zero or not a power of
    /// two.
    pub fn new(config: TlbConfig) -> Self {
        Self {
            l1: SetAssoc::new(config.l1_entries / config.l1_ways, config.l1_ways),
            l2: SetAssoc::new(config.l2_entries / config.l2_ways, config.l2_ways),
            l0_slot: usize::MAX,
            hits_l1: 0,
            hits_l2: 0,
            misses: 0,
        }
    }

    /// Composes the lookup key from ASID and page number.
    ///
    /// The ASID occupies high bits so that the set index (low bits) is driven
    /// by the page number, as in real designs.
    #[inline]
    fn key(asid: u64, vpn: GuestVirtPage) -> u64 {
        (asid << 48) | vpn.raw()
    }

    /// Looks up the translation for (`asid`, `vpn`), promoting L2 hits into
    /// the L1.
    pub fn lookup(&mut self, asid: u64, vpn: GuestVirtPage) -> Option<HostFrame> {
        let key = Self::key(asid, vpn);
        if let Some(&hfn) = self.l1.get_with_hint(key, &mut self.l0_slot) {
            self.hits_l1 += 1;
            return Some(hfn);
        }
        if let Some(&hfn) = self.l2.get(key) {
            self.hits_l2 += 1;
            self.l1.insert(key, hfn);
            return Some(hfn);
        }
        self.misses += 1;
        None
    }

    /// Installs a translation in both levels (as a hardware walker does).
    pub fn insert(&mut self, asid: u64, vpn: GuestVirtPage, hfn: HostFrame) {
        let key = Self::key(asid, vpn);
        self.l1.insert(key, hfn);
        self.l2.insert(key, hfn);
    }

    /// Invalidates one page's translation (e.g. on unmap or COW break).
    pub fn invalidate(&mut self, asid: u64, vpn: GuestVirtPage) {
        let key = Self::key(asid, vpn);
        self.l1.invalidate(key);
        self.l2.invalidate(key);
    }

    /// Drops all translations belonging to `asid` (context teardown).
    pub fn flush_asid(&mut self, asid: u64) {
        let matches = move |k: u64, _: &HostFrame| (k >> 48) == asid;
        self.l1.invalidate_if(matches);
        self.l2.invalidate_if(matches);
    }

    /// Drops everything.
    pub fn flush_all(&mut self) {
        self.l1.flush();
        self.l2.flush();
    }

    /// Index of the L1 set that (`asid`, `vpn`) maps to.
    #[inline]
    pub fn l1_set_index(&self, asid: u64, vpn: GuestVirtPage) -> u32 {
        self.l1.set_index(Self::key(asid, vpn))
    }

    /// Mutation epoch of L1 set `index` (see [`SetAssoc::set_epoch_at`]).
    ///
    /// A memoization layer that saw (`asid`, `vpn`) hit (or be inserted) as
    /// the set's MRU entry may replay that hit — via
    /// [`Tlb::replay_l1_hit`] — for as long as the epoch is unchanged: no
    /// other lookup or insert has touched the set, so the entry is still
    /// resident, still MRU, and its LRU promotion would be a no-op.
    #[inline]
    pub fn l1_set_epoch_at(&self, index: u32) -> u64 {
        self.l1.set_epoch_at(index)
    }

    /// Records the counter effect of an L1 hit whose LRU promotion is a
    /// proven no-op (the entry is MRU and its set epoch is unchanged since
    /// the proof was captured). Observable counters move exactly as in
    /// [`Tlb::lookup`]; set state is untouched by construction.
    #[inline]
    pub fn replay_l1_hit(&mut self) {
        self.hits_l1 += 1;
    }

    /// L1 hits since construction.
    pub fn l1_hits(&self) -> u64 {
        self.hits_l1
    }

    /// L2 hits (L1 misses that hit the STLB).
    pub fn l2_hits(&self) -> u64 {
        self.hits_l2
    }

    /// Full TLB misses (both levels missed — a page walk is required).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits_l1 + self.hits_l2 + self.misses
    }

    /// Miss ratio over all lookups, in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }

    /// Resets hit/miss counters without touching contents.
    pub fn reset_counters(&mut self) {
        self.hits_l1 = 0;
        self.hits_l2 = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(TlbConfig::default())
    }

    #[test]
    fn miss_then_hit() {
        let mut t = tlb();
        let vpn = GuestVirtPage::new(10);
        assert!(t.lookup(0, vpn).is_none());
        t.insert(0, vpn, HostFrame::new(5));
        assert_eq!(t.lookup(0, vpn), Some(HostFrame::new(5)));
        assert_eq!(t.misses(), 1);
        assert_eq!(t.l1_hits(), 1);
    }

    #[test]
    fn asids_are_isolated() {
        let mut t = tlb();
        let vpn = GuestVirtPage::new(10);
        t.insert(1, vpn, HostFrame::new(5));
        assert!(t.lookup(2, vpn).is_none());
    }

    #[test]
    fn l2_backstops_l1_conflicts() {
        let mut t = Tlb::new(TlbConfig {
            l1_entries: 4,
            l1_ways: 1,
            l2_entries: 64,
            l2_ways: 4,
            // tiny L1 so conflicting vpns thrash it
        });
        // Fill conflicting L1 slots (same set: vpns differ by 4).
        for i in 0..8u64 {
            t.insert(0, GuestVirtPage::new(i * 4), HostFrame::new(i));
        }
        // The earliest entry fell out of the tiny L1 but survives in L2.
        let r = t.lookup(0, GuestVirtPage::new(0));
        assert_eq!(r, Some(HostFrame::new(0)));
        assert_eq!(t.l2_hits(), 1);
    }

    #[test]
    fn invalidate_removes_both_levels() {
        let mut t = tlb();
        let vpn = GuestVirtPage::new(7);
        t.insert(0, vpn, HostFrame::new(1));
        t.invalidate(0, vpn);
        assert!(t.lookup(0, vpn).is_none());
    }

    #[test]
    fn flush_asid_is_selective() {
        let mut t = tlb();
        t.insert(1, GuestVirtPage::new(1), HostFrame::new(1));
        t.insert(2, GuestVirtPage::new(2), HostFrame::new(2));
        t.flush_asid(1);
        assert!(t.lookup(1, GuestVirtPage::new(1)).is_none());
        assert!(t.lookup(2, GuestVirtPage::new(2)).is_some());
    }

    #[test]
    fn miss_ratio_and_reset() {
        let mut t = tlb();
        let vpn = GuestVirtPage::new(3);
        t.lookup(0, vpn);
        t.insert(0, vpn, HostFrame::new(9));
        t.lookup(0, vpn);
        assert!((t.miss_ratio() - 0.5).abs() < f64::EPSILON);
        t.reset_counters();
        assert_eq!(t.lookups(), 0);
        assert_eq!(t.miss_ratio(), 0.0);
    }
}
