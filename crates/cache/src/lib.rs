//! Cache, TLB, and page-walk-cache models for the PTEMagnet simulator.
//!
//! The paper's entire phenomenon lives in the cache hierarchy: nested page
//! walks are fast when the page-table entries they touch hit in the caches
//! and slow when host-PT entries scatter across many lines and fall out to
//! DRAM (§3.2–§3.3). This crate models:
//!
//! * a generic **set-associative array** with true-LRU replacement
//!   ([`set_assoc::SetAssoc`]) — the building block for everything else;
//! * a three-level **cache hierarchy** ([`CacheHierarchy`]) with per-core
//!   private L1/L2 and a shared LLC, parameterized after the paper's
//!   Broadwell Xeon E5-2630v4 testbed;
//! * two-level **TLBs** ([`Tlb`]) caching guest-virtual → host-physical
//!   translations per process;
//! * **page-walk caches** and a **nested TLB** ([`PageWalkCaches`]) that let
//!   the simulated walker skip upper page-table levels, as real hardware
//!   does — leaving leaf-PTE fetches as the dominant walk cost, exactly the
//!   accesses PTEMagnet targets;
//! * a **cycle cost model** ([`LatencyModel`]) and **per-kind counters**
//!   ([`MemCounters`]) that expose the paper's metrics (page-walk cycles,
//!   host-PT accesses served by main memory, …).
//!
//! # Examples
//!
//! ```
//! use vmsim_cache::{CacheHierarchy, HierarchyConfig, AccessKind, HitLevel};
//! use vmsim_types::HostPhysAddr;
//!
//! let mut caches = CacheHierarchy::new(HierarchyConfig::broadwell(2));
//! let addr = HostPhysAddr::new(0x4_2000);
//! let first = caches.access(0, addr, AccessKind::Data);
//! assert_eq!(first.served_by, HitLevel::Memory);
//! let second = caches.access(0, addr, AccessKind::Data);
//! assert_eq!(second.served_by, HitLevel::L1);
//! assert!(second.cycles < first.cycles);
//! ```

pub mod config;
pub mod counters;
pub mod hierarchy;
pub mod histogram;
pub mod obs;
pub mod pwc;
pub mod set_assoc;
pub mod tlb;

pub use config::{CacheConfig, HierarchyConfig, LatencyModel, PwcConfig, TlbConfig};
pub use counters::{AccessKind, KindCounters, MemCounters, PtKind};
pub use hierarchy::{AccessResult, CacheHierarchy, HitLevel};
pub use histogram::Histogram;
pub use pwc::PageWalkCaches;
pub use set_assoc::SetAssoc;
pub use tlb::Tlb;
