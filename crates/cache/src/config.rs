//! Configuration of caches, TLBs, page-walk caches, and the latency model.
//!
//! Defaults follow the paper's evaluation platform (Table 2): dual Intel Xeon
//! E5-2630v4 (Broadwell). Per-core L1D 32 KB/8-way and L2 256 KB/8-way,
//! shared LLC 25 MB/20-way, L1 DTLB 64-entry/4-way, STLB 1536-entry/12-way.

use serde::{Deserialize, Serialize};
use vmsim_types::CACHE_LINE_SIZE;

/// Geometry of one set-associative cache level.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (must be a power of two).
    pub sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Line size in bytes (64 across the workspace).
    pub line_size: u64,
}

impl CacheConfig {
    /// Builds a config from capacity in bytes and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is zero or not a power of two.
    pub fn from_capacity(bytes: u64, ways: usize) -> Self {
        let sets = (bytes / CACHE_LINE_SIZE / ways as u64) as usize;
        assert!(sets > 0 && sets.is_power_of_two(), "bad cache geometry");
        Self {
            sets,
            ways,
            line_size: CACHE_LINE_SIZE,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.sets as u64 * self.ways as u64 * self.line_size
    }
}

/// Access latencies in CPU cycles for each level of the hierarchy.
///
/// Values are the load-to-use latencies commonly reported for Broadwell-class
/// parts; only the *relative* spread matters for reproducing the paper's
/// trends (a DRAM access is ~5× an LLC hit and ~50× an L1 hit).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// LLC hit latency.
    pub llc: u64,
    /// Main-memory access latency.
    pub memory: u64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self {
            l1: 4,
            l2: 12,
            llc: 42,
            memory: 200,
        }
    }
}

/// TLB geometry (two levels).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbConfig {
    /// L1 DTLB entries.
    pub l1_entries: usize,
    /// L1 DTLB associativity.
    pub l1_ways: usize,
    /// L2 STLB entries.
    pub l2_entries: usize,
    /// L2 STLB associativity.
    pub l2_ways: usize,
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self {
            l1_entries: 64,
            l1_ways: 4,
            l2_entries: 1536,
            l2_ways: 12,
        }
    }
}

/// Page-walk-cache and nested-TLB geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PwcConfig {
    /// Entries per guest-PT intermediate level cache (levels 0..=2).
    pub guest_entries: usize,
    /// Entries in the nested TLB (guest-frame → host-frame translations).
    pub nested_tlb_entries: usize,
    /// Associativity of both structures.
    pub ways: usize,
}

impl Default for PwcConfig {
    fn default() -> Self {
        Self {
            guest_entries: 32,
            nested_tlb_entries: 64,
            ways: 4,
        }
    }
}

/// Full hierarchy configuration: per-core private levels plus shared LLC.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Number of simulated cores (each gets a private L1 + L2).
    pub cores: usize,
    /// Private L1 data cache geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Shared last-level cache geometry.
    pub llc: CacheConfig,
    /// Cycle costs.
    pub latency: LatencyModel,
}

impl HierarchyConfig {
    /// The paper's Broadwell Xeon E5-2630v4 configuration with `cores`
    /// simulated cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn broadwell(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        Self {
            cores,
            l1: CacheConfig::from_capacity(32 * 1024, 8),
            l2: CacheConfig::from_capacity(256 * 1024, 8),
            // 25 MB isn't a power-of-two set count at 20 ways; use 16 ways /
            // 16 MB which keeps the set count a power of two while staying in
            // the same capacity class.
            llc: CacheConfig::from_capacity(16 * 1024 * 1024, 16),
            latency: LatencyModel::default(),
        }
    }

    /// A deliberately tiny hierarchy for fast unit tests.
    pub fn tiny(cores: usize) -> Self {
        Self {
            cores,
            l1: CacheConfig::from_capacity(4 * 1024, 2),
            l2: CacheConfig::from_capacity(16 * 1024, 4),
            llc: CacheConfig::from_capacity(64 * 1024, 4),
            latency: LatencyModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_round_trips() {
        let c = CacheConfig::from_capacity(32 * 1024, 8);
        assert_eq!(c.capacity(), 32 * 1024);
        assert_eq!(c.sets, 64);
    }

    #[test]
    #[should_panic(expected = "bad cache geometry")]
    fn rejects_non_power_of_two_sets() {
        CacheConfig::from_capacity(3 * 1024, 8);
    }

    #[test]
    fn broadwell_shape() {
        let h = HierarchyConfig::broadwell(4);
        assert_eq!(h.cores, 4);
        assert_eq!(h.l1.capacity(), 32 * 1024);
        assert_eq!(h.l2.capacity(), 256 * 1024);
        assert_eq!(h.llc.capacity(), 16 * 1024 * 1024);
        assert!(h.latency.memory > h.latency.llc);
        assert!(h.latency.llc > h.latency.l2);
        assert!(h.latency.l2 > h.latency.l1);
    }

    #[test]
    fn default_tlb_matches_broadwell() {
        let t = TlbConfig::default();
        assert_eq!(t.l1_entries, 64);
        assert_eq!(t.l2_entries, 1536);
    }
}
