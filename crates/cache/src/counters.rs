//! Per-kind memory-access counters exposing the paper's metrics.
//!
//! The paper's analysis (Tables 1 and 4) distinguishes *which structure* a
//! memory access was for — application data, a guest page-table node, or a
//! host page-table node — and *where it was served from*. Every access
//! through [`crate::CacheHierarchy`] is tagged with an [`AccessKind`] so the
//! simulator can report exactly those rows.

use serde::{Deserialize, Serialize};

use crate::hierarchy::HitLevel;

/// Which page table an access belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PtKind {
    /// Guest page table (gPT) node.
    Guest,
    /// Host page table (hPT) node.
    Host,
}

/// Classification of a memory access for accounting purposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// Application data (or instruction) access.
    Data,
    /// Page-table node access during a walk.
    PageTable {
        /// Guest or host table.
        table: PtKind,
        /// Radix level, 0 = root, 3 = leaf.
        level: usize,
    },
}

impl AccessKind {
    /// Convenience constructor for a guest-PT access at `level`.
    pub const fn guest_pt(level: usize) -> Self {
        AccessKind::PageTable {
            table: PtKind::Guest,
            level,
        }
    }

    /// Convenience constructor for a host-PT access at `level`.
    pub const fn host_pt(level: usize) -> Self {
        AccessKind::PageTable {
            table: PtKind::Host,
            level,
        }
    }
}

/// Hit/miss/cycle tallies for one access kind.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KindCounters {
    /// Total accesses of this kind.
    pub accesses: u64,
    /// Accesses served by the L1.
    pub l1_hits: u64,
    /// Accesses served by the L2.
    pub l2_hits: u64,
    /// Accesses served by the LLC.
    pub llc_hits: u64,
    /// Accesses served by main memory.
    pub memory: u64,
    /// Total cycles spent on accesses of this kind.
    pub cycles: u64,
}

impl KindCounters {
    fn record(&mut self, level: HitLevel, cycles: u64) {
        self.accesses += 1;
        self.cycles += cycles;
        match level {
            HitLevel::L1 => self.l1_hits += 1,
            HitLevel::L2 => self.l2_hits += 1,
            HitLevel::Llc => self.llc_hits += 1,
            HitLevel::Memory => self.memory += 1,
        }
    }

    /// Fraction of accesses served by main memory, in `[0, 1]`.
    pub fn memory_fraction(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.memory as f64 / self.accesses as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &KindCounters) {
        self.accesses += other.accesses;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.llc_hits += other.llc_hits;
        self.memory += other.memory;
        self.cycles += other.cycles;
    }
}

/// Aggregated counters for data, guest-PT, and host-PT accesses.
///
/// The accessor methods correspond 1:1 to the rows of the paper's Tables 1
/// and 4.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemCounters {
    /// Application data accesses.
    pub data: KindCounters,
    /// Guest page-table accesses (all levels).
    pub guest_pt: KindCounters,
    /// Host page-table accesses (all levels).
    pub host_pt: KindCounters,
    /// Guest leaf-level (gPTE) accesses only.
    pub guest_leaf: KindCounters,
    /// Host leaf-level (hPTE) accesses only.
    pub host_leaf: KindCounters,
    /// Guest page-table accesses broken down by radix level (0 = root).
    /// This is the paper's §1 analysis: *which* accesses of a nested walk
    /// are served from *where* in the memory hierarchy.
    pub guest_pt_levels: [KindCounters; vmsim_types::PT_LEVELS],
    /// Host page-table accesses broken down by radix level (0 = root).
    pub host_pt_levels: [KindCounters; vmsim_types::PT_LEVELS],
}

impl MemCounters {
    /// Records one access of `kind` served at `level`, costing `cycles`.
    pub fn record(&mut self, kind: AccessKind, level: HitLevel, cycles: u64) {
        match kind {
            AccessKind::Data => self.data.record(level, cycles),
            AccessKind::PageTable {
                table: PtKind::Guest,
                level: pt_level,
            } => {
                self.guest_pt.record(level, cycles);
                self.guest_pt_levels[pt_level].record(level, cycles);
                if pt_level == vmsim_types::PT_LEVELS - 1 {
                    self.guest_leaf.record(level, cycles);
                }
            }
            AccessKind::PageTable {
                table: PtKind::Host,
                level: pt_level,
            } => {
                self.host_pt.record(level, cycles);
                self.host_pt_levels[pt_level].record(level, cycles);
                if pt_level == vmsim_types::PT_LEVELS - 1 {
                    self.host_leaf.record(level, cycles);
                }
            }
        }
    }

    /// "Page walk cycles": cycles spent in all PT accesses (guest + host).
    pub fn page_walk_cycles(&self) -> u64 {
        self.guest_pt.cycles + self.host_pt.cycles
    }

    /// "Cycles spent traversing the host page table".
    pub fn host_pt_cycles(&self) -> u64 {
        self.host_pt.cycles
    }

    /// "Guest page table accesses served by main memory".
    pub fn guest_pt_memory_accesses(&self) -> u64 {
        self.guest_pt.memory
    }

    /// "Host page table accesses served by main memory".
    pub fn host_pt_memory_accesses(&self) -> u64 {
        self.host_pt.memory
    }

    /// Data cache misses (LLC misses on data accesses).
    pub fn data_cache_misses(&self) -> u64 {
        self.data.memory
    }

    /// Total cycles across all accounted accesses.
    pub fn total_cycles(&self) -> u64 {
        self.data.cycles + self.page_walk_cycles()
    }

    /// Merges another counter block into this one.
    pub fn merge(&mut self, other: &MemCounters) {
        self.data.merge(&other.data);
        self.guest_pt.merge(&other.guest_pt);
        self.host_pt.merge(&other.host_pt);
        self.guest_leaf.merge(&other.guest_leaf);
        self.host_leaf.merge(&other.host_leaf);
        for (a, b) in self.guest_pt_levels.iter_mut().zip(&other.guest_pt_levels) {
            a.merge(b);
        }
        for (a, b) in self.host_pt_levels.iter_mut().zip(&other.host_pt_levels) {
            a.merge(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_route_to_correct_kind() {
        let mut c = MemCounters::default();
        c.record(AccessKind::Data, HitLevel::L1, 4);
        c.record(AccessKind::guest_pt(3), HitLevel::Memory, 200);
        c.record(AccessKind::host_pt(3), HitLevel::Llc, 42);
        c.record(AccessKind::host_pt(0), HitLevel::L2, 12);

        assert_eq!(c.data.accesses, 1);
        assert_eq!(c.guest_pt.accesses, 1);
        assert_eq!(c.host_pt.accesses, 2);
        assert_eq!(c.guest_leaf.accesses, 1);
        assert_eq!(c.host_leaf.accesses, 1);
        assert_eq!(c.guest_pt_levels[3].accesses, 1);
        assert_eq!(c.host_pt_levels[3].accesses, 1);
        assert_eq!(c.host_pt_levels[0].accesses, 1);
        assert_eq!(c.host_pt_levels[1].accesses, 0);
        assert_eq!(c.page_walk_cycles(), 200 + 42 + 12);
        assert_eq!(c.host_pt_cycles(), 54);
        assert_eq!(c.guest_pt_memory_accesses(), 1);
        assert_eq!(c.host_pt_memory_accesses(), 0);
        assert_eq!(c.total_cycles(), 258);
    }

    #[test]
    fn memory_fraction_handles_zero() {
        assert_eq!(KindCounters::default().memory_fraction(), 0.0);
        let mut k = KindCounters::default();
        k.record(HitLevel::Memory, 200);
        k.record(HitLevel::L1, 4);
        assert!((k.memory_fraction() - 0.5).abs() < f64::EPSILON);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = MemCounters::default();
        a.record(AccessKind::Data, HitLevel::Memory, 200);
        let mut b = MemCounters::default();
        b.record(AccessKind::Data, HitLevel::L1, 4);
        b.record(AccessKind::host_pt(2), HitLevel::Memory, 200);
        a.merge(&b);
        assert_eq!(a.data.accesses, 2);
        assert_eq!(a.data_cache_misses(), 1);
        assert_eq!(a.host_pt.memory, 1);
    }
}
