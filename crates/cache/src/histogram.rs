//! A log-bucketed latency histogram.
//!
//! Used by the machine to record per-walk and per-fault cycle costs, so
//! tail behaviour (the THP first-touch spike, DRAM-bound walks) is
//! observable, not just averages.

use serde::{Deserialize, Serialize};

/// Number of power-of-two buckets (covers values up to 2^47).
const BUCKETS: usize = 48;

/// A histogram with power-of-two bucket boundaries.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`; bucket 0 additionally
/// holds zeroes.
///
/// # Examples
///
/// ```
/// use vmsim_cache::Histogram;
///
/// let mut h = Histogram::new();
/// for cycles in [12u64, 14, 15, 480] {
///     h.record(cycles);
/// }
/// assert_eq!(h.count(), 4);
/// assert!(h.percentile(0.5) < 16);
/// assert_eq!(h.max(), 480);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = if value == 0 {
            0
        } else {
            (63 - value.leading_zeros() as usize).min(BUCKETS - 1)
        };
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum += u128::from(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate percentile (bucket upper bound containing the p-quantile,
    /// `0.0 < p <= 1.0`). Returns 0 for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `(0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "percentile must be in (0, 1]");
        if self.total == 0 {
            return 0;
        }
        let rank = (p * self.total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The last bucket is open-ended (it absorbs everything at
                // and above 2^(BUCKETS-1)), so its only honest upper bound
                // is the observed max.
                if i == BUCKETS - 1 {
                    return self.max;
                }
                // Upper bound of the bucket, clamped to the observed max.
                return ((1u64 << (i + 1)) - 1).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// Iterates over non-empty buckets as `(lower_bound, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

impl core::fmt::Display for Histogram {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "n={} mean={:.0} p50={} p99={} max={}",
            self.total,
            self.mean(),
            self.percentile(0.5),
            self.percentile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn records_track_mean_and_max() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 25.0).abs() < f64::EPSILON);
        assert_eq!(h.max(), 40);
    }

    #[test]
    fn percentiles_bracket_the_distribution() {
        let mut h = Histogram::new();
        // 99 cheap samples, one expensive.
        for _ in 0..99 {
            h.record(100);
        }
        h.record(100_000);
        let p50 = h.percentile(0.5);
        let p100 = h.percentile(1.0);
        assert!((100..256).contains(&p50), "p50 in the cheap bucket: {p50}");
        assert_eq!(p100, 100_000);
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.buckets().count(), 1, "0 and 1 share bucket 0..2");
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Histogram::new();
        a.record(8);
        let mut b = Histogram::new();
        b.record(1024);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max(), 1024);
        assert_eq!(a.buckets().count(), 2);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_rejected() {
        Histogram::new().percentile(0.0);
    }

    #[test]
    fn empty_histogram_every_percentile_is_zero() {
        let h = Histogram::new();
        for p in [0.001, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 0, "p={p} on empty");
        }
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(37);
        for p in [0.001, 0.5, 0.99, 1.0] {
            // One sample occupies every rank; the bucket upper bound clamps
            // to the observed max, so the answer is exact.
            assert_eq!(h.percentile(p), 37, "p={p} with one sample");
        }
    }

    #[test]
    fn all_zero_samples_percentiles_stay_zero() {
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        for p in [0.001, 0.5, 1.0] {
            assert_eq!(h.percentile(p), 0, "p={p} all-zero");
        }
    }

    #[test]
    fn max_bucket_saturation_clamps_to_observed_max() {
        let mut h = Histogram::new();
        // Both exceed the 2^47 top-bucket boundary, so both land in the
        // saturated last bucket; percentile must clamp to the true max
        // rather than the unreachable bucket upper bound.
        h.record(1 << 50);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.percentile(1.0), u64::MAX);
        assert_eq!(h.percentile(0.5), u64::MAX);
        assert_eq!(h.buckets().count(), 1, "both share the saturated bucket");
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        for v in [3u64, 9, 81] {
            a.record(v);
        }
        let reference = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, reference, "merging an empty histogram changes nothing");
        let mut empty = Histogram::new();
        empty.merge(&reference);
        assert_eq!(empty, reference, "merging into empty copies everything");
    }

    #[test]
    fn merge_preserves_percentiles_of_the_union() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 1..=50u64 {
            a.record(v);
            both.record(v);
        }
        for v in 51..=100u64 {
            b.record(v * 100);
            both.record(v * 100);
        }
        a.merge(&b);
        for p in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.percentile(p), both.percentile(p), "p={p}");
        }
        assert_eq!(a.count(), both.count());
        assert!((a.mean() - both.mean()).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let mut h = Histogram::new();
        h.record(5);
        assert!(h.to_string().contains("n=1"));
    }
}
