//! [`MetricSource`] implementations for the cache crate's stats types.

use crate::counters::{KindCounters, MemCounters};
use crate::histogram::Histogram;
use vmsim_obs::{Metric, MetricSource};

fn emit_kind(prefix: &str, k: &KindCounters, out: &mut Vec<Metric>) {
    out.push(Metric::u64(format!("{prefix}.accesses"), k.accesses));
    out.push(Metric::u64(format!("{prefix}.l1_hits"), k.l1_hits));
    out.push(Metric::u64(format!("{prefix}.l2_hits"), k.l2_hits));
    out.push(Metric::u64(format!("{prefix}.llc_hits"), k.llc_hits));
    out.push(Metric::u64(format!("{prefix}.memory"), k.memory));
    out.push(Metric::u64(format!("{prefix}.cycles"), k.cycles));
}

impl MetricSource for MemCounters {
    fn source_name(&self) -> &'static str {
        "mem"
    }

    fn emit(&self, out: &mut Vec<Metric>) {
        emit_kind("data", &self.data, out);
        emit_kind("guest_pt", &self.guest_pt, out);
        emit_kind("host_pt", &self.host_pt, out);
        emit_kind("guest_leaf", &self.guest_leaf, out);
        emit_kind("host_leaf", &self.host_leaf, out);
        for (level, k) in self.guest_pt_levels.iter().enumerate() {
            emit_kind(&format!("guest_pt_l{level}"), k, out);
        }
        for (level, k) in self.host_pt_levels.iter().enumerate() {
            emit_kind(&format!("host_pt_l{level}"), k, out);
        }
        out.push(Metric::u64("page_walk_cycles", self.page_walk_cycles()));
        out.push(Metric::u64("total_cycles", self.total_cycles()));
    }
}

impl MetricSource for Histogram {
    fn source_name(&self) -> &'static str {
        "hist"
    }

    fn emit(&self, out: &mut Vec<Metric>) {
        out.push(Metric::u64("count", self.count()));
        out.push(Metric::f64("mean", self.mean()));
        out.push(Metric::u64("max", self.max()));
        if self.count() > 0 {
            out.push(Metric::u64("p50", self.percentile(0.5)));
            out.push(Metric::u64("p90", self.percentile(0.9)));
            out.push(Metric::u64("p95", self.percentile(0.95)));
            out.push(Metric::u64("p99", self.percentile(0.99)));
        } else {
            out.push(Metric::u64("p50", 0));
            out.push(Metric::u64("p90", 0));
            out.push(Metric::u64("p95", 0));
            out.push(Metric::u64("p99", 0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HitLevel;
    use crate::AccessKind;
    use vmsim_obs::Registry;

    #[test]
    fn mem_counters_emit_per_kind_and_per_level() {
        let mut c = MemCounters::default();
        c.record(AccessKind::Data, HitLevel::L1, 4);
        c.record(AccessKind::host_pt(3), HitLevel::Memory, 200);
        let mut reg = Registry::new();
        reg.record(&c);
        let s = reg.snapshot(0);
        assert_eq!(s.get("mem.data.accesses").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("mem.host_pt_l3.memory").unwrap().as_u64(), Some(1));
        assert_eq!(s.get("mem.page_walk_cycles").unwrap().as_u64(), Some(200));
    }

    #[test]
    fn histogram_emits_summary_stats() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 400] {
            h.record(v);
        }
        let mut reg = Registry::new();
        reg.record_as("walk", &h);
        let s = reg.snapshot(0);
        assert_eq!(s.get("walk.count").unwrap().as_u64(), Some(3));
        assert_eq!(s.get("walk.max").unwrap().as_u64(), Some(400));
        assert!(s.get("walk.p95").is_some());
        assert!(s.get("walk.p99").is_some());
    }

    #[test]
    fn empty_histogram_emits_zeroed_percentiles() {
        let mut reg = Registry::new();
        reg.record_as("walk", &Histogram::new());
        let s = reg.snapshot(0);
        for name in ["walk.p50", "walk.p90", "walk.p95", "walk.p99"] {
            assert_eq!(s.get(name).unwrap().as_u64(), Some(0), "{name}");
        }
    }

    #[test]
    fn saturated_top_bucket_percentiles_clamp_to_observed_max() {
        // Values past the last power-of-two bucket boundary all land in
        // the saturated top bucket; exported percentiles must clamp to
        // the observed max instead of reporting the bucket's lower bound.
        let mut h = Histogram::new();
        let huge = u64::MAX - 3;
        for _ in 0..100 {
            h.record(huge);
        }
        let mut reg = Registry::new();
        reg.record_as("walk", &h);
        let s = reg.snapshot(0);
        for name in ["walk.p50", "walk.p90", "walk.p95", "walk.p99"] {
            assert_eq!(s.get(name).unwrap().as_u64(), Some(huge), "{name}");
        }
        assert_eq!(s.get("walk.max").unwrap().as_u64(), Some(huge));
    }
}
