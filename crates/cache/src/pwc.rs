//! Page-walk caches (PWCs) and the nested TLB.
//!
//! Real CPUs accelerate page walks with small translation-path caches
//! (§2.5): PWCs hold recently used *intermediate* page-table nodes so the
//! walker can skip upper levels, and virtualized parts additionally keep a
//! nested TLB of guest-physical → host-physical translations so most of the
//! 2D walk's second dimension short-circuits. With these in place, the
//! dominant remaining walk cost is fetching **leaf** PTEs from the memory
//! hierarchy — precisely the accesses whose cache behaviour PTEMagnet
//! improves. Omitting them would overstate every walk's cost and distort the
//! paper's effect, so they are modelled explicitly.

use vmsim_types::{GuestFrame, GuestVirtPage, HostFrame, HostVirtPage, PT_INDEX_BITS, PT_LEVELS};

use crate::config::PwcConfig;
use crate::set_assoc::SetAssoc;

/// Walk-acceleration state for one core: guest PWC, host PWC, nested TLB.
///
/// * The **guest PWC** maps an (ASID, guest-vpn prefix) at intermediate level
///   `L` to the *host-physical* frame of the guest-PT node at level `L+1`,
///   letting the walker skip guest levels 0..=L **and** the host walks that
///   locating those nodes would have required (hardware stores host-physical
///   pointers for the same reason).
/// * The **host PWC** does the same for the host page table, keyed by
///   host-vpn prefix.
/// * The **nested TLB** caches guest-frame → host-frame translations used for
///   guest-PT node addresses and final data translations.
#[derive(Clone, Debug)]
pub struct PageWalkCaches {
    /// One cache per intermediate guest level (0..PT_LEVELS-1).
    guest: Vec<SetAssoc<(GuestFrame, HostFrame)>>,
    /// One cache per intermediate host level (0..PT_LEVELS-1).
    host: Vec<SetAssoc<HostFrame>>,
    nested_tlb: SetAssoc<HostFrame>,
    nested_hits: u64,
    nested_misses: u64,
}

impl PageWalkCaches {
    /// Builds walk caches with the given geometry.
    pub fn new(config: PwcConfig) -> Self {
        fn mk<V>(entries: usize, ways: usize) -> SetAssoc<V> {
            SetAssoc::new((entries / ways).max(1), ways)
        }
        Self {
            guest: (0..PT_LEVELS - 1)
                .map(|_| mk(config.guest_entries, config.ways))
                .collect(),
            host: (0..PT_LEVELS - 1)
                .map(|_| mk(config.guest_entries, config.ways))
                .collect(),
            nested_tlb: mk(config.nested_tlb_entries, config.ways),
            nested_hits: 0,
            nested_misses: 0,
        }
    }

    #[inline]
    fn guest_key(asid: u64, vpn: GuestVirtPage, level: usize) -> u64 {
        let shift = PT_INDEX_BITS * (PT_LEVELS - 1 - level) as u32;
        (asid << 48) | (vpn.raw() >> shift)
    }

    #[inline]
    fn host_key(hvpn: HostVirtPage, level: usize) -> u64 {
        let shift = PT_INDEX_BITS * (PT_LEVELS - 1 - level) as u32;
        hvpn.raw() >> shift
    }

    /// Returns the deepest guest level whose PWC has the walk prefix of
    /// (`asid`, `vpn`), along with the cached pointer to the next guest-PT
    /// node: `(level_completed, gPT node frame, its host frame)`.
    ///
    /// `level_completed = 2` means the walker can jump straight to the guest
    /// leaf node.
    pub fn guest_lookup(
        &mut self,
        asid: u64,
        vpn: GuestVirtPage,
    ) -> Option<(usize, GuestFrame, HostFrame)> {
        for level in (0..PT_LEVELS - 1).rev() {
            let key = Self::guest_key(asid, vpn, level);
            if let Some(&(gfn, hfn)) = self.guest[level].get(key) {
                return Some((level, gfn, hfn));
            }
        }
        None
    }

    /// Records that walking (`asid`, `vpn`) through guest level `level`
    /// produced the next-level node `gfn` located at host frame `hfn`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= PT_LEVELS - 1` (leaf results go to the TLB, not
    /// the PWC).
    pub fn guest_insert(
        &mut self,
        asid: u64,
        vpn: GuestVirtPage,
        level: usize,
        gfn: GuestFrame,
        hfn: HostFrame,
    ) {
        assert!(level < PT_LEVELS - 1, "leaf entries do not belong in a PWC");
        let key = Self::guest_key(asid, vpn, level);
        self.guest[level].insert(key, (gfn, hfn));
    }

    /// Returns the deepest host level whose PWC has the prefix of `hvpn`,
    /// with the cached next host-PT node frame.
    pub fn host_lookup(&mut self, hvpn: HostVirtPage) -> Option<(usize, HostFrame)> {
        for level in (0..PT_LEVELS - 1).rev() {
            let key = Self::host_key(hvpn, level);
            if let Some(&hfn) = self.host[level].get(key) {
                return Some((level, hfn));
            }
        }
        None
    }

    /// Records that walking `hvpn` through host level `level` produced the
    /// next-level node at `node`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= PT_LEVELS - 1`.
    pub fn host_insert(&mut self, hvpn: HostVirtPage, level: usize, node: HostFrame) {
        assert!(level < PT_LEVELS - 1, "leaf entries do not belong in a PWC");
        let key = Self::host_key(hvpn, level);
        self.host[level].insert(key, node);
    }

    /// Looks up the nested-TLB translation for guest frame `gfn`.
    pub fn nested_lookup(&mut self, gfn: GuestFrame) -> Option<HostFrame> {
        match self.nested_tlb.get(gfn.raw()) {
            Some(&hfn) => {
                self.nested_hits += 1;
                Some(hfn)
            }
            None => {
                self.nested_misses += 1;
                None
            }
        }
    }

    /// Installs a nested-TLB translation.
    pub fn nested_insert(&mut self, gfn: GuestFrame, hfn: HostFrame) {
        self.nested_tlb.insert(gfn.raw(), hfn);
    }

    /// Nested-TLB hits since construction.
    pub fn nested_hits(&self) -> u64 {
        self.nested_hits
    }

    /// Nested-TLB misses since construction.
    pub fn nested_misses(&self) -> u64 {
        self.nested_misses
    }

    /// Drops all state (e.g. on a simulated context switch storm or unmap).
    pub fn flush(&mut self) {
        for c in &mut self.guest {
            c.flush();
        }
        for c in &mut self.host {
            c.flush();
        }
        self.nested_tlb.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pwc() -> PageWalkCaches {
        PageWalkCaches::new(PwcConfig::default())
    }

    #[test]
    fn guest_lookup_prefers_deepest_level() {
        let mut p = pwc();
        let vpn = GuestVirtPage::new(0x12345);
        p.guest_insert(0, vpn, 0, GuestFrame::new(1), HostFrame::new(10));
        p.guest_insert(0, vpn, 2, GuestFrame::new(3), HostFrame::new(30));
        let (level, gfn, hfn) = p.guest_lookup(0, vpn).unwrap();
        assert_eq!(level, 2);
        assert_eq!(gfn, GuestFrame::new(3));
        assert_eq!(hfn, HostFrame::new(30));
    }

    #[test]
    fn guest_prefix_is_shared_by_neighbouring_pages() {
        let mut p = pwc();
        // Pages in the same 2 MB region share the level-2 prefix.
        let a = GuestVirtPage::new(0x1000);
        let b = GuestVirtPage::new(0x1001);
        p.guest_insert(0, a, 2, GuestFrame::new(5), HostFrame::new(50));
        assert!(p.guest_lookup(0, b).is_some());
        // A page in a different 2 MB region does not match.
        let far = GuestVirtPage::new(0x1000 + 512);
        assert!(p.guest_lookup(0, far).is_none());
    }

    #[test]
    fn guest_entries_are_asid_tagged() {
        let mut p = pwc();
        let vpn = GuestVirtPage::new(0x42);
        p.guest_insert(7, vpn, 1, GuestFrame::new(1), HostFrame::new(2));
        assert!(p.guest_lookup(8, vpn).is_none());
        assert!(p.guest_lookup(7, vpn).is_some());
    }

    #[test]
    fn host_lookup_round_trip() {
        let mut p = pwc();
        let hvpn = HostVirtPage::new(0x999);
        assert!(p.host_lookup(hvpn).is_none());
        p.host_insert(hvpn, 2, HostFrame::new(77));
        assert_eq!(p.host_lookup(hvpn), Some((2, HostFrame::new(77))));
    }

    #[test]
    fn nested_tlb_counts_hits_and_misses() {
        let mut p = pwc();
        assert!(p.nested_lookup(GuestFrame::new(4)).is_none());
        p.nested_insert(GuestFrame::new(4), HostFrame::new(8));
        assert_eq!(p.nested_lookup(GuestFrame::new(4)), Some(HostFrame::new(8)));
        assert_eq!(p.nested_hits(), 1);
        assert_eq!(p.nested_misses(), 1);
    }

    #[test]
    #[should_panic(expected = "leaf entries")]
    fn leaf_level_insert_is_rejected() {
        let mut p = pwc();
        p.guest_insert(
            0,
            GuestVirtPage::new(1),
            PT_LEVELS - 1,
            GuestFrame::new(0),
            HostFrame::new(0),
        );
    }

    #[test]
    fn flush_clears_all_structures() {
        let mut p = pwc();
        let vpn = GuestVirtPage::new(0x5);
        p.guest_insert(0, vpn, 1, GuestFrame::new(1), HostFrame::new(1));
        p.host_insert(HostVirtPage::new(0x5), 1, HostFrame::new(1));
        p.nested_insert(GuestFrame::new(1), HostFrame::new(1));
        p.flush();
        assert!(p.guest_lookup(0, vpn).is_none());
        assert!(p.host_lookup(HostVirtPage::new(0x5)).is_none());
        assert!(p.nested_lookup(GuestFrame::new(1)).is_none());
    }
}
