//! Three-level cache hierarchy: per-core private L1/L2 and a shared LLC.
//!
//! The hierarchy is modelled at cache-line granularity over **host-physical**
//! addresses, which is where page-table nodes and application data ultimately
//! live. The model is mostly-inclusive (fills install the line at every
//! level), write-allocate, with true-LRU replacement per set — adequate for
//! reproducing hit/miss behaviour of PTE lines, which is the quantity the
//! paper's phenomenon depends on.

use serde::{Deserialize, Serialize};
use vmsim_types::HostPhysAddr;

use crate::config::HierarchyConfig;
use crate::counters::{AccessKind, MemCounters};
use crate::set_assoc::SetAssoc;

/// The level of the hierarchy that served an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HitLevel {
    /// Served by the private L1.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared last-level cache.
    Llc,
    /// Served by main memory (DRAM).
    Memory,
}

/// Outcome of a single access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Where the line was found.
    pub served_by: HitLevel,
    /// Cycles charged for the access.
    pub cycles: u64,
}

/// One core's private cache levels.
#[derive(Clone, Debug)]
struct CoreCaches {
    l1: SetAssoc<()>,
    l2: SetAssoc<()>,
}

/// The simulated cache hierarchy.
///
/// Lines are identified by their host-physical cache-line index. The unit
/// value stored per line keeps the model a pure presence/recency tracker.
#[derive(Clone, Debug)]
pub struct CacheHierarchy {
    cores: Vec<CoreCaches>,
    llc: SetAssoc<()>,
    config: HierarchyConfig,
    /// Per-core counters: apps are pinned to cores, so this gives
    /// per-application attribution of the paper's metrics.
    counters: Vec<MemCounters>,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: HierarchyConfig) -> Self {
        Self {
            cores: (0..config.cores)
                .map(|_| CoreCaches {
                    l1: SetAssoc::new(config.l1.sets, config.l1.ways),
                    l2: SetAssoc::new(config.l2.sets, config.l2.ways),
                })
                .collect(),
            llc: SetAssoc::new(config.llc.sets, config.llc.ways),
            counters: vec![MemCounters::default(); config.cores],
            config,
        }
    }

    /// The configuration this hierarchy was built with.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs one access from `core` to host-physical address `addr`,
    /// tagged `kind` for accounting. Missing levels are filled on the way
    /// back (write-allocate, mostly-inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: HostPhysAddr, kind: AccessKind) -> AccessResult {
        let line = addr.cache_line();
        let lat = self.config.latency;
        let cc = &mut self.cores[core];

        // Each level's lookup-and-fill is fused into one set scan: a miss
        // at a level always ends with the line filled there, whichever
        // lower level serves it, so the fill can ride the lookup's scan.
        let (served_by, cycles) = if cc.l1.access_fill(line, ()) {
            (HitLevel::L1, lat.l1)
        } else if cc.l2.access_fill(line, ()) {
            (HitLevel::L2, lat.l2)
        } else if self.llc.access_fill(line, ()) {
            (HitLevel::Llc, lat.llc)
        } else {
            (HitLevel::Memory, lat.memory)
        };

        self.counters[core].record(kind, served_by, cycles);
        AccessResult { served_by, cycles }
    }

    /// Index of the L1 set that `addr`'s line maps to on `core`.
    #[inline]
    pub fn l1_set_index(&self, core: usize, addr: HostPhysAddr) -> u32 {
        self.cores[core].l1.set_index(addr.cache_line())
    }

    /// Mutation epoch of `core`'s L1 set `index` (see
    /// [`SetAssoc::set_epoch_at`]). Unchanged-since-fill proves that a line
    /// observed as the set's MRU is still resident and still MRU, so its hit
    /// can be replayed via [`CacheHierarchy::replay_l1_hit`].
    #[inline]
    pub fn l1_set_epoch_at(&self, core: usize, index: u32) -> u64 {
        self.cores[core].l1.set_epoch_at(index)
    }

    /// Records the counter effect of an L1 hit whose LRU promotion is a
    /// proven no-op (line is MRU, set epoch unchanged since the proof was
    /// captured). Observable counters move exactly as in
    /// [`CacheHierarchy::access`]; cache state is untouched by construction.
    /// Returns the cycles charged.
    #[inline]
    pub fn replay_l1_hit(&mut self, core: usize, kind: AccessKind) -> u64 {
        let cycles = self.config.latency.l1;
        self.counters[core].record(kind, HitLevel::L1, cycles);
        cycles
    }

    /// Checks residency of `addr` for `core` without modifying any state.
    pub fn probe(&self, core: usize, addr: HostPhysAddr) -> HitLevel {
        let line = addr.cache_line();
        let cc = &self.cores[core];
        if cc.l1.peek(line).is_some() {
            HitLevel::L1
        } else if cc.l2.peek(line).is_some() {
            HitLevel::L2
        } else if self.llc.peek(line).is_some() {
            HitLevel::Llc
        } else {
            HitLevel::Memory
        }
    }

    /// Access counters aggregated across all cores.
    pub fn counters(&self) -> MemCounters {
        let mut total = MemCounters::default();
        for c in &self.counters {
            total.merge(c);
        }
        total
    }

    /// Access counters of one core (one pinned application).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_counters(&self, core: usize) -> &MemCounters {
        &self.counters[core]
    }

    /// Resets the counters (cache contents are preserved). Used to exclude a
    /// warm-up or allocation phase from measurement, as the paper does when
    /// it stops the co-runner before measuring (§3.3).
    pub fn reset_counters(&mut self) {
        for c in &mut self.counters {
            *c = MemCounters::default();
        }
    }

    /// Number of simulated cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Drops all cached lines on all cores and the LLC.
    pub fn flush_all(&mut self) {
        for cc in &mut self.cores {
            cc.l1.flush();
            cc.l2.flush();
        }
        self.llc.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HierarchyConfig;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(HierarchyConfig::tiny(2))
    }

    #[test]
    fn cold_access_goes_to_memory_then_hits_l1() {
        let mut h = hierarchy();
        let a = HostPhysAddr::new(0x1000);
        assert_eq!(h.access(0, a, AccessKind::Data).served_by, HitLevel::Memory);
        assert_eq!(h.access(0, a, AccessKind::Data).served_by, HitLevel::L1);
    }

    #[test]
    fn same_line_different_offset_hits() {
        let mut h = hierarchy();
        h.access(0, HostPhysAddr::new(0x1000), AccessKind::Data);
        // 0x1020 is in the same 64-byte line as 0x1000.
        assert_eq!(
            h.access(0, HostPhysAddr::new(0x1020), AccessKind::Data)
                .served_by,
            HitLevel::L1
        );
    }

    #[test]
    fn llc_is_shared_between_cores_but_l1_is_private() {
        let mut h = hierarchy();
        let a = HostPhysAddr::new(0x2000);
        h.access(0, a, AccessKind::Data);
        // Core 1 misses privately but hits the shared LLC.
        assert_eq!(h.access(1, a, AccessKind::Data).served_by, HitLevel::Llc);
        // And now core 1 has it in L1 too.
        assert_eq!(h.access(1, a, AccessKind::Data).served_by, HitLevel::L1);
    }

    #[test]
    fn latencies_are_ordered() {
        let mut h = hierarchy();
        let a = HostPhysAddr::new(0x3000);
        let mem = h.access(0, a, AccessKind::Data).cycles;
        let l1 = h.access(0, a, AccessKind::Data).cycles;
        assert!(mem > l1);
    }

    #[test]
    fn capacity_pressure_evicts() {
        let mut h = hierarchy();
        // Touch far more distinct lines than the tiny LLC holds.
        for i in 0..8192u64 {
            h.access(0, HostPhysAddr::new(i * 64), AccessKind::Data);
        }
        // The very first line is long gone.
        assert_eq!(
            h.access(0, HostPhysAddr::new(0), AccessKind::Data)
                .served_by,
            HitLevel::Memory
        );
    }

    #[test]
    fn counters_accumulate_by_kind() {
        let mut h = hierarchy();
        let a = HostPhysAddr::new(0x1000);
        h.access(0, a, AccessKind::host_pt(3));
        h.access(0, a, AccessKind::host_pt(3));
        let c = h.counters();
        assert_eq!(c.host_pt.accesses, 2);
        assert_eq!(c.host_pt.memory, 1);
        assert_eq!(c.host_pt.l1_hits, 1);
        assert_eq!(c.data.accesses, 0);
    }

    #[test]
    fn reset_counters_keeps_cache_contents() {
        let mut h = hierarchy();
        let a = HostPhysAddr::new(0x1000);
        h.access(0, a, AccessKind::Data);
        h.reset_counters();
        assert_eq!(h.counters().data.accesses, 0);
        // Contents survived: the next access is an L1 hit.
        assert_eq!(h.access(0, a, AccessKind::Data).served_by, HitLevel::L1);
    }

    #[test]
    fn probe_is_side_effect_free() {
        let mut h = hierarchy();
        let a = HostPhysAddr::new(0x9000);
        assert_eq!(h.probe(0, a), HitLevel::Memory);
        assert_eq!(h.counters().data.accesses, 0);
        h.access(0, a, AccessKind::Data);
        assert_eq!(h.probe(0, a), HitLevel::L1);
        assert_eq!(h.probe(1, a), HitLevel::Llc);
    }

    #[test]
    fn flush_all_empties_hierarchy() {
        let mut h = hierarchy();
        let a = HostPhysAddr::new(0x1000);
        h.access(0, a, AccessKind::Data);
        h.flush_all();
        assert_eq!(h.probe(0, a), HitLevel::Memory);
    }
}
