//! A generic set-associative array with true-LRU replacement.
//!
//! Used as the storage engine for data caches, TLBs, page-walk caches, and
//! the nested TLB. Keys are `u64` identifiers (cache-line index, page number,
//! or an ASID-tagged page number); the set is selected by the key's low bits.

/// One way (slot) of a set.
#[derive(Clone, Debug)]
struct Way<V> {
    key: u64,
    value: V,
    /// Monotonic timestamp of the last touch; smallest = LRU victim.
    last_used: u64,
}

/// A set-associative array mapping `u64` keys to values `V`, with true-LRU
/// replacement within each set.
///
/// # Examples
///
/// ```
/// use vmsim_cache::SetAssoc;
///
/// let mut sa: SetAssoc<u32> = SetAssoc::new(4, 2);
/// sa.insert(1, 10);
/// sa.insert(5, 50); // maps to the same set as key 1 (4 sets)
/// assert_eq!(sa.get(1), Some(&10));
/// sa.insert(9, 90); // evicts key 5 (LRU after the get of key 1)
/// assert_eq!(sa.get(5), None);
/// assert_eq!(sa.get(1), Some(&10));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssoc<V> {
    sets: Vec<Vec<Way<V>>>,
    ways: usize,
    set_mask: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> SetAssoc<V> {
    /// Creates an array with `sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "need at least one way");
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            set_mask: sets as u64 - 1,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    #[inline]
    fn set_of(&self, key: u64) -> usize {
        (key & self.set_mask) as usize
    }

    /// Looks up `key`, updating LRU state and hit/miss counters.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_of(key);
        match self.sets[set].iter_mut().find(|w| w.key == key) {
            Some(w) => {
                w.last_used = clock;
                self.hits += 1;
                Some(&w.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Checks for `key` without touching LRU state or counters.
    pub fn peek(&self, key: u64) -> Option<&V> {
        self.sets[self.set_of(key)]
            .iter()
            .find(|w| w.key == key)
            .map(|w| &w.value)
    }

    /// Inserts `key -> value`, evicting the LRU way of a full set.
    ///
    /// Returns the evicted `(key, value)` pair, if any. Inserting an existing
    /// key replaces its value (and returns the old one paired with the key).
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let set = self.set_of(key);
        let set_vec = &mut self.sets[set];
        if let Some(w) = set_vec.iter_mut().find(|w| w.key == key) {
            w.last_used = clock;
            let old = core::mem::replace(&mut w.value, value);
            return Some((key, old));
        }
        if set_vec.len() < ways {
            set_vec.push(Way {
                key,
                value,
                last_used: clock,
            });
            return None;
        }
        // Evict the least recently used way.
        let victim = set_vec
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.last_used)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let old = core::mem::replace(
            &mut set_vec[victim],
            Way {
                key,
                value,
                last_used: clock,
            },
        );
        self.evictions += 1;
        Some((old.key, old.value))
    }

    /// Removes `key` if present, returning its value.
    pub fn invalidate(&mut self, key: u64) -> Option<V> {
        let set = self.set_of(key);
        let pos = self.sets[set].iter().position(|w| w.key == key)?;
        Some(self.sets[set].swap_remove(pos).value)
    }

    /// Removes every entry for which `pred` returns true.
    pub fn invalidate_if(&mut self, mut pred: impl FnMut(u64, &V) -> bool) {
        for set in &mut self.sets {
            set.retain(|w| !pred(w.key, &w.value));
        }
    }

    /// Drops all entries (counters are preserved).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions (capacity/conflict replacements) since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets.len() * self.ways
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(8, 2);
        assert!(sa.get(42).is_none());
        sa.insert(42, 1);
        assert_eq!(sa.get(42), Some(&1));
        assert_eq!(sa.hits(), 1);
        assert_eq!(sa.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One set, two ways: keys 0, 8, 16 all collide.
        let mut sa: SetAssoc<&str> = SetAssoc::new(8, 2);
        sa.insert(0, "a");
        sa.insert(8, "b");
        sa.get(0); // make 8 the LRU
        let evicted = sa.insert(16, "c");
        assert_eq!(evicted, Some((8, "b")));
        assert!(sa.peek(0).is_some());
        assert!(sa.peek(16).is_some());
    }

    #[test]
    fn reinsert_updates_value_in_place() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        sa.insert(3, 1);
        let old = sa.insert(3, 2);
        assert_eq!(old, Some((3, 1)));
        assert_eq!(sa.get(3), Some(&2));
        assert_eq!(sa.len(), 1);
    }

    #[test]
    fn peek_does_not_disturb_lru_or_counters() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(1, 2);
        sa.insert(0, 0);
        sa.insert(1, 1);
        sa.peek(0); // would protect 0 if it updated LRU — it must not
        let h = sa.hits();
        sa.get(1); // now 0 is LRU
        assert_eq!(sa.hits(), h + 1);
        let evicted = sa.insert(2, 2);
        assert_eq!(evicted.map(|(k, _)| k), Some(0));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        sa.insert(7, 70);
        assert_eq!(sa.invalidate(7), Some(70));
        assert_eq!(sa.invalidate(7), None);
        assert!(sa.is_empty());
    }

    #[test]
    fn invalidate_if_filters_entries() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 4);
        for k in 0..8 {
            sa.insert(k, k * 10);
        }
        sa.invalidate_if(|k, _| k % 2 == 0);
        assert_eq!(sa.len(), 4);
        assert!(sa.peek(2).is_none());
        assert!(sa.peek(3).is_some());
    }

    #[test]
    fn flush_clears_everything() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        for k in 0..8 {
            sa.insert(k, k);
        }
        sa.flush();
        assert!(sa.is_empty());
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        for k in 0..100 {
            sa.insert(k, k);
        }
        assert!(sa.len() <= sa.capacity());
        assert_eq!(sa.capacity(), 8);
        assert!(sa.evictions() > 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_set_count() {
        SetAssoc::<u64>::new(3, 2);
    }
}
