//! A generic set-associative array with true-LRU replacement.
//!
//! Used as the storage engine for data caches, TLBs, page-walk caches, and
//! the nested TLB. Keys are `u64` identifiers (cache-line index, page number,
//! or an ASID-tagged page number); the set is selected by the key's low bits.
//!
//! Storage is a flat struct-of-arrays (keys / LRU stamps / values) with a
//! fixed `ways` stride per set, so the per-lookup work is one multiply and a
//! short contiguous scan — no per-set `Vec` indirection on the simulator's
//! hottest path. A stamp of 0 marks an empty slot; the clock starts at 0 and
//! is incremented before every stamp, so live stamps are always ≥ 1 and
//! unique. Unique stamps also make the LRU victim unique, so eviction
//! behaviour is identical to the previous per-set-`Vec` implementation.

/// A set-associative array mapping `u64` keys to values `V`, with true-LRU
/// replacement within each set.
///
/// # Examples
///
/// ```
/// use vmsim_cache::SetAssoc;
///
/// let mut sa: SetAssoc<u32> = SetAssoc::new(4, 2);
/// sa.insert(1, 10);
/// sa.insert(5, 50); // maps to the same set as key 1 (4 sets)
/// assert_eq!(sa.get(1), Some(&10));
/// sa.insert(9, 90); // evicts key 5 (LRU after the get of key 1)
/// assert_eq!(sa.get(5), None);
/// assert_eq!(sa.get(1), Some(&10));
/// ```
#[derive(Clone, Debug)]
pub struct SetAssoc<V> {
    /// Slot keys; meaningful only where `stamps` is non-zero.
    keys: Vec<u64>,
    /// Monotonic last-touch timestamps; 0 = empty slot, smallest = LRU.
    stamps: Vec<u64>,
    /// Slot values; `Some` exactly where `stamps` is non-zero.
    values: Vec<Option<V>>,
    ways: usize,
    set_mask: u64,
    clock: u64,
    len: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    /// Per-set mutation epochs: bumped whenever a set's contents or LRU
    /// order change (hit promotion, insert, invalidate, flush). A lookup
    /// that misses changes neither, so it does not bump. Memoization layers
    /// use "epoch unchanged since fill" as proof that a resident entry is
    /// still the set's MRU and that replaying its hit without touching LRU
    /// state is behaviour-preserving.
    set_epochs: Vec<u64>,
}

impl<V> SetAssoc<V> {
    /// Creates an array with `sets` sets of `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "need at least one way");
        let slots = sets * ways;
        Self {
            keys: vec![0; slots],
            stamps: vec![0; slots],
            values: (0..slots).map(|_| None).collect(),
            ways,
            set_mask: sets as u64 - 1,
            clock: 0,
            len: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            set_epochs: vec![0; sets],
        }
    }

    /// First slot of `key`'s set in the flat arrays.
    #[inline]
    fn base_of(&self, key: u64) -> usize {
        (key & self.set_mask) as usize * self.ways
    }

    /// Index of the set `key` maps to.
    #[inline]
    pub fn set_index(&self, key: u64) -> u32 {
        (key & self.set_mask) as u32
    }

    /// Current mutation epoch of the set `key` maps to (see `set_epochs`).
    #[inline]
    pub fn set_epoch(&self, key: u64) -> u64 {
        self.set_epochs[(key & self.set_mask) as usize]
    }

    /// Current mutation epoch of set `index` (for callers that captured the
    /// index at fill time).
    #[inline]
    pub fn set_epoch_at(&self, index: u32) -> u64 {
        self.set_epochs[index as usize]
    }

    /// Looks up `key`, updating LRU state and hit/miss counters.
    pub fn get(&mut self, key: u64) -> Option<&V> {
        let mut unused = usize::MAX;
        self.get_with_hint(key, &mut unused)
    }

    /// [`get`](Self::get) that checks `hint` (a slot index from a previous
    /// hit) before scanning the set — the L0 "last translation" fast path.
    /// Counter and LRU updates are identical to `get`; on a hit, `hint` is
    /// updated to the hit slot. A stale or out-of-range hint is safe: a live
    /// slot matching `key` can only exist inside `key`'s own set.
    pub fn get_with_hint(&mut self, key: u64, hint: &mut usize) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let set = (key & self.set_mask) as usize;
        let slot = *hint;
        if slot < self.stamps.len() && self.stamps[slot] != 0 && self.keys[slot] == key {
            self.stamps[slot] = clock;
            self.hits += 1;
            self.set_epochs[set] += 1;
            return self.values[slot].as_ref();
        }
        let base = set * self.ways;
        for slot in base..base + self.ways {
            if self.stamps[slot] != 0 && self.keys[slot] == key {
                self.stamps[slot] = clock;
                self.hits += 1;
                self.set_epochs[set] += 1;
                *hint = slot;
                return self.values[slot].as_ref();
            }
        }
        self.misses += 1;
        None
    }

    /// Fused lookup-and-fill: one set scan that either promotes a hit
    /// (exactly like [`SetAssoc::get`]) or fills the miss with `value`
    /// (exactly like a missing [`SetAssoc::get`] followed by
    /// [`SetAssoc::insert`]). Returns whether the key was already present.
    ///
    /// Observable behaviour — hit/miss/eviction counters, victim choice,
    /// LRU order, and set epochs — is identical to the two-call sequence;
    /// only the internal clock advances once instead of twice, which
    /// preserves the relative order of all stamps and therefore every
    /// future replacement decision.
    pub fn access_fill(&mut self, key: u64, value: V) -> bool {
        self.clock += 1;
        let clock = self.clock;
        let set = (key & self.set_mask) as usize;
        let base = set * self.ways;
        let mut empty = None;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for slot in base..base + self.ways {
            let stamp = self.stamps[slot];
            if stamp == 0 {
                empty.get_or_insert(slot);
            } else if self.keys[slot] == key {
                self.stamps[slot] = clock;
                self.hits += 1;
                self.set_epochs[set] += 1;
                return true;
            } else if stamp < victim_stamp {
                victim_stamp = stamp;
                victim = slot;
            }
        }
        self.misses += 1;
        self.set_epochs[set] += 1;
        let slot = match empty {
            Some(slot) => {
                self.len += 1;
                slot
            }
            None => {
                self.evictions += 1;
                victim
            }
        };
        self.keys[slot] = key;
        self.stamps[slot] = clock;
        self.values[slot] = Some(value);
        false
    }

    /// Checks for `key` without touching LRU state or counters.
    pub fn peek(&self, key: u64) -> Option<&V> {
        let base = self.base_of(key);
        (base..base + self.ways)
            .find(|&slot| self.stamps[slot] != 0 && self.keys[slot] == key)
            .and_then(|slot| self.values[slot].as_ref())
    }

    /// Inserts `key -> value`, evicting the LRU way of a full set.
    ///
    /// Returns the evicted `(key, value)` pair, if any. Inserting an existing
    /// key replaces its value (and returns the old one paired with the key).
    pub fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.clock += 1;
        let clock = self.clock;
        self.set_epochs[(key & self.set_mask) as usize] += 1;
        let base = self.base_of(key);
        // One pass over the set: find the key, an empty slot, and the LRU
        // victim simultaneously.
        let mut empty = None;
        let mut victim = base;
        let mut victim_stamp = u64::MAX;
        for slot in base..base + self.ways {
            let stamp = self.stamps[slot];
            if stamp == 0 {
                empty.get_or_insert(slot);
            } else if self.keys[slot] == key {
                self.stamps[slot] = clock;
                let old = self.values[slot].replace(value).expect("live slot");
                return Some((key, old));
            } else if stamp < victim_stamp {
                victim_stamp = stamp;
                victim = slot;
            }
        }
        if let Some(slot) = empty {
            self.keys[slot] = key;
            self.stamps[slot] = clock;
            self.values[slot] = Some(value);
            self.len += 1;
            return None;
        }
        let old_key = self.keys[victim];
        let old = self.values[victim].replace(value).expect("live victim");
        self.keys[victim] = key;
        self.stamps[victim] = clock;
        self.evictions += 1;
        Some((old_key, old))
    }

    /// Removes `key` if present, returning its value.
    pub fn invalidate(&mut self, key: u64) -> Option<V> {
        let base = self.base_of(key);
        for slot in base..base + self.ways {
            if self.stamps[slot] != 0 && self.keys[slot] == key {
                self.stamps[slot] = 0;
                self.len -= 1;
                self.set_epochs[(key & self.set_mask) as usize] += 1;
                return self.values[slot].take();
            }
        }
        None
    }

    /// Removes every entry for which `pred` returns true.
    pub fn invalidate_if(&mut self, mut pred: impl FnMut(u64, &V) -> bool) {
        for slot in 0..self.stamps.len() {
            if self.stamps[slot] == 0 {
                continue;
            }
            let keep = {
                let value = self.values[slot].as_ref().expect("live slot");
                !pred(self.keys[slot], value)
            };
            if !keep {
                self.stamps[slot] = 0;
                self.values[slot] = None;
                self.len -= 1;
                self.set_epochs[slot / self.ways] += 1;
            }
        }
    }

    /// Drops all entries (counters are preserved).
    pub fn flush(&mut self) {
        self.stamps.fill(0);
        for value in &mut self.values {
            *value = None;
        }
        self.len = 0;
        for epoch in &mut self.set_epochs {
            *epoch += 1;
        }
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Lookup hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Evictions (capacity/conflict replacements) since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(8, 2);
        assert!(sa.get(42).is_none());
        sa.insert(42, 1);
        assert_eq!(sa.get(42), Some(&1));
        assert_eq!(sa.hits(), 1);
        assert_eq!(sa.misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // One set, two ways: keys 0, 8, 16 all collide.
        let mut sa: SetAssoc<&str> = SetAssoc::new(8, 2);
        sa.insert(0, "a");
        sa.insert(8, "b");
        sa.get(0); // make 8 the LRU
        let evicted = sa.insert(16, "c");
        assert_eq!(evicted, Some((8, "b")));
        assert!(sa.peek(0).is_some());
        assert!(sa.peek(16).is_some());
    }

    #[test]
    fn reinsert_updates_value_in_place() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        sa.insert(3, 1);
        let old = sa.insert(3, 2);
        assert_eq!(old, Some((3, 1)));
        assert_eq!(sa.get(3), Some(&2));
        assert_eq!(sa.len(), 1);
    }

    #[test]
    fn peek_does_not_disturb_lru_or_counters() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(1, 2);
        sa.insert(0, 0);
        sa.insert(1, 1);
        sa.peek(0); // would protect 0 if it updated LRU — it must not
        let h = sa.hits();
        sa.get(1); // now 0 is LRU
        assert_eq!(sa.hits(), h + 1);
        let evicted = sa.insert(2, 2);
        assert_eq!(evicted.map(|(k, _)| k), Some(0));
    }

    #[test]
    fn invalidate_removes_entry() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        sa.insert(7, 70);
        assert_eq!(sa.invalidate(7), Some(70));
        assert_eq!(sa.invalidate(7), None);
        assert!(sa.is_empty());
    }

    #[test]
    fn invalidate_if_filters_entries() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 4);
        for k in 0..8 {
            sa.insert(k, k * 10);
        }
        sa.invalidate_if(|k, _| k % 2 == 0);
        assert_eq!(sa.len(), 4);
        assert!(sa.peek(2).is_none());
        assert!(sa.peek(3).is_some());
    }

    #[test]
    fn flush_clears_everything() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        for k in 0..8 {
            sa.insert(k, k);
        }
        sa.flush();
        assert!(sa.is_empty());
    }

    #[test]
    fn len_never_exceeds_capacity() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        for k in 0..100 {
            sa.insert(k, k);
        }
        assert!(sa.len() <= sa.capacity());
        assert_eq!(sa.capacity(), 8);
        assert!(sa.evictions() > 0);
    }

    #[test]
    fn hinted_get_matches_plain_get() {
        let mut plain: SetAssoc<u64> = SetAssoc::new(4, 2);
        let mut hinted: SetAssoc<u64> = SetAssoc::new(4, 2);
        let mut hint = usize::MAX;
        for k in [1u64, 5, 1, 9, 1, 5, 13, 1] {
            plain.insert(k, k * 2);
            hinted.insert(k, k * 2);
            assert_eq!(plain.get(1), hinted.get_with_hint(1, &mut hint));
        }
        assert_eq!(plain.hits(), hinted.hits());
        assert_eq!(plain.misses(), hinted.misses());
        assert_eq!(plain.evictions(), hinted.evictions());
    }

    #[test]
    fn stale_hint_is_verified_not_trusted() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        sa.insert(3, 30);
        let mut hint = usize::MAX;
        assert_eq!(sa.get_with_hint(3, &mut hint), Some(&30));
        sa.invalidate(3);
        // The hint now points at a dead slot; the lookup must miss.
        assert_eq!(sa.get_with_hint(3, &mut hint), None);
        sa.insert(7, 70);
        // And a hint for a different key's slot must not produce key 3.
        assert_eq!(sa.get_with_hint(3, &mut hint), None);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_set_count() {
        SetAssoc::<u64>::new(3, 2);
    }

    #[test]
    fn set_epochs_track_mutations_not_misses() {
        let mut sa: SetAssoc<u64> = SetAssoc::new(4, 2);
        let e0 = sa.set_epoch(0);
        assert!(sa.get(0).is_none()); // miss: neither contents nor LRU change
        assert_eq!(sa.set_epoch(0), e0);
        sa.insert(0, 1);
        let e1 = sa.set_epoch(0);
        assert!(e1 > e0);
        sa.get(0); // hit: LRU promotion counts as a mutation
        let e2 = sa.set_epoch(0);
        assert!(e2 > e1);
        // Activity in set 0 leaves other sets' epochs alone.
        let other = sa.set_epoch(1);
        sa.insert(4, 2); // key 4 -> set 0 again
        assert_eq!(sa.set_epoch(1), other);
        assert!(sa.set_epoch(0) > e2);
        // Invalidate and flush both bump.
        let e3 = sa.set_epoch(0);
        sa.invalidate(0);
        assert!(sa.set_epoch(0) > e3);
        let all_before: Vec<u64> = (0..4).map(|s| sa.set_epoch_at(s)).collect();
        sa.flush();
        for (s, before) in all_before.iter().enumerate() {
            assert!(sa.set_epoch_at(s as u32) > *before);
        }
        assert_eq!(sa.set_index(5), 1);
    }
}
