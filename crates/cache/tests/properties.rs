//! Property-based tests for the cache structures: LRU equivalence against a
//! reference model, and hierarchy-level invariants.

use std::collections::VecDeque;

use proptest::prelude::*;
use vmsim_cache::{
    AccessKind, CacheHierarchy, HierarchyConfig, HitLevel, SetAssoc, Tlb, TlbConfig,
};
use vmsim_types::{GuestVirtPage, HostFrame, HostPhysAddr};

/// Reference LRU model: one recency queue per set.
struct ModelLru {
    sets: Vec<VecDeque<u64>>,
    ways: usize,
    mask: u64,
}

impl ModelLru {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: (0..sets).map(|_| VecDeque::new()).collect(),
            ways,
            mask: sets as u64 - 1,
        }
    }

    fn get(&mut self, key: u64) -> bool {
        let set = &mut self.sets[(key & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&k| k == key) {
            let k = set.remove(pos).unwrap();
            set.push_back(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, key: u64) {
        let ways = self.ways;
        let set = &mut self.sets[(key & self.mask) as usize];
        if let Some(pos) = set.iter().position(|&k| k == key) {
            let k = set.remove(pos).unwrap();
            set.push_back(k);
            return;
        }
        if set.len() == ways {
            set.pop_front();
        }
        set.push_back(key);
    }
}

#[derive(Clone, Debug)]
enum Op {
    Get(u64),
    Insert(u64),
    Invalidate(u64),
}

/// Reference set-associative array: the per-set-`Vec` implementation the
/// flat struct-of-arrays `SetAssoc` replaced, kept verbatim so the rewrite
/// can be checked for exact equivalence — same hits/misses/evictions and the
/// same eviction victims, not just the same residency.
struct RefSetAssoc<V> {
    sets: Vec<Vec<(u64, V, u64)>>, // (key, value, last_used)
    ways: usize,
    mask: u64,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> RefSetAssoc<V> {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: (0..sets).map(|_| Vec::with_capacity(ways)).collect(),
            ways,
            mask: sets as u64 - 1,
            clock: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn get(&mut self, key: u64) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let set = &mut self.sets[(key & self.mask) as usize];
        match set.iter_mut().find(|w| w.0 == key) {
            Some(w) => {
                w.2 = clock;
                self.hits += 1;
                Some(&w.1)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    fn insert(&mut self, key: u64, value: V) -> Option<(u64, V)> {
        self.clock += 1;
        let clock = self.clock;
        let ways = self.ways;
        let set = &mut self.sets[(key & self.mask) as usize];
        if let Some(w) = set.iter_mut().find(|w| w.0 == key) {
            w.2 = clock;
            let old = core::mem::replace(&mut w.1, value);
            return Some((key, old));
        }
        if set.len() < ways {
            set.push((key, value, clock));
            return None;
        }
        let victim = set
            .iter()
            .enumerate()
            .min_by_key(|(_, w)| w.2)
            .map(|(i, _)| i)
            .expect("full set has a victim");
        let old = core::mem::replace(&mut set[victim], (key, value, clock));
        self.evictions += 1;
        Some((old.0, old.1))
    }

    fn invalidate(&mut self, key: u64) -> Option<V> {
        let set = &mut self.sets[(key & self.mask) as usize];
        let pos = set.iter().position(|w| w.0 == key)?;
        Some(set.swap_remove(pos).1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn set_assoc_matches_reference_lru(
        ops in prop::collection::vec(
            prop_oneof![
                (0u64..64).prop_map(Op::Get),
                (0u64..64).prop_map(Op::Insert),
                (0u64..64).prop_map(Op::Invalidate),
            ],
            1..300,
        )
    ) {
        let mut sa: SetAssoc<()> = SetAssoc::new(4, 3);
        let mut model = ModelLru::new(4, 3);
        for op in ops {
            match op {
                Op::Get(k) => {
                    prop_assert_eq!(sa.get(k).is_some(), model.get(k));
                }
                Op::Insert(k) => {
                    sa.insert(k, ());
                    model.insert(k);
                }
                Op::Invalidate(k) => {
                    let was_in_model = model.get(k); // also refreshes, but we remove next
                    if was_in_model {
                        let set = &mut model.sets[(k & model.mask) as usize];
                        let pos = set.iter().position(|&x| x == k).unwrap();
                        set.remove(pos);
                    }
                    prop_assert_eq!(sa.invalidate(k).is_some(), was_in_model);
                }
            }
            prop_assert!(sa.len() <= sa.capacity());
        }
        // Final residency agreement.
        for k in 0u64..64 {
            prop_assert_eq!(sa.peek(k).is_some(), model.get(k));
        }
    }

    #[test]
    fn flat_set_assoc_matches_previous_implementation(
        ops in prop::collection::vec(
            prop_oneof![
                (0u64..48).prop_map(Op::Get),
                (0u64..48).prop_map(Op::Insert),
                (0u64..48).prop_map(Op::Invalidate),
            ],
            1..400,
        )
    ) {
        // Exact equivalence with the old per-set-`Vec` storage: identical
        // return values (including which entry an insert evicts), identical
        // hit/miss/eviction counters, at every step — both through `get`
        // and through the hinted L0 fast path.
        let mut flat: SetAssoc<u64> = SetAssoc::new(8, 3);
        let mut hinted: SetAssoc<u64> = SetAssoc::new(8, 3);
        let mut reference: RefSetAssoc<u64> = RefSetAssoc::new(8, 3);
        let mut hint = usize::MAX;
        for op in ops {
            match op {
                Op::Get(k) => {
                    let want = reference.get(k).copied();
                    prop_assert_eq!(flat.get(k).copied(), want);
                    prop_assert_eq!(hinted.get_with_hint(k, &mut hint).copied(), want);
                }
                Op::Insert(k) => {
                    let want = reference.insert(k, k * 3);
                    prop_assert_eq!(flat.insert(k, k * 3), want.clone());
                    prop_assert_eq!(hinted.insert(k, k * 3), want);
                }
                Op::Invalidate(k) => {
                    let want = reference.invalidate(k);
                    prop_assert_eq!(flat.invalidate(k), want);
                    prop_assert_eq!(hinted.invalidate(k), want);
                }
            }
            prop_assert_eq!(flat.hits(), reference.hits);
            prop_assert_eq!(flat.misses(), reference.misses);
            prop_assert_eq!(flat.evictions(), reference.evictions);
            prop_assert_eq!(hinted.hits(), reference.hits);
            prop_assert_eq!(hinted.misses(), reference.misses);
            prop_assert_eq!(hinted.evictions(), reference.evictions);
        }
    }

    #[test]
    fn hierarchy_hit_levels_never_regress_without_interference(
        addrs in prop::collection::vec(0u64..0x8000, 1..50)
    ) {
        // Accessing the same address twice in a row from the same core must
        // not be served farther away the second time.
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny(1));
        for a in addrs {
            let addr = HostPhysAddr::new(a * 64);
            let first = h.access(0, addr, AccessKind::Data).served_by;
            let second = h.access(0, addr, AccessKind::Data).served_by;
            prop_assert!(second <= first, "{second:?} farther than {first:?}");
            prop_assert_eq!(second, HitLevel::L1);
        }
    }

    #[test]
    fn hierarchy_counters_balance(
        accesses in prop::collection::vec((0usize..2, 0u64..4096), 1..200)
    ) {
        let mut h = CacheHierarchy::new(HierarchyConfig::tiny(2));
        for (core, line) in &accesses {
            h.access(*core, HostPhysAddr::new(line * 64), AccessKind::Data);
        }
        let c = h.counters();
        prop_assert_eq!(c.data.accesses, accesses.len() as u64);
        prop_assert_eq!(
            c.data.l1_hits + c.data.l2_hits + c.data.llc_hits + c.data.memory,
            c.data.accesses
        );
        // Per-core counters sum to the aggregate.
        let per_core: u64 = (0..2).map(|i| h.core_counters(i).data.accesses).sum();
        prop_assert_eq!(per_core, c.data.accesses);
    }

    #[test]
    fn tlb_translations_are_faithful(
        entries in prop::collection::vec((0u64..4, 0u64..1024, 0u64..10_000), 1..100)
    ) {
        // Whatever survives in the TLB must translate to exactly what was
        // inserted — eviction may lose entries but never corrupt them.
        let mut tlb = Tlb::new(TlbConfig {
            l1_entries: 8,
            l1_ways: 2,
            l2_entries: 32,
            l2_ways: 4,
        });
        let mut truth = std::collections::HashMap::new();
        for (asid, vpn, hfn) in entries {
            tlb.insert(asid, GuestVirtPage::new(vpn), HostFrame::new(hfn));
            truth.insert((asid, vpn), hfn);
        }
        for ((asid, vpn), hfn) in truth {
            if let Some(got) = tlb.lookup(asid, GuestVirtPage::new(vpn)) {
                prop_assert_eq!(got, HostFrame::new(hfn));
            }
        }
    }
}
