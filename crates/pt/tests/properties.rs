//! Property-based tests for the radix page table: equivalence with a flat
//! map model under arbitrary operation sequences, and structural walk-path
//! invariants, including huge-page interactions.

use std::collections::HashMap;

use proptest::prelude::*;
use vmsim_pt::PageTable;
use vmsim_types::{GuestFrame, GuestVirtPage, Result, PT_ENTRIES, PT_LEVELS};

#[derive(Clone, Debug)]
enum Op {
    Map { vpn: u64, frame: u64 },
    Unmap { vpn: u64 },
    MapLarge { region: u64, chunk: u64 },
    Demote { region: u64 },
    UnmapLarge { region: u64 },
    Translate { vpn: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Keep vpns within 4 regions (2 MB each) so ops interact.
    prop_oneof![
        (0u64..2048, 0u64..10_000).prop_map(|(vpn, frame)| Op::Map { vpn, frame }),
        (0u64..2048).prop_map(|vpn| Op::Unmap { vpn }),
        (0u64..4, 0u64..16).prop_map(|(region, c)| Op::MapLarge {
            region,
            chunk: c * 512,
        }),
        (0u64..4).prop_map(|region| Op::Demote { region }),
        (0u64..4).prop_map(|region| Op::UnmapLarge { region }),
        (0u64..2048).prop_map(|vpn| Op::Translate { vpn }),
    ]
}

fn node_alloc() -> impl FnMut() -> Result<GuestFrame> {
    let mut next = 1_000_000u64;
    move || {
        next += 1;
        Ok(GuestFrame::new(next - 1))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn table_matches_flat_model(ops in prop::collection::vec(op_strategy(), 1..150)) {
        let mut alloc = node_alloc();
        let mut table: PageTable<GuestVirtPage, GuestFrame> =
            PageTable::new(&mut alloc).unwrap();
        // Model: vpn -> frame, plus which 2 MB regions are huge-mapped.
        let mut model: HashMap<u64, u64> = HashMap::new();
        let mut huge: HashMap<u64, u64> = HashMap::new(); // region -> chunk

        for op in ops {
            match op {
                Op::Map { vpn, frame } => {
                    let ok = table.map(GuestVirtPage::new(vpn), GuestFrame::new(frame), &mut alloc);
                    let expect_ok = !model.contains_key(&vpn) && !huge.contains_key(&(vpn / 512));
                    prop_assert_eq!(ok.is_ok(), expect_ok);
                    if expect_ok {
                        model.insert(vpn, frame);
                    }
                }
                Op::Unmap { vpn } => {
                    let ok = table.unmap(GuestVirtPage::new(vpn));
                    // 4 KB unmap succeeds only for 4 KB mappings; a page
                    // covered by a huge mapping must be demoted first.
                    let expect_ok =
                        model.contains_key(&vpn) && !huge.contains_key(&(vpn / 512));
                    prop_assert_eq!(ok.is_ok(), expect_ok);
                    if ok.is_ok() {
                        model.remove(&vpn);
                    }
                }
                Op::MapLarge { region, chunk } => {
                    let base = region * 512;
                    // Succeeds only if the region's slot is empty: no huge
                    // mapping AND no leaf node was ever created there.
                    let expect_ok =
                        !huge.contains_key(&region) && table_can_large(&table, base);
                    let ok = table.map_large(
                        GuestVirtPage::new(base),
                        GuestFrame::new(chunk),
                        &mut alloc,
                    );
                    prop_assert_eq!(ok.is_ok(), expect_ok, "map_large at {}", base);
                    if ok.is_ok() {
                        huge.insert(region, chunk);
                        for i in 0..512 {
                            model.insert(base + i, chunk + i);
                        }
                    }
                }
                Op::Demote { region } => {
                    let base = region * 512;
                    let ok = table.demote(GuestVirtPage::new(base), &mut alloc);
                    prop_assert_eq!(ok.is_ok(), huge.contains_key(&region));
                    // Translations unchanged; only the mapping kind changed.
                    huge.remove(&region);
                }
                Op::UnmapLarge { region } => {
                    let base = region * 512;
                    let ok = table.unmap_large(GuestVirtPage::new(base));
                    prop_assert_eq!(ok.is_ok(), huge.contains_key(&region));
                    if ok.is_ok() {
                        huge.remove(&region);
                        for i in 0..512 {
                            model.remove(&(base + i));
                        }
                    }
                }
                Op::Translate { vpn } => {
                    let got = table.translate(GuestVirtPage::new(vpn)).map(|f| f.raw());
                    prop_assert_eq!(got, model.get(&vpn).copied());
                }
            }
            prop_assert_eq!(table.stats().mapped_pages as usize, model.len());
            prop_assert_eq!(table.stats().huge_pages as usize, huge.len());
        }

        // Final sweep: every model entry translates, every hole does not.
        for (vpn, frame) in &model {
            prop_assert_eq!(
                table.translate(GuestVirtPage::new(*vpn)),
                Some(GuestFrame::new(*frame))
            );
        }
    }

    #[test]
    fn walk_paths_are_structurally_sound(vpns in prop::collection::vec(0u64..(1 << 27), 1..60)) {
        let mut alloc = node_alloc();
        let mut table: PageTable<GuestVirtPage, GuestFrame> =
            PageTable::new(&mut alloc).unwrap();
        for (i, vpn) in vpns.iter().enumerate() {
            if i % 2 == 0 {
                let _ = table.map(GuestVirtPage::new(*vpn), GuestFrame::new(i as u64), &mut alloc);
            }
        }
        for vpn in &vpns {
            let page = GuestVirtPage::new(*vpn);
            let path = table.walk_path(page);
            // Levels strictly ascend from the root.
            for (i, step) in path.steps().iter().enumerate() {
                prop_assert_eq!(step.level, i);
                prop_assert!(step.index < PT_ENTRIES);
            }
            prop_assert!(path.len() <= PT_LEVELS);
            prop_assert!(!path.is_empty());
            // Completeness agrees with translate().
            prop_assert_eq!(path.complete, table.translate(page).is_some());
            // The first step is always the root.
            prop_assert_eq!(path.steps()[0].node, table.root());
        }
    }
}

/// Mirrors `PageTable::can_map_large` for the model check.
fn table_can_large(table: &PageTable<GuestVirtPage, GuestFrame>, base: u64) -> bool {
    table.can_map_large(GuestVirtPage::new(base))
}
