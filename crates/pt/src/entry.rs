//! The 64-bit page-table entry format.

use core::marker::PhantomData;

use vmsim_types::PageNumber;

const PRESENT: u64 = 1 << 0;
const WRITABLE: u64 = 1 << 1;
const ACCESSED: u64 = 1 << 5;
const DIRTY: u64 = 1 << 6;
/// Page-size bit (x86 PS): set on a level-2 entry that maps a 2 MB page
/// directly instead of pointing at a leaf node.
const HUGE: u64 = 1 << 7;
/// Software-available bit used to mark copy-on-write mappings.
const COW: u64 = 1 << 9;
const FRAME_SHIFT: u32 = 12;
const FRAME_MASK: u64 = ((1u64 << 40) - 1) << FRAME_SHIFT;

/// An 8-byte page-table entry, typed by the frame space it points into.
///
/// Follows the x86-64 layout: low bits are flags, bits 12..52 hold the frame
/// number. The same format is used at every level (intermediate entries point
/// at the frame of the next node; leaf entries point at the mapped frame).
#[derive(PartialEq, Eq, Hash)]
pub struct Pte<F> {
    raw: u64,
    _space: PhantomData<F>,
}

// Manual Clone/Copy: the derive would bound `F: Copy`, but a PTE is a plain
// 64-bit word regardless of the frame marker type.
impl<F> Clone for Pte<F> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<F> Copy for Pte<F> {}

impl<F: PageNumber> Pte<F> {
    /// Creates a present, writable entry pointing at `frame`.
    pub fn present(frame: F) -> Self {
        Self {
            raw: PRESENT | WRITABLE | ((frame.to_raw() << FRAME_SHIFT) & FRAME_MASK),
            _space: PhantomData,
        }
    }

    /// The frame this entry points to.
    ///
    /// Meaningless if the entry is not present; callers should check
    /// [`Pte::is_present`] first.
    pub fn frame(self) -> F {
        F::from_raw((self.raw & FRAME_MASK) >> FRAME_SHIFT)
    }
}

impl<F> Pte<F> {
    /// The all-zero, non-present entry.
    pub const fn empty() -> Self {
        Self {
            raw: 0,
            _space: PhantomData,
        }
    }

    /// Reconstructs an entry from its raw 64-bit representation.
    pub const fn from_raw(raw: u64) -> Self {
        Self {
            raw,
            _space: PhantomData,
        }
    }

    /// Raw 64-bit representation.
    pub const fn raw(self) -> u64 {
        self.raw
    }

    /// Whether the entry holds a valid translation.
    pub const fn is_present(self) -> bool {
        self.raw & PRESENT != 0
    }

    /// Whether the mapping is writable.
    pub const fn is_writable(self) -> bool {
        self.raw & WRITABLE != 0
    }

    /// Returns a copy with the writable bit set to `w`.
    #[must_use]
    pub const fn with_writable(self, w: bool) -> Self {
        Self {
            raw: if w {
                self.raw | WRITABLE
            } else {
                self.raw & !WRITABLE
            },
            _space: PhantomData,
        }
    }

    /// Whether this is a huge-page (2 MB) mapping entry (x86 PS bit).
    pub const fn is_huge(self) -> bool {
        self.raw & HUGE != 0
    }

    /// Returns a copy with the huge-page bit set.
    #[must_use]
    pub const fn as_huge(self) -> Self {
        Self {
            raw: self.raw | HUGE,
            _space: PhantomData,
        }
    }

    /// Whether the entry is marked copy-on-write.
    pub const fn is_cow(self) -> bool {
        self.raw & COW != 0
    }

    /// Returns a copy with the COW bit set to `c`.
    #[must_use]
    pub const fn with_cow(self, c: bool) -> Self {
        Self {
            raw: if c { self.raw | COW } else { self.raw & !COW },
            _space: PhantomData,
        }
    }

    /// Whether the accessed bit is set.
    pub const fn is_accessed(self) -> bool {
        self.raw & ACCESSED != 0
    }

    /// Returns a copy with the accessed bit set.
    #[must_use]
    pub const fn touched(self) -> Self {
        Self {
            raw: self.raw | ACCESSED,
            _space: PhantomData,
        }
    }

    /// Whether the dirty bit is set.
    pub const fn is_dirty(self) -> bool {
        self.raw & DIRTY != 0
    }

    /// Returns a copy with the dirty bit set.
    #[must_use]
    pub const fn dirtied(self) -> Self {
        Self {
            raw: self.raw | DIRTY,
            _space: PhantomData,
        }
    }
}

impl<F> Default for Pte<F> {
    fn default() -> Self {
        Self::empty()
    }
}

impl<F> core::fmt::Debug for Pte<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if !self.is_present() {
            return write!(f, "Pte(absent)");
        }
        write!(
            f,
            "Pte(frame={:#x}{}{}{}{})",
            (self.raw & FRAME_MASK) >> FRAME_SHIFT,
            if self.is_writable() { " W" } else { "" },
            if self.is_cow() { " COW" } else { "" },
            if self.is_accessed() { " A" } else { "" },
            if self.is_dirty() { " D" } else { "" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_types::GuestFrame;

    #[test]
    fn empty_is_absent() {
        let e: Pte<GuestFrame> = Pte::empty();
        assert!(!e.is_present());
        assert_eq!(e.raw(), 0);
        assert_eq!(e, Pte::default());
    }

    #[test]
    fn present_round_trips_frame() {
        let e = Pte::present(GuestFrame::new(0x12345));
        assert!(e.is_present());
        assert!(e.is_writable());
        assert_eq!(e.frame(), GuestFrame::new(0x12345));
    }

    #[test]
    fn flag_builders_are_independent() {
        let e = Pte::present(GuestFrame::new(1))
            .with_cow(true)
            .with_writable(false)
            .touched()
            .dirtied();
        assert!(e.is_cow());
        assert!(!e.is_writable());
        assert!(e.is_accessed());
        assert!(e.is_dirty());
        assert_eq!(e.frame(), GuestFrame::new(1));
        let e2 = e.with_cow(false).with_writable(true);
        assert!(!e2.is_cow());
        assert!(e2.is_writable());
    }

    #[test]
    fn raw_round_trip() {
        let e = Pte::present(GuestFrame::new(42)).with_cow(true);
        let back: Pte<GuestFrame> = Pte::from_raw(e.raw());
        assert_eq!(back, e);
    }

    #[test]
    fn debug_is_informative() {
        let e = Pte::present(GuestFrame::new(7));
        let s = format!("{e:?}");
        assert!(s.contains("0x7"));
        assert!(format!("{:?}", Pte::<GuestFrame>::empty()).contains("absent"));
    }
}
