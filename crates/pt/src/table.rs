//! The 4-level radix page table.

use vmsim_types::{MemError, PageNumber, Result, PT_ENTRIES, PT_LEVELS};

use crate::entry::Pte;
use crate::walk::{WalkPath, WalkStep};

/// Node-count statistics of a page table.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PtStats {
    /// Nodes allocated at each level (index 0 = root level).
    pub nodes_per_level: [u64; PT_LEVELS],
    /// Currently present leaf mappings, counted in 4 KB pages (a huge
    /// mapping contributes 512).
    pub mapped_pages: u64,
    /// Currently present huge (2 MB) mappings.
    pub huge_pages: u64,
}

/// Where the translation path for a page ends.
enum SlotKind {
    /// The path has a non-present entry before reaching any translation.
    Hole,
    /// A level-2 huge-page entry covers the page.
    Huge {
        /// Arena index of the node holding the huge entry.
        node: usize,
        /// Entry index within that node.
        idx: usize,
    },
    /// The path reaches the leaf level.
    Leaf {
        /// Arena index of the leaf node.
        node: usize,
        /// Entry index within the leaf.
        idx: usize,
    },
}

impl PtStats {
    /// Total nodes across all levels.
    pub fn total_nodes(&self) -> u64 {
        self.nodes_per_level.iter().sum()
    }

    /// Merges another table's stats into this one (used to aggregate the
    /// per-process guest page tables into one machine-level view).
    pub fn merge(&mut self, other: &PtStats) {
        for (a, b) in self.nodes_per_level.iter_mut().zip(&other.nodes_per_level) {
            *a += b;
        }
        self.mapped_pages += other.mapped_pages;
        self.huge_pages += other.huge_pages;
    }
}

impl vmsim_obs::MetricSource for PtStats {
    fn source_name(&self) -> &'static str {
        "pt"
    }

    fn emit(&self, out: &mut Vec<vmsim_obs::Metric>) {
        for (level, &n) in self.nodes_per_level.iter().enumerate() {
            out.push(vmsim_obs::Metric::u64(format!("nodes_l{level}"), n));
        }
        out.push(vmsim_obs::Metric::u64("total_nodes", self.total_nodes()));
        out.push(vmsim_obs::Metric::u64("mapped_pages", self.mapped_pages));
        out.push(vmsim_obs::Metric::u64("huge_pages", self.huge_pages));
    }
}

/// Sentinel child index: the slot has no attached child node.
const NO_NODE: u32 = u32::MAX;

/// One radix node in the arena.
#[derive(Clone, Debug)]
struct Node<F> {
    /// Physical frame holding the node.
    frame: F,
    /// Radix level (0 = root).
    level: usize,
    /// The 512 entries.
    entries: Box<[Pte<F>]>,
    /// Arena index of the child node behind each entry. Empty for leaf
    /// nodes; [`NO_NODE`] for empty slots and huge (PS) entries.
    children: Box<[u32]>,
}

/// A 4-level radix page table mapping `V` pages to `F` frames, with nodes
/// materialized in `F`-space frames.
///
/// * Guest page table: `PageTable<GuestVirtPage, GuestFrame>` — nodes live in
///   guest-physical frames.
/// * Host page table: `PageTable<HostVirtPage, HostFrame>` — nodes live in
///   host-physical frames.
///
/// Node frames come from the caller-supplied allocator closure, so the
/// table's own memory competes for (simulated) physical memory exactly like
/// application data — PT node placement is *real* and walkable.
///
/// Nodes live in an index-based arena (`Vec`): tables only ever grow (Linux
/// keeps intermediate nodes for process lifetime, and nothing removes leaf
/// nodes), so arena indices are stable and every traversal is a pointer-free
/// index chase — no per-node hashing on the hot translate path, and cloning
/// a table for a snapshot is one contiguous `Vec` clone.
#[derive(Clone, Debug)]
pub struct PageTable<V, F> {
    /// Arena of nodes; index 0 is the root.
    nodes: Vec<Node<F>>,
    stats: PtStats,
    _virt: core::marker::PhantomData<V>,
}

impl<V: PageNumber, F: PageNumber> PageTable<V, F> {
    /// Creates an empty table, allocating the root node from `alloc`.
    ///
    /// # Errors
    ///
    /// Propagates allocation failure from `alloc`.
    pub fn new(mut alloc: impl FnMut() -> Result<F>) -> Result<Self> {
        let root = alloc()?;
        let mut table = Self {
            nodes: Vec::new(),
            stats: PtStats::default(),
            _virt: core::marker::PhantomData,
        };
        table.push_node(root, 0);
        Ok(table)
    }

    fn empty_entries() -> Box<[Pte<F>]> {
        vec![Pte::empty(); PT_ENTRIES as usize].into_boxed_slice()
    }

    /// Appends a node to the arena and returns its index.
    fn push_node(&mut self, frame: F, level: usize) -> usize {
        let children = if level == PT_LEVELS - 1 {
            Box::new([]) as Box<[u32]>
        } else {
            vec![NO_NODE; PT_ENTRIES as usize].into_boxed_slice()
        };
        self.nodes.push(Node {
            frame,
            level,
            entries: Self::empty_entries(),
            children,
        });
        self.stats.nodes_per_level[level] += 1;
        self.nodes.len() - 1
    }

    /// Frame of the root node.
    pub fn root(&self) -> F {
        self.nodes[0].frame
    }

    /// Node-count statistics.
    pub fn stats(&self) -> PtStats {
        self.stats
    }

    /// Maps `vpn` to a present, writable entry for `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyMapped`] if a present mapping exists, and
    /// propagates node-allocation failures.
    pub fn map(&mut self, vpn: V, frame: F, alloc: impl FnMut() -> Result<F>) -> Result<()> {
        self.map_entry(vpn, Pte::present(frame), alloc)
    }

    /// Maps `vpn` with an explicit entry (used for COW and custom flags).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyMapped`] if a present mapping exists, and
    /// propagates node-allocation failures.
    pub fn map_entry(
        &mut self,
        vpn: V,
        pte: Pte<F>,
        mut alloc: impl FnMut() -> Result<F>,
    ) -> Result<()> {
        let mut node = 0;
        for level in 0..PT_LEVELS - 1 {
            let idx = vmsim_types::page::pt_index(vpn.to_raw(), level) as usize;
            let entry = self.nodes[node].entries[idx];
            if entry.is_present() && entry.is_huge() {
                // A huge mapping already covers this page.
                return Err(MemError::AlreadyMapped { vpn: vpn.to_raw() });
            }
            node = if entry.is_present() {
                self.nodes[node].children[idx] as usize
            } else {
                let frame = alloc()?;
                let child = self.push_node(frame, level + 1);
                let parent = &mut self.nodes[node];
                parent.entries[idx] = Pte::present(frame);
                parent.children[idx] = child as u32;
                child
            };
        }
        let leaf_idx = vmsim_types::page::pt_index(vpn.to_raw(), PT_LEVELS - 1) as usize;
        let leaf = &mut self.nodes[node].entries;
        if leaf[leaf_idx].is_present() {
            return Err(MemError::AlreadyMapped { vpn: vpn.to_raw() });
        }
        leaf[leaf_idx] = pte;
        self.stats.mapped_pages += 1;
        Ok(())
    }

    /// Removes the mapping for `vpn`, returning the old entry.
    ///
    /// Intermediate nodes are kept (as Linux does for process lifetime).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if no present mapping exists.
    pub fn unmap(&mut self, vpn: V) -> Result<Pte<F>> {
        let (node, idx) = self
            .leaf_slot(vpn)
            .ok_or(MemError::Unmapped { vpn: vpn.to_raw() })?;
        let leaf = &mut self.nodes[node].entries;
        let old = leaf[idx];
        if !old.is_present() {
            return Err(MemError::Unmapped { vpn: vpn.to_raw() });
        }
        leaf[idx] = Pte::empty();
        self.stats.mapped_pages -= 1;
        Ok(old)
    }

    /// Removes the 4 KB mapping for `vpn` if one is present, returning the
    /// old entry. A single descent replacing the `lookup` + `unmap` pair on
    /// hot teardown paths; huge mappings must be demoted first.
    pub fn take(&mut self, vpn: V) -> Option<Pte<F>> {
        let (node, idx) = self.leaf_slot(vpn)?;
        let leaf = &mut self.nodes[node].entries;
        let old = leaf[idx];
        if !old.is_present() {
            return None;
        }
        leaf[idx] = Pte::empty();
        self.stats.mapped_pages -= 1;
        Some(old)
    }

    /// Rewrites the present entry translating `vpn` through `f`. For huge
    /// mappings the PS bit is preserved regardless of what `f` returns.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if no present mapping exists.
    pub fn update(&mut self, vpn: V, f: impl FnOnce(Pte<F>) -> Pte<F>) -> Result<Pte<F>> {
        let (node, idx, huge) = match self.slot_of(vpn) {
            SlotKind::Hole => return Err(MemError::Unmapped { vpn: vpn.to_raw() }),
            SlotKind::Huge { node, idx } => (node, idx, true),
            SlotKind::Leaf { node, idx } => (node, idx, false),
        };
        let entries = &mut self.nodes[node].entries;
        if !entries[idx].is_present() {
            return Err(MemError::Unmapped { vpn: vpn.to_raw() });
        }
        entries[idx] = f(entries[idx]);
        if huge {
            entries[idx] = entries[idx].as_huge();
        }
        Ok(entries[idx])
    }

    /// Looks up the entry translating `vpn`, if present. For a page covered
    /// by a huge mapping this is the level-2 PS entry, whose frame is the
    /// 2 MB chunk base (use [`PageTable::translate`] for the page's frame).
    pub fn lookup(&self, vpn: V) -> Option<Pte<F>> {
        match self.slot_of(vpn) {
            SlotKind::Hole => None,
            SlotKind::Huge { node, idx } | SlotKind::Leaf { node, idx } => {
                let pte = self.nodes[node].entries[idx];
                pte.is_present().then_some(pte)
            }
        }
    }

    /// Translates `vpn` to its mapped 4 KB frame, if present (huge mappings
    /// resolve to `chunk_base + offset`).
    pub fn translate(&self, vpn: V) -> Option<F> {
        let pte = self.lookup(vpn)?;
        if pte.is_huge() {
            let offset = vpn.to_raw() & (PT_ENTRIES - 1);
            Some(F::from_raw(pte.frame().to_raw() + offset))
        } else {
            Some(pte.frame())
        }
    }

    /// Whether `vpn` is covered by a huge (2 MB) mapping.
    pub fn is_huge_mapping(&self, vpn: V) -> bool {
        matches!(self.slot_of(vpn), SlotKind::Huge { .. })
    }

    /// Frame of the leaf node that holds (or would hold) `vpn`'s PTE, if the
    /// path down to the leaf level exists.
    pub fn leaf_node(&self, vpn: V) -> Option<F> {
        self.leaf_slot(vpn).map(|(node, _)| self.nodes[node].frame)
    }

    /// Raw physical byte address of the entry translating `vpn` (the leaf
    /// PTE, or the level-2 PS entry for huge mappings), if the path exists.
    /// This is the address whose cache line the fragmentation metric counts.
    pub fn pte_addr_raw(&self, vpn: V) -> Option<u64> {
        match self.slot_of(vpn) {
            SlotKind::Hole => None,
            SlotKind::Huge { node, idx } | SlotKind::Leaf { node, idx } => Some(
                (self.nodes[node].frame.to_raw() << vmsim_types::PAGE_SHIFT)
                    + idx as u64 * vmsim_types::PTE_SIZE,
            ),
        }
    }

    /// Whether a huge mapping could be installed over the aligned 2 MB
    /// region containing `vpn` (the level-2 slot is empty: no huge mapping,
    /// no leaf node — even an empty one — occupies it).
    pub fn can_map_large(&self, vpn: V) -> bool {
        let mut node = 0;
        for level in 0..PT_LEVELS - 1 {
            let idx = vmsim_types::page::pt_index(vpn.to_raw(), level) as usize;
            let entry = self.nodes[node].entries[idx];
            if !entry.is_present() {
                return true;
            }
            if entry.is_huge() || level == PT_LEVELS - 2 {
                return false;
            }
            node = self.nodes[node].children[idx] as usize;
        }
        unreachable!("loop returns by level 2")
    }

    /// Maps an aligned 2 MB region (512 pages) with one huge entry, as a
    /// THP-style allocation does.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if `base_vpn` or `chunk` is not
    /// 512-aligned, [`MemError::AlreadyMapped`] if anything in the region is
    /// mapped, and propagates node-allocation failures.
    pub fn map_large(
        &mut self,
        base_vpn: V,
        chunk: F,
        mut alloc: impl FnMut() -> Result<F>,
    ) -> Result<()> {
        if !base_vpn.to_raw().is_multiple_of(PT_ENTRIES) {
            return Err(MemError::OutOfRange {
                value: base_vpn.to_raw(),
                limit: PT_ENTRIES,
            });
        }
        if !chunk.to_raw().is_multiple_of(PT_ENTRIES) {
            return Err(MemError::OutOfRange {
                value: chunk.to_raw(),
                limit: PT_ENTRIES,
            });
        }
        // Build the path down to level 2.
        let mut node = 0;
        for level in 0..PT_LEVELS - 2 {
            let idx = vmsim_types::page::pt_index(base_vpn.to_raw(), level) as usize;
            let entry = self.nodes[node].entries[idx];
            if entry.is_present() && entry.is_huge() {
                return Err(MemError::AlreadyMapped {
                    vpn: base_vpn.to_raw(),
                });
            }
            node = if entry.is_present() {
                self.nodes[node].children[idx] as usize
            } else {
                let frame = alloc()?;
                let child = self.push_node(frame, level + 1);
                let parent = &mut self.nodes[node];
                parent.entries[idx] = Pte::present(frame);
                parent.children[idx] = child as u32;
                child
            };
        }
        let idx = vmsim_types::page::pt_index(base_vpn.to_raw(), PT_LEVELS - 2) as usize;
        let slot = &mut self.nodes[node].entries[idx];
        if slot.is_present() {
            // Either a huge mapping or a populated (or once-populated) leaf
            // node occupies the slot.
            return Err(MemError::AlreadyMapped {
                vpn: base_vpn.to_raw(),
            });
        }
        *slot = Pte::present(chunk).as_huge();
        self.stats.mapped_pages += PT_ENTRIES;
        self.stats.huge_pages += 1;
        Ok(())
    }

    /// Removes the huge mapping covering `vpn`, returning its PS entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if no huge mapping covers `vpn`.
    pub fn unmap_large(&mut self, vpn: V) -> Result<Pte<F>> {
        let SlotKind::Huge { node, idx } = self.slot_of(vpn) else {
            return Err(MemError::Unmapped { vpn: vpn.to_raw() });
        };
        let slot = &mut self.nodes[node].entries[idx];
        let old = *slot;
        *slot = Pte::empty();
        self.stats.mapped_pages -= PT_ENTRIES;
        self.stats.huge_pages -= 1;
        Ok(old)
    }

    /// Demotes the huge mapping covering `vpn` into 512 individual 4 KB
    /// mappings over the same frames (THP splitting). Flags (writable/COW)
    /// are inherited by every small entry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if no huge mapping covers `vpn`, and
    /// propagates allocation failure for the new leaf node.
    pub fn demote(&mut self, vpn: V, mut alloc: impl FnMut() -> Result<F>) -> Result<()> {
        let SlotKind::Huge { node, idx } = self.slot_of(vpn) else {
            return Err(MemError::Unmapped { vpn: vpn.to_raw() });
        };
        let huge = self.nodes[node].entries[idx];
        let frame = alloc()?;
        let leaf = self.push_node(frame, PT_LEVELS - 1);
        for (i, e) in self.nodes[leaf].entries.iter_mut().enumerate() {
            *e = Pte::present(F::from_raw(huge.frame().to_raw() + i as u64))
                .with_writable(huge.is_writable())
                .with_cow(huge.is_cow());
        }
        let parent = &mut self.nodes[node];
        parent.entries[idx] = Pte::present(frame);
        parent.children[idx] = leaf as u32;
        self.stats.huge_pages -= 1;
        Ok(())
    }

    /// Walks the radix tree for `vpn`, recording the entry consulted at each
    /// level. Stops early at the first non-present intermediate entry.
    pub fn walk_path(&self, vpn: V) -> WalkPath<F> {
        self.walk_translate(vpn).0
    }

    /// Single-descent combination of [`PageTable::walk_path`] and
    /// [`PageTable::translate`]: the recorded path plus the mapped 4 KB
    /// frame (`None` when the walk is incomplete).
    pub fn walk_translate(&self, vpn: V) -> (WalkPath<F>, Option<F>) {
        let mut path = WalkPath::new();
        let mut node = 0;
        for level in 0..PT_LEVELS {
            let idx = vmsim_types::page::pt_index(vpn.to_raw(), level);
            path.push(WalkStep {
                level,
                node: self.nodes[node].frame,
                index: idx,
            });
            let entry = self.nodes[node].entries[idx as usize];
            if !entry.is_present() {
                return (path, None);
            }
            if entry.is_huge() {
                // The PS entry is the translation: a huge walk is one level
                // shorter than a 4 KB walk.
                path.complete = true;
                let offset = vpn.to_raw() & (PT_ENTRIES - 1);
                return (path, Some(F::from_raw(entry.frame().to_raw() + offset)));
            }
            if level < PT_LEVELS - 1 {
                node = self.nodes[node].children[idx as usize] as usize;
            } else {
                path.complete = true;
                return (path, Some(entry.frame()));
            }
        }
        unreachable!("loop returns at the leaf level")
    }

    /// Iterates over the frames of all allocated nodes with their levels.
    pub fn node_frames(&self) -> impl Iterator<Item = (F, usize)> + '_ {
        self.nodes.iter().map(|n| (n.frame, n.level))
    }

    fn slot_of(&self, vpn: V) -> SlotKind {
        let mut node = 0;
        for level in 0..PT_LEVELS - 1 {
            let idx = vmsim_types::page::pt_index(vpn.to_raw(), level) as usize;
            let entry = self.nodes[node].entries[idx];
            if !entry.is_present() {
                return SlotKind::Hole;
            }
            if entry.is_huge() {
                return SlotKind::Huge { node, idx };
            }
            node = self.nodes[node].children[idx] as usize;
        }
        let idx = vmsim_types::page::pt_index(vpn.to_raw(), PT_LEVELS - 1) as usize;
        SlotKind::Leaf { node, idx }
    }

    fn leaf_slot(&self, vpn: V) -> Option<(usize, usize)> {
        match self.slot_of(vpn) {
            SlotKind::Leaf { node, idx } => Some((node, idx)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_types::{GuestFrame, GuestVirtPage, GROUP_PAGES};

    /// A bump allocator for node frames starting at a high frame number so
    /// node frames never collide with data frames used in tests.
    fn bump(start: u64) -> impl FnMut() -> Result<GuestFrame> {
        let mut next = start;
        move || {
            next += 1;
            Ok(GuestFrame::new(next - 1))
        }
    }

    fn table() -> PageTable<GuestVirtPage, GuestFrame> {
        PageTable::new(bump(1000)).unwrap()
    }

    #[test]
    fn new_table_has_only_root() {
        let t = table();
        assert_eq!(t.stats().total_nodes(), 1);
        assert_eq!(t.stats().mapped_pages, 0);
        assert_eq!(t.root(), GuestFrame::new(1000));
    }

    #[test]
    fn map_translate_round_trip() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map(GuestVirtPage::new(0x42), GuestFrame::new(7), &mut alloc)
            .unwrap();
        assert_eq!(
            t.translate(GuestVirtPage::new(0x42)),
            Some(GuestFrame::new(7))
        );
        assert_eq!(t.translate(GuestVirtPage::new(0x43)), None);
        // Mapping built 3 intermediate nodes.
        assert_eq!(t.stats().total_nodes(), 4);
        assert_eq!(t.stats().mapped_pages, 1);
    }

    #[test]
    fn double_map_is_rejected() {
        let mut t = table();
        let mut alloc = bump(2000);
        let vpn = GuestVirtPage::new(5);
        t.map(vpn, GuestFrame::new(1), &mut alloc).unwrap();
        assert_eq!(
            t.map(vpn, GuestFrame::new(2), &mut alloc),
            Err(MemError::AlreadyMapped { vpn: 5 })
        );
    }

    #[test]
    fn unmap_then_remap() {
        let mut t = table();
        let mut alloc = bump(2000);
        let vpn = GuestVirtPage::new(5);
        t.map(vpn, GuestFrame::new(1), &mut alloc).unwrap();
        let old = t.unmap(vpn).unwrap();
        assert_eq!(old.frame(), GuestFrame::new(1));
        assert_eq!(t.translate(vpn), None);
        assert_eq!(t.stats().mapped_pages, 0);
        t.map(vpn, GuestFrame::new(2), &mut alloc).unwrap();
        assert_eq!(t.translate(vpn), Some(GuestFrame::new(2)));
    }

    #[test]
    fn unmap_missing_fails() {
        let mut t = table();
        assert_eq!(
            t.unmap(GuestVirtPage::new(9)),
            Err(MemError::Unmapped { vpn: 9 })
        );
    }

    #[test]
    fn update_rewrites_flags() {
        let mut t = table();
        let mut alloc = bump(2000);
        let vpn = GuestVirtPage::new(5);
        t.map(vpn, GuestFrame::new(1), &mut alloc).unwrap();
        let new = t
            .update(vpn, |p| p.with_cow(true).with_writable(false))
            .unwrap();
        assert!(new.is_cow());
        assert!(!new.is_writable());
        assert!(t.lookup(vpn).unwrap().is_cow());
    }

    #[test]
    fn neighbouring_pages_share_leaf_node() {
        let mut t = table();
        let mut alloc = bump(2000);
        for i in 0..GROUP_PAGES {
            t.map(GuestVirtPage::new(i), GuestFrame::new(100 + i), &mut alloc)
                .unwrap();
        }
        // 8 mappings in the same group: still only 4 nodes total.
        assert_eq!(t.stats().total_nodes(), 4);
        let leaf = t.leaf_node(GuestVirtPage::new(0)).unwrap();
        for i in 1..GROUP_PAGES {
            assert_eq!(t.leaf_node(GuestVirtPage::new(i)), Some(leaf));
        }
    }

    #[test]
    fn pte_addrs_of_group_share_cache_line() {
        // The geometric fact behind the whole paper: the 8 leaf PTEs of an
        // aligned group fall in one 64-byte line of the leaf node.
        let mut t = table();
        let mut alloc = bump(2000);
        for i in 0..GROUP_PAGES {
            t.map(GuestVirtPage::new(i), GuestFrame::new(100 + i), &mut alloc)
                .unwrap();
        }
        let lines: std::collections::HashSet<u64> = (0..GROUP_PAGES)
            .map(|i| t.pte_addr_raw(GuestVirtPage::new(i)).unwrap() / 64)
            .collect();
        assert_eq!(lines.len(), 1);
    }

    #[test]
    fn walk_path_is_complete_for_mapped_pages() {
        let mut t = table();
        let mut alloc = bump(2000);
        let vpn = GuestVirtPage::new(0x42);
        t.map(vpn, GuestFrame::new(7), &mut alloc).unwrap();
        let path = t.walk_path(vpn);
        assert!(path.complete);
        assert_eq!(path.len(), 4);
        assert_eq!(path.steps()[0].node, t.root());
        assert_eq!(path.leaf().unwrap().index, 0x42);
    }

    #[test]
    fn walk_path_stops_at_first_hole() {
        let t = table();
        let path = t.walk_path(GuestVirtPage::new(0x42));
        assert!(!path.complete);
        assert_eq!(path.len(), 1);
        assert!(path.leaf().is_none());
    }

    #[test]
    fn distant_pages_use_distinct_subtrees() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map(GuestVirtPage::new(0), GuestFrame::new(1), &mut alloc)
            .unwrap();
        // A page 512^3 away shares only the root.
        t.map(
            GuestVirtPage::new(512 * 512 * 512),
            GuestFrame::new(2),
            &mut alloc,
        )
        .unwrap();
        assert_eq!(t.stats().total_nodes(), 7);
        assert_eq!(t.stats().nodes_per_level, [1, 2, 2, 2]);
    }

    #[test]
    fn node_frames_reports_all_nodes() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map(GuestVirtPage::new(0), GuestFrame::new(1), &mut alloc)
            .unwrap();
        let nodes: Vec<_> = t.node_frames().collect();
        assert_eq!(nodes.len(), 4);
        assert!(nodes.iter().any(|&(f, l)| f == t.root() && l == 0));
    }

    #[test]
    fn huge_map_translate_round_trip() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map_large(GuestVirtPage::new(512), GuestFrame::new(1024), &mut alloc)
            .unwrap();
        assert!(t.is_huge_mapping(GuestVirtPage::new(512)));
        assert!(t.is_huge_mapping(GuestVirtPage::new(1023)));
        assert!(!t.is_huge_mapping(GuestVirtPage::new(1024)));
        // Every covered page translates to chunk base + offset.
        assert_eq!(
            t.translate(GuestVirtPage::new(512 + 37)),
            Some(GuestFrame::new(1024 + 37))
        );
        assert_eq!(t.stats().huge_pages, 1);
        assert_eq!(t.stats().mapped_pages, 512);
        // Only 3 nodes (root + 2 intermediates): huge walks are shorter.
        assert_eq!(t.stats().total_nodes(), 3);
    }

    #[test]
    fn huge_walk_path_is_three_levels() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map_large(GuestVirtPage::new(0), GuestFrame::new(512), &mut alloc)
            .unwrap();
        let path = t.walk_path(GuestVirtPage::new(5));
        assert!(path.complete);
        assert_eq!(path.len(), 3);
        assert!(path.leaf().is_none(), "PS entry is not a level-3 leaf");
    }

    #[test]
    fn huge_map_alignment_enforced() {
        let mut t = table();
        let mut alloc = bump(2000);
        assert!(matches!(
            t.map_large(GuestVirtPage::new(5), GuestFrame::new(512), &mut alloc),
            Err(MemError::OutOfRange { .. })
        ));
        assert!(matches!(
            t.map_large(GuestVirtPage::new(512), GuestFrame::new(5), &mut alloc),
            Err(MemError::OutOfRange { .. })
        ));
    }

    #[test]
    fn huge_and_small_mappings_conflict() {
        let mut t = table();
        let mut alloc = bump(2000);
        // Small page inside the region blocks a huge mapping.
        t.map(GuestVirtPage::new(512 + 3), GuestFrame::new(1), &mut alloc)
            .unwrap();
        assert!(matches!(
            t.map_large(GuestVirtPage::new(512), GuestFrame::new(1024), &mut alloc),
            Err(MemError::AlreadyMapped { .. })
        ));
        // And a huge mapping blocks small maps inside it.
        t.map_large(GuestVirtPage::new(1024), GuestFrame::new(2048), &mut alloc)
            .unwrap();
        assert!(matches!(
            t.map(GuestVirtPage::new(1024 + 9), GuestFrame::new(2), &mut alloc),
            Err(MemError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn unmap_large_round_trip() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map_large(GuestVirtPage::new(512), GuestFrame::new(1024), &mut alloc)
            .unwrap();
        let old = t.unmap_large(GuestVirtPage::new(700)).unwrap();
        assert_eq!(old.frame(), GuestFrame::new(1024));
        assert!(old.is_huge());
        assert_eq!(t.translate(GuestVirtPage::new(512)), None);
        assert_eq!(t.stats().mapped_pages, 0);
        assert_eq!(t.stats().huge_pages, 0);
        // Region is reusable for small pages now.
        t.map(GuestVirtPage::new(512), GuestFrame::new(7), &mut alloc)
            .unwrap();
    }

    #[test]
    fn demote_preserves_translations_and_flags() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map_large(GuestVirtPage::new(512), GuestFrame::new(1024), &mut alloc)
            .unwrap();
        t.update(GuestVirtPage::new(512), |p| {
            p.with_cow(true).with_writable(false)
        })
        .unwrap();
        t.demote(GuestVirtPage::new(512), &mut alloc).unwrap();
        assert!(!t.is_huge_mapping(GuestVirtPage::new(512)));
        assert_eq!(t.stats().huge_pages, 0);
        assert_eq!(t.stats().mapped_pages, 512);
        for off in [0u64, 13, 511] {
            let pte = t.lookup(GuestVirtPage::new(512 + off)).unwrap();
            assert_eq!(pte.frame(), GuestFrame::new(1024 + off));
            assert!(pte.is_cow());
            assert!(!pte.is_writable());
            assert!(!pte.is_huge());
        }
        // Individual pages can now be unmapped.
        t.unmap(GuestVirtPage::new(512 + 13)).unwrap();
        assert_eq!(t.stats().mapped_pages, 511);
    }

    #[test]
    fn huge_pte_addr_is_the_ps_entry() {
        let mut t = table();
        let mut alloc = bump(2000);
        t.map_large(GuestVirtPage::new(0), GuestFrame::new(512), &mut alloc)
            .unwrap();
        // All 512 pages share one translation entry (and its cache line).
        let a = t.pte_addr_raw(GuestVirtPage::new(0)).unwrap();
        let b = t.pte_addr_raw(GuestVirtPage::new(511)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn allocation_failure_propagates() {
        let mut t = table();
        let mut failing = || Err(MemError::OutOfMemory { order: 0 });
        assert_eq!(
            t.map(GuestVirtPage::new(1), GuestFrame::new(1), &mut failing),
            Err(MemError::OutOfMemory { order: 0 })
        );
    }
}
