//! Radix page tables materialized in simulated physical frames.
//!
//! Page tables in this workspace are not abstract maps: each node is a real
//! 4 KB frame (allocated from the owning OS's buddy allocator) holding 512
//! 8-byte entries, so every entry has a concrete physical address and a
//! concrete 64-byte cache line. That is what lets the paper's phenomenon
//! *emerge* in the simulator: the census of cache lines touched by host-PTE
//! accesses (the host-PT fragmentation metric of §3.2) is computed from real
//! entry addresses, and the cache model sees the same addresses the hardware
//! page walker would.
//!
//! The crate provides:
//!
//! * [`Pte`] — the 64-bit entry format (present/writable/COW bits + frame);
//! * [`PageTable`] — a 4-level radix tree generic over the virtual-page and
//!   frame newtypes of its address space (guest PT: guest-virtual →
//!   guest-physical; host PT: host-virtual → host-physical);
//! * [`walk`] — the ordered list of entry addresses a hardware walker
//!   touches for a translation, consumed by the nested-walk engine in
//!   `vmsim-os`;
//! * [`footprint`] — cache-line census helpers behind the host-PT
//!   fragmentation metric.
//!
//! # Examples
//!
//! ```
//! use vmsim_pt::PageTable;
//! use vmsim_types::{GuestFrame, GuestVirtPage};
//!
//! # fn main() -> Result<(), vmsim_types::MemError> {
//! let mut next = 100u64; // toy frame allocator for PT nodes
//! let mut alloc = || {
//!     next += 1;
//!     Ok(GuestFrame::new(next))
//! };
//! let mut pt: PageTable<GuestVirtPage, GuestFrame> = PageTable::new(&mut alloc)?;
//! pt.map(GuestVirtPage::new(0x42), GuestFrame::new(7), &mut alloc)?;
//! assert_eq!(pt.translate(GuestVirtPage::new(0x42)), Some(GuestFrame::new(7)));
//! # Ok(())
//! # }
//! ```

pub mod entry;
pub mod footprint;
pub mod table;
pub mod walk;

pub use entry::Pte;
pub use footprint::{group_line_census, LineCensus};
pub use table::{PageTable, PtStats};
pub use walk::{WalkPath, WalkStep};
