//! Cache-line census helpers behind the host-PT fragmentation metric.
//!
//! The paper (§3.2) characterizes host-PT fragmentation as *"the average
//! number of cache blocks with hPTEs that correspond to gPTEs packed into a
//! single cache block"* — i.e. for each aligned group of eight guest-virtual
//! pages, how many distinct 64-byte lines hold their eight host PTEs. A
//! perfectly contiguous layout gives 1.0; fully scattered gives 8.0.

use std::collections::HashSet;

/// Census over groups: how many distinct PTE cache lines each group touched.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LineCensus {
    /// Number of groups inspected (groups with at least one mapped page).
    pub groups: u64,
    /// Sum over groups of distinct cache lines touched.
    pub total_lines: u64,
    /// Histogram: `by_count[k]` groups touched exactly `k+1` lines.
    pub by_count: [u64; 8],
}

impl LineCensus {
    /// Mean distinct lines per group — the paper's fragmentation metric.
    ///
    /// Returns 0.0 if no groups were inspected.
    pub fn mean(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.total_lines as f64 / self.groups as f64
        }
    }

    /// Fraction of groups whose PTEs were fully scattered (8 lines).
    pub fn fully_scattered_fraction(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.by_count[7] as f64 / self.groups as f64
        }
    }

    /// Records one group given the PTE byte addresses of its mapped pages.
    ///
    /// Groups with no mapped pages are skipped (they have no PTEs to count).
    pub fn record_group(&mut self, pte_addrs: impl IntoIterator<Item = u64>) {
        let lines: HashSet<u64> = pte_addrs
            .into_iter()
            .map(|a| a >> vmsim_types::CACHE_LINE_SHIFT)
            .collect();
        if lines.is_empty() {
            return;
        }
        let n = lines.len().min(8);
        self.groups += 1;
        self.total_lines += n as u64;
        self.by_count[n - 1] += 1;
    }

    /// Merges another census into this one.
    pub fn merge(&mut self, other: &LineCensus) {
        self.groups += other.groups;
        self.total_lines += other.total_lines;
        for (a, b) in self.by_count.iter_mut().zip(other.by_count.iter()) {
            *a += b;
        }
    }
}

impl core::fmt::Display for LineCensus {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "fragmentation {:.2} over {} groups ({:.1}% fully scattered)",
            self.mean(),
            self.groups,
            self.fully_scattered_fraction() * 100.0
        )
    }
}

/// Computes a census in one call from per-group PTE address lists.
///
/// # Examples
///
/// ```
/// use vmsim_pt::group_line_census;
///
/// // Two groups: one with PTEs packed in a single line, one scattered over
/// // two lines.
/// let census = group_line_census(vec![
///     vec![0x1000, 0x1008, 0x1010],
///     vec![0x2000, 0x3000],
/// ]);
/// assert_eq!(census.groups, 2);
/// assert!((census.mean() - 1.5).abs() < 1e-9);
/// ```
pub fn group_line_census<I, G>(groups: I) -> LineCensus
where
    I: IntoIterator<Item = G>,
    G: IntoIterator<Item = u64>,
{
    let mut census = LineCensus::default();
    for g in groups {
        census.record_group(g);
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_group_counts_one_line() {
        let mut c = LineCensus::default();
        c.record_group((0..8u64).map(|i| 0x5000 + i * 8));
        assert_eq!(c.groups, 1);
        assert_eq!(c.total_lines, 1);
        assert_eq!(c.mean(), 1.0);
        assert_eq!(c.by_count[0], 1);
    }

    #[test]
    fn scattered_group_counts_eight_lines() {
        let mut c = LineCensus::default();
        c.record_group((0..8u64).map(|i| i * 4096));
        assert_eq!(c.mean(), 8.0);
        assert_eq!(c.fully_scattered_fraction(), 1.0);
    }

    #[test]
    fn empty_group_is_skipped() {
        let mut c = LineCensus::default();
        c.record_group(std::iter::empty());
        assert_eq!(c.groups, 0);
        assert_eq!(c.mean(), 0.0);
    }

    #[test]
    fn partial_groups_count_their_lines() {
        // 3 mapped pages of a group, PTEs on 2 distinct lines.
        let mut c = LineCensus::default();
        c.record_group([0x1000, 0x1008, 0x2000]);
        assert_eq!(c.total_lines, 2);
        assert_eq!(c.by_count[1], 1);
    }

    #[test]
    fn merge_accumulates() {
        let a = group_line_census(vec![vec![0x1000u64]]);
        let mut b = group_line_census(vec![vec![0x1000u64, 0x2000]]);
        b.merge(&a);
        assert_eq!(b.groups, 2);
        assert_eq!(b.total_lines, 3);
    }

    #[test]
    fn display_shows_mean() {
        let c = group_line_census(vec![vec![0x1000u64]]);
        assert!(c.to_string().contains("1.00"));
    }
}
