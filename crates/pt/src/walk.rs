//! Walk paths: the ordered entry addresses a hardware walker touches.

use vmsim_types::{PageNumber, PAGE_SHIFT, PTE_SIZE};

/// One step of a page walk: the entry consulted at one radix level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkStep<F> {
    /// Radix level of the node (0 = root, 3 = leaf).
    pub level: usize,
    /// Physical frame holding the node.
    pub node: F,
    /// Entry index within the node (0..512).
    pub index: u64,
}

impl<F: PageNumber> WalkStep<F> {
    /// Raw physical byte address of the entry, in the node's frame space.
    ///
    /// Guest-PT steps yield guest-physical addresses; host-PT steps yield
    /// host-physical addresses. The caller wraps the raw value in the
    /// appropriate address newtype.
    #[inline]
    pub fn entry_addr_raw(&self) -> u64 {
        (self.node.to_raw() << PAGE_SHIFT) + self.index * PTE_SIZE
    }
}

/// The sequence of entries a walker touches translating one page.
///
/// Contains a step for every level down to (and including) the deepest
/// existing entry. `complete` is true when the leaf entry was present, i.e.
/// the translation exists.
///
/// Stored inline — a radix walk touches at most [`PT_LEVELS`](vmsim_types::PT_LEVELS) entries per
/// dimension, so the steps fit in a fixed array and building a path never
/// allocates. The type is `Copy`, which is what lets the machine layer
/// capture walk footprints without boxing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkPath<F> {
    steps: [WalkStep<F>; vmsim_types::PT_LEVELS],
    len: u8,
    /// Whether the walk reached a present leaf entry.
    pub complete: bool,
}

impl<F: PageNumber> Default for WalkPath<F> {
    fn default() -> Self {
        Self::new()
    }
}

impl<F: PageNumber> WalkPath<F> {
    /// An empty, incomplete path.
    #[inline]
    pub fn new() -> Self {
        Self {
            steps: [WalkStep {
                level: 0,
                node: F::from_raw(0),
                index: 0,
            }; vmsim_types::PT_LEVELS],
            len: 0,
            complete: false,
        }
    }

    /// Appends a step in walk order.
    ///
    /// # Panics
    ///
    /// Panics if the path already holds [`PT_LEVELS`](vmsim_types::PT_LEVELS) steps — a radix walk
    /// cannot be deeper than the tree.
    #[inline]
    pub fn push(&mut self, step: WalkStep<F>) {
        self.steps[self.len as usize] = step;
        self.len += 1;
    }

    /// Steps from the root toward the leaf, in walk order.
    #[inline]
    pub fn steps(&self) -> &[WalkStep<F>] {
        &self.steps[..self.len as usize]
    }

    /// Number of steps recorded.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the walk recorded no steps.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The leaf step, if the walk got that far.
    pub fn leaf(&self) -> Option<&WalkStep<F>> {
        self.steps()
            .last()
            .filter(|s| s.level == vmsim_types::PT_LEVELS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_types::GuestFrame;

    #[test]
    fn entry_addr_math() {
        let s = WalkStep {
            level: 3,
            node: GuestFrame::new(2),
            index: 5,
        };
        assert_eq!(s.entry_addr_raw(), 2 * 4096 + 5 * 8);
    }

    #[test]
    fn leaf_requires_final_level() {
        let mut partial = WalkPath::new();
        partial.push(WalkStep {
            level: 0,
            node: GuestFrame::new(1),
            index: 0,
        });
        assert!(partial.leaf().is_none());
        let mut full = WalkPath::new();
        full.push(WalkStep {
            level: 2,
            node: GuestFrame::new(1),
            index: 0,
        });
        full.push(WalkStep {
            level: 3,
            node: GuestFrame::new(2),
            index: 1,
        });
        full.complete = true;
        assert_eq!(full.leaf().unwrap().node, GuestFrame::new(2));
        assert_eq!(full.len(), 2);
        assert!(!full.is_empty());
    }
}
