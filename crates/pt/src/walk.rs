//! Walk paths: the ordered entry addresses a hardware walker touches.

use vmsim_types::{PageNumber, PAGE_SHIFT, PTE_SIZE};

/// One step of a page walk: the entry consulted at one radix level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkStep<F> {
    /// Radix level of the node (0 = root, 3 = leaf).
    pub level: usize,
    /// Physical frame holding the node.
    pub node: F,
    /// Entry index within the node (0..512).
    pub index: u64,
}

impl<F: PageNumber> WalkStep<F> {
    /// Raw physical byte address of the entry, in the node's frame space.
    ///
    /// Guest-PT steps yield guest-physical addresses; host-PT steps yield
    /// host-physical addresses. The caller wraps the raw value in the
    /// appropriate address newtype.
    #[inline]
    pub fn entry_addr_raw(&self) -> u64 {
        (self.node.to_raw() << PAGE_SHIFT) + self.index * PTE_SIZE
    }
}

/// The sequence of entries a walker touches translating one page.
///
/// Contains a step for every level down to (and including) the deepest
/// existing entry. `complete` is true when the leaf entry was present, i.e.
/// the translation exists.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalkPath<F> {
    /// Steps from the root toward the leaf, in walk order.
    pub steps: Vec<WalkStep<F>>,
    /// Whether the walk reached a present leaf entry.
    pub complete: bool,
}

impl<F: PageNumber> WalkPath<F> {
    /// The leaf step, if the walk got that far.
    pub fn leaf(&self) -> Option<&WalkStep<F>> {
        self.steps
            .last()
            .filter(|s| s.level == vmsim_types::PT_LEVELS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_types::GuestFrame;

    #[test]
    fn entry_addr_math() {
        let s = WalkStep {
            level: 3,
            node: GuestFrame::new(2),
            index: 5,
        };
        assert_eq!(s.entry_addr_raw(), 2 * 4096 + 5 * 8);
    }

    #[test]
    fn leaf_requires_final_level() {
        let partial = WalkPath {
            steps: vec![WalkStep {
                level: 0,
                node: GuestFrame::new(1),
                index: 0,
            }],
            complete: false,
        };
        assert!(partial.leaf().is_none());
        let full = WalkPath {
            steps: vec![
                WalkStep {
                    level: 2,
                    node: GuestFrame::new(1),
                    index: 0,
                },
                WalkStep {
                    level: 3,
                    node: GuestFrame::new(2),
                    index: 1,
                },
            ],
            complete: true,
        };
        assert_eq!(full.leaf().unwrap().node, GuestFrame::new(2));
    }
}
