//! Property-based tests for the guest OS: frame conservation and mapping
//! consistency under arbitrary fault/unmap/fork/COW sequences.

use std::collections::HashMap;

use proptest::prelude::*;
use vmsim_os::{DefaultAllocator, GuestOs, Pid};
use vmsim_types::GuestVirtPage;

#[derive(Clone, Debug)]
enum Op {
    Spawn,
    /// Fault page `page` of process index `proc` (both taken modulo live
    /// counts).
    Fault {
        proc: usize,
        page: u64,
    },
    /// Write-fault (COW break if shared).
    Write {
        proc: usize,
        page: u64,
    },
    Unmap {
        proc: usize,
        page: u64,
    },
    Fork {
        proc: usize,
    },
    Exit {
        proc: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Spawn),
        8 => (0usize..8, 0u64..64).prop_map(|(proc, page)| Op::Fault { proc, page }),
        4 => (0usize..8, 0u64..64).prop_map(|(proc, page)| Op::Write { proc, page }),
        3 => (0usize..8, 0u64..64).prop_map(|(proc, page)| Op::Unmap { proc, page }),
        2 => (0usize..8).prop_map(|proc| Op::Fork { proc }),
        1 => (0usize..8).prop_map(|proc| Op::Exit { proc }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn guest_os_conserves_frames(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let total = 4096u64;
        let mut g = GuestOs::new(total, Box::new(DefaultAllocator::new()));
        // Live processes and their 64-page VMA bases.
        let mut procs: Vec<(Pid, u64)> = Vec::new();
        {
            let pid = g.spawn();
            let va = g.mmap(pid, 64).unwrap();
            procs.push((pid, va.page().raw()));
        }

        for op in ops {
            if procs.is_empty() {
                let pid = g.spawn();
                let va = g.mmap(pid, 64).unwrap();
                procs.push((pid, va.page().raw()));
            }
            match op {
                Op::Spawn => {
                    let pid = g.spawn();
                    let va = g.mmap(pid, 64).unwrap();
                    procs.push((pid, va.page().raw()));
                }
                Op::Fault { proc, page } => {
                    let (pid, base) = procs[proc % procs.len()];
                    let vpn = GuestVirtPage::new(base + page);
                    let _ = g.page_fault(pid, vpn); // AlreadyMapped is fine
                }
                Op::Write { proc, page } => {
                    let (pid, base) = procs[proc % procs.len()];
                    let vpn = GuestVirtPage::new(base + page);
                    let _ = g.write_fault(pid, vpn); // Unmapped is fine
                }
                Op::Unmap { proc, page } => {
                    let (pid, base) = procs[proc % procs.len()];
                    let vpn = GuestVirtPage::new(base + page);
                    // Only unmap pages still inside the VMA; repeated
                    // unmaps of the same page legitimately fail.
                    let _ = g.munmap(pid, vpn, 1);
                }
                Op::Fork { proc } => {
                    let (pid, base) = procs[proc % procs.len()];
                    if let Ok(child) = g.fork(pid) {
                        procs.push((child, base));
                    }
                }
                Op::Exit { proc } => {
                    let (pid, _) = procs.remove(proc % procs.len());
                    g.exit(pid).unwrap();
                }
            }

            // Invariant 1: buddy accounting is internally consistent.
            prop_assert!(g.buddy().check_invariants());

            // Invariant 2: every translation maps to a distinct frame
            // unless the PTE is COW-shared.
            let mut owners: HashMap<u64, bool /* cow */> = HashMap::new();
            for (pid, base) in &procs {
                let proc_ref = g.process(*pid).unwrap();
                for page in 0..64u64 {
                    let vpn = GuestVirtPage::new(base + page);
                    if let Some(pte) = proc_ref.page_table.lookup(vpn) {
                        let frame = pte.frame().raw();
                        if let Some(prev_cow) = owners.get(&frame) {
                            prop_assert!(
                                *prev_cow && pte.is_cow(),
                                "frame {frame:#x} shared without COW"
                            );
                        } else {
                            owners.insert(frame, pte.is_cow());
                        }
                    }
                }
            }

            // Invariant 3: rss matches the page table's mapped count.
            for (pid, _) in &procs {
                let p = g.process(*pid).unwrap();
                prop_assert_eq!(p.rss_pages, p.page_table.stats().mapped_pages);
            }
        }

        // Teardown: exiting everything returns every frame.
        for (pid, _) in procs {
            g.exit(pid).unwrap();
        }
        prop_assert_eq!(g.buddy().free_frames(), total);
    }
}
