//! Property-based tests of the assembled machine: whatever sequence of
//! touches colocated processes perform, translation must be coherent
//! (same page -> same frame while mapped) and cycle accounting sane.

use proptest::prelude::*;
use vmsim_os::{Machine, MachineConfig, Pid};
use vmsim_types::{GuestVirtAddr, PAGE_SIZE};

#[derive(Clone, Debug)]
struct Touch {
    proc: usize,
    page: u64,
    write: bool,
}

fn touch_strategy() -> impl Strategy<Value = Touch> {
    (0usize..3, 0u64..96, any::<bool>()).prop_map(|(proc, page, write)| Touch { proc, page, write })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn translations_are_coherent_under_arbitrary_touch_orders(
        touches in prop::collection::vec(touch_strategy(), 1..150)
    ) {
        let mut m = Machine::new(MachineConfig::small());
        let mut procs: Vec<(Pid, GuestVirtAddr)> = Vec::new();
        for _ in 0..3 {
            let pid = m.guest_mut().spawn();
            let va = m.guest_mut().mmap(pid, 96).unwrap();
            procs.push((pid, va));
        }
        // Model: (proc, page) -> frame assigned at first touch.
        let mut model: std::collections::HashMap<(usize, u64), u64> =
            std::collections::HashMap::new();

        for t in touches {
            let (pid, base) = procs[t.proc];
            let core = t.proc % m.caches().core_count();
            let va = GuestVirtAddr::new(base.raw() + t.page * PAGE_SIZE);
            let out = m.touch(core, pid, va, t.write).unwrap();
            prop_assert!(out.cycles > 0);
            prop_assert!(!(out.tlb_hit && out.faulted), "fresh faults cannot hit TLB");

            let gfn = m
                .guest()
                .process(pid)
                .unwrap()
                .page_table
                .translate(va.page())
                .unwrap()
                .raw();
            match model.get(&(t.proc, t.page)) {
                Some(&expected) => prop_assert_eq!(
                    gfn, expected,
                    "mapping changed without unmap (proc {}, page {})",
                    t.proc, t.page
                ),
                None => {
                    prop_assert!(out.faulted, "first touch must fault");
                    model.insert((t.proc, t.page), gfn);
                }
            }

            // The TLB path and the page-table path agree: touching again
            // immediately yields the same frame via the TLB.
            let again = m.touch(core, pid, va, false).unwrap();
            prop_assert!(again.tlb_hit);
            prop_assert!(!again.faulted);
        }

        // No two live (proc, page) pairs share a frame (no COW here).
        let mut frames: Vec<u64> = model.values().copied().collect();
        let n = frames.len();
        frames.sort_unstable();
        frames.dedup();
        prop_assert_eq!(frames.len(), n, "distinct pages own distinct frames");
    }

    #[test]
    fn cycle_costs_are_monotone_in_distance(
        pages in prop::collection::vec(0u64..512, 2..40)
    ) {
        // For any touch sequence: a TLB hit is never more expensive than
        // the cold access to the same page was.
        let mut m = Machine::new(MachineConfig::small());
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 512).unwrap();
        let mut cold_cost: std::collections::HashMap<u64, u64> =
            std::collections::HashMap::new();
        for p in pages {
            let addr = GuestVirtAddr::new(va.raw() + p * PAGE_SIZE);
            let out = m.touch(0, pid, addr, false).unwrap();
            match cold_cost.get(&p) {
                None => {
                    cold_cost.insert(p, out.cycles);
                }
                Some(&cold) if out.tlb_hit => {
                    prop_assert!(
                        out.cycles <= cold,
                        "warm access ({}) dearer than cold ({cold})",
                        out.cycles
                    );
                }
                _ => {}
            }
        }
    }
}
