//! Property-based tests of the multi-tenant host: under arbitrary
//! interleavings of guest touches, VM kills/reboots, and balloon traffic,
//! the host's frame reference counts must exactly mirror the host page
//! table — every mapped host frame has a matching refcount, and no host
//! frame ever backs two guest-physical pages (this model has no host-level
//! page dedup, so every count is 0 or 1 and cross-VM sharing is a bug).

use std::collections::HashMap;

use proptest::prelude::*;
use vmsim_os::{DefaultAllocator, Machine, MachineConfig, Pid};
use vmsim_types::{GuestVirtAddr, HostVirtPage, PAGE_SIZE};

const VMS: usize = 3;
const PAGES: u64 = 48;

#[derive(Clone, Debug)]
enum Op {
    /// Touch page `page` of the resident process in VM `vm`.
    Touch { vm: usize, page: u64, write: bool },
    /// Kill VM `vm` (skipped while already dead).
    Kill { vm: usize },
    /// Reboot VM `vm` (skipped while still running).
    Boot { vm: usize },
    /// Inflate VM `vm`'s balloon by `frames`.
    Balloon { vm: usize, frames: u64 },
    /// Deflate VM `vm`'s balloon by `frames`.
    Deflate { vm: usize, frames: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => (0..VMS, 0u64..PAGES, any::<bool>())
            .prop_map(|(vm, page, write)| Op::Touch { vm, page, write }),
        1 => (0..VMS).prop_map(|vm| Op::Kill { vm }),
        2 => (0..VMS).prop_map(|vm| Op::Boot { vm }),
        2 => (0..VMS, 1u64..32).prop_map(|(vm, frames)| Op::Balloon { vm, frames }),
        2 => (0..VMS, 1u64..32).prop_map(|(vm, frames)| Op::Deflate { vm, frames }),
    ]
}

fn host() -> Machine {
    let mut config = MachineConfig::small();
    config.guest_frames = 1 << 9;
    // 2x overcommit across three half-size guests.
    config.host_frames = (VMS as u64) * (1 << 8);
    Machine::multi_tenant(config, VMS, |_| Box::new(DefaultAllocator::new()))
}

/// Spawns the VM's single resident process with a `PAGES`-page region.
fn resident(m: &mut Machine, vm: usize) -> (Pid, GuestVirtAddr) {
    let pid = m.vm_guest_mut(vm).spawn();
    let va = m.vm_guest_mut(vm).mmap(pid, PAGES).unwrap();
    (pid, va)
}

/// Scans every VM's guest-physical slot and checks the host refcount table
/// against the host page table, mapping by mapping.
fn check_refcounts(m: &Machine) {
    let guest_frames = m.config().guest_frames;
    // host frame -> (vm, hvpn) owner of the mapping.
    let mut owners: HashMap<u64, (usize, u64)> = HashMap::new();
    for vm in 0..m.vm_count() {
        let base = m.vm_base_of(vm).raw();
        for gfn in 0..guest_frames {
            let hvpn = HostVirtPage::new(base + gfn);
            if let Some(hfn) = m.host().translate(hvpn) {
                if let Some(&(other_vm, other_hvpn)) = owners.get(&hfn.raw()) {
                    panic!(
                        "host frame {} backs VM {} page {} and VM {} page {}",
                        hfn.raw(),
                        other_vm,
                        other_hvpn,
                        vm,
                        hvpn.raw()
                    );
                }
                owners.insert(hfn.raw(), (vm, hvpn.raw()));
                prop_assert_eq!(
                    m.host().frame_refs().get(hfn.raw()),
                    1,
                    "mapped host frame must hold exactly one reference"
                );
            }
        }
    }
    prop_assert_eq!(
        m.host().frame_refs().total_refs(),
        owners.len() as u64,
        "refcount table tracks frames the host PT does not map"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn host_refcounts_mirror_the_host_page_table(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        let mut m = host();
        let mut residents: Vec<(Pid, GuestVirtAddr)> =
            (0..VMS).map(|vm| resident(&mut m, vm)).collect();

        for op in ops {
            match op {
                Op::Touch { vm, page, write } => {
                    if !m.vm_running(vm) {
                        continue;
                    }
                    let (pid, base) = residents[vm];
                    let va = GuestVirtAddr::new(base.raw() + page * PAGE_SIZE);
                    let out = m.touch_vm(vm, vm % m.caches().core_count(), pid, va, write);
                    prop_assert!(out.is_ok(), "touch failed: {:?}", out);
                }
                Op::Kill { vm } => {
                    if m.vm_running(vm) {
                        m.kill_vm(vm);
                        check_refcounts(&m);
                    }
                }
                Op::Boot { vm } => {
                    if !m.vm_running(vm) {
                        m.boot_vm(vm);
                        residents[vm] = resident(&mut m, vm);
                    }
                }
                Op::Balloon { vm, frames } => {
                    if m.vm_running(vm) {
                        m.balloon_vm(vm, frames);
                    }
                }
                Op::Deflate { vm, frames } => {
                    if m.vm_running(vm) {
                        m.deflate_vm(vm, frames);
                    }
                }
            }
        }
        check_refcounts(&m);
    }
}

const THREADS: u32 = 4;

#[derive(Clone, Debug)]
enum ThreadedOp {
    /// Touch page `page` of VM `vm`, attributed to guest thread `thread`.
    Touch {
        vm: usize,
        thread: u32,
        page: u64,
        write: bool,
    },
    /// Kill VM `vm` (skipped while already dead).
    Kill { vm: usize },
    /// Reboot VM `vm` (skipped while still running).
    Boot { vm: usize },
}

fn threaded_op_strategy() -> impl Strategy<Value = ThreadedOp> {
    prop_oneof![
        12 => (0..VMS, 0..THREADS, 0u64..PAGES, any::<bool>())
            .prop_map(|(vm, thread, page, write)| ThreadedOp::Touch { vm, thread, page, write }),
        1 => (0..VMS).prop_map(|vm| ThreadedOp::Kill { vm }),
        2 => (0..VMS).prop_map(|vm| ThreadedOp::Boot { vm }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Interleaved multi-threaded faulting across a multi-VM host: the
    /// frame-refcount invariant must survive arbitrary thread switches in
    /// the middle of the fault stream, every served fault must be
    /// attributed to exactly the thread that was active when it fired, and
    /// the contention detector may only count faults that actually happened.
    #[test]
    fn threaded_faulting_preserves_refcounts_and_attribution(
        ops in prop::collection::vec(threaded_op_strategy(), 1..120)
    ) {
        let mut m = host();
        m.set_guest_threads(THREADS);
        let mut residents: Vec<(Pid, GuestVirtAddr)> =
            (0..VMS).map(|vm| resident(&mut m, vm)).collect();
        let mut faults_fired = vec![0u64; THREADS as usize];

        for op in ops {
            match op {
                ThreadedOp::Touch { vm, thread, page, write } => {
                    if !m.vm_running(vm) {
                        continue;
                    }
                    m.set_active_thread(thread);
                    let (pid, base) = residents[vm];
                    let va = GuestVirtAddr::new(base.raw() + page * PAGE_SIZE);
                    let out = m.touch_vm(vm, vm % m.caches().core_count(), pid, va, write);
                    prop_assert!(out.is_ok(), "touch failed: {:?}", out);
                    if out.unwrap().faulted {
                        faults_fired[thread as usize] += 1;
                    }
                }
                ThreadedOp::Kill { vm } => {
                    if m.vm_running(vm) {
                        m.kill_vm(vm);
                        check_refcounts(&m);
                    }
                }
                ThreadedOp::Boot { vm } => {
                    if !m.vm_running(vm) {
                        m.boot_vm(vm);
                        residents[vm] = resident(&mut m, vm);
                    }
                }
            }
        }

        check_refcounts(&m);
        prop_assert_eq!(
            m.thread_faults(),
            faults_fired.as_slice(),
            "every fault attributed to the thread active when it fired"
        );
        let total: u64 = faults_fired.iter().sum();
        prop_assert!(
            m.contended_group_faults() <= total,
            "contention detector cannot count faults that never happened"
        );
    }
}
