//! The guest kernel: lazy physical allocation, fork/COW, and the pluggable
//! frame allocator.
//!
//! Physical memory is allocated **lazily**: `mmap` only creates a VMA, and a
//! frame is assigned on the first faulting touch (paper §2.2). *Which* frame
//! is assigned is decided by the pluggable [`GuestFrameAllocator`]:
//!
//! * [`DefaultAllocator`] — the stock Linux behaviour: one order-0 buddy call
//!   per fault. Under colocation, interleaved faults from different
//!   processes receive interleaved frames, fragmenting each process's memory
//!   in guest-physical space (§2.4).
//! * `ptemagnet::ReservationAllocator` (in the `ptemagnet` crate) — the
//!   paper's contribution, plugging in through the same trait.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use vmsim_buddy::BuddyAllocator;
use vmsim_pt::Pte;
use vmsim_types::{GuestFrame, GuestVirtAddr, GuestVirtPage, MemError, Result, PT_ENTRIES};

use crate::frames::FrameRefTable;
use crate::process::{Pid, Process};

/// The guest-physical buddy allocator.
pub type GuestBuddy = BuddyAllocator<GuestFrame>;

/// Software cost of serving one allocation, for the §6.4 latency model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AllocCost {
    /// Calls into the buddy allocator.
    pub buddy_calls: u32,
    /// PaRT radix-tree lookups (PTEMagnet only).
    pub part_lookups: u32,
    /// Whether the request was served from an existing reservation.
    pub reservation_hit: bool,
    /// Whether serving the request installed a *new* reservation.
    pub reservation_new: bool,
    /// Whether a reservation-capable allocator degraded to a single-frame
    /// fallback allocation (no aligned chunk available, or denied by
    /// policy/fault injection) — the §4.2 graceful-degradation path.
    pub fallback: bool,
}

/// What an allocator granted for a faulting page.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocGrant {
    /// One 4 KB frame for the faulting page.
    Small(GuestFrame),
    /// A 512-aligned 2 MB chunk covering the faulting page's aligned 2 MB
    /// virtual region (THP-style). The value is the chunk base.
    Huge(GuestFrame),
}

/// Strategy deciding which guest-physical frame backs a faulting page.
///
/// Implementations own whatever bookkeeping they need (PTEMagnet owns its
/// Page Reservation Table) but draw frames exclusively from the provided
/// buddy allocator, like any kernel allocation path.
pub trait GuestFrameAllocator: core::fmt::Debug {
    /// Short name used in experiment reports (e.g. `"default"`,
    /// `"ptemagnet"`).
    fn name(&self) -> &'static str;

    /// Picks a frame for the faulting page (`pid`, `vpn`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when the pool is exhausted.
    fn allocate(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        buddy: &mut GuestBuddy,
    ) -> Result<(GuestFrame, AllocCost)>;

    /// Releases the frame backing (`pid`, `vpn`).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidFree`] for frames this allocator does not
    /// consider live.
    fn free(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        gfn: GuestFrame,
        buddy: &mut GuestBuddy,
    ) -> Result<()>;

    /// Picks a grant for the faulting page, possibly a huge (2 MB) one.
    ///
    /// `huge_candidate` tells the allocator whether the kernel could install
    /// a huge mapping over the page's aligned 2 MB region (the region lies
    /// wholly inside one VMA and nothing in it is mapped yet). Allocators
    /// that never use huge pages keep the default, which delegates to
    /// [`Self::allocate`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] when the pool is exhausted.
    fn allocate_grant(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        _huge_candidate: bool,
        buddy: &mut GuestBuddy,
    ) -> Result<(AllocGrant, AllocCost)> {
        let (gfn, cost) = self.allocate(pid, vpn, buddy)?;
        Ok((AllocGrant::Small(gfn), cost))
    }

    /// Notifies the allocator of a fork so reservation state can be shared
    /// with the child (paper §4.4). Default: nothing to share.
    fn fork(&mut self, _parent: Pid, _child: Pid) {}

    /// Releases all per-process state on exit (e.g. undrained reservations).
    fn exit(&mut self, _pid: Pid, _buddy: &mut GuestBuddy) {}

    /// Releases up to `target_frames` of reserved-but-unused memory back to
    /// the buddy allocator (memory-pressure reclamation, §4.3). Returns the
    /// number of frames actually released.
    fn reclaim(&mut self, _buddy: &mut GuestBuddy, _target_frames: u64) -> u64 {
        0
    }

    /// The OS selected `gfn` as a swap or compaction target. If the frame
    /// is parked inside a reservation, the allocator reclaims that whole
    /// reservation (§4.4 "Swap and THP"). Returns frames released to the
    /// buddy allocator (0 when the frame was not reserved).
    fn on_frame_targeted(&mut self, _gfn: GuestFrame, _buddy: &mut GuestBuddy) -> u64 {
        0
    }

    /// Frames currently reserved but not yet handed to any application
    /// (the §6.2 overhead metric). Zero for non-reserving allocators.
    fn reserved_unused_frames(&self) -> u64 {
        0
    }

    /// Per-process variant of [`Self::reserved_unused_frames`].
    fn reserved_unused_frames_of(&self, _pid: Pid) -> u64 {
        0
    }

    /// A deterministic reserved-but-unused frame, if any exist — the
    /// lowest-numbered one, so the choice is independent of internal map
    /// iteration order. Used by the fault-injection driver to pick host
    /// swap-out targets (§4.4). `None` for non-reserving allocators.
    fn any_reserved_unused_frame(&self) -> Option<GuestFrame> {
        None
    }

    /// Contributes allocator-internal metrics (e.g. PTEMagnet's reservation
    /// and PaRT counters) to an observability snapshot. Default: nothing.
    fn emit_metrics(&self, _reg: &mut vmsim_obs::Registry) {}
}

/// The stock Linux allocation policy: one order-0 buddy call per fault.
#[derive(Clone, Copy, Debug, Default)]
pub struct DefaultAllocator;

impl DefaultAllocator {
    /// Creates the default allocator.
    pub fn new() -> Self {
        Self
    }
}

impl GuestFrameAllocator for DefaultAllocator {
    fn name(&self) -> &'static str {
        "default"
    }

    fn allocate(
        &mut self,
        _pid: Pid,
        _vpn: GuestVirtPage,
        buddy: &mut GuestBuddy,
    ) -> Result<(GuestFrame, AllocCost)> {
        let gfn = buddy.alloc(0)?;
        Ok((
            gfn,
            AllocCost {
                buddy_calls: 1,
                ..AllocCost::default()
            },
        ))
    }

    fn free(
        &mut self,
        _pid: Pid,
        _vpn: GuestVirtPage,
        gfn: GuestFrame,
        buddy: &mut GuestBuddy,
    ) -> Result<()> {
        buddy.free(gfn, 0)
    }
}

/// Names of the allocation policies implemented by this crate, for the
/// registry catalog.
pub const OS_POLICY_NAMES: [&str; 1] = ["default"];

/// Resolves an OS-native policy name to an allocator: the base layer of the
/// policy registry (`ptemagnet::registry::resolve` adds the paper's
/// policies on top). Returns `None` for names this crate does not define.
pub fn resolve_os_policy(name: &str) -> Option<Box<dyn GuestFrameAllocator>> {
    match name {
        "default" => Some(Box::new(DefaultAllocator::new())),
        _ => None,
    }
}

/// Outcome of serving a page fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultInfo {
    /// The frame now backing the faulting page.
    pub gfn: GuestFrame,
    /// Allocator cost of the fault.
    pub cost: AllocCost,
    /// Guest-physical frames newly allocated for page-table nodes.
    pub pt_node_allocs: u32,
    /// Whether the fault installed a huge (2 MB) mapping.
    pub huge: bool,
}

/// Cumulative guest-kernel event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GuestStats {
    /// Page faults served.
    pub faults: u64,
    /// Copy-on-write breaks.
    pub cow_breaks: u64,
    /// Forks performed.
    pub forks: u64,
    /// Pages unmapped.
    pub unmaps: u64,
    /// Total buddy calls made by the pluggable allocator.
    pub allocator_buddy_calls: u64,
    /// Total PaRT lookups made by the pluggable allocator.
    pub allocator_part_lookups: u64,
}

impl vmsim_obs::MetricSource for GuestStats {
    fn source_name(&self) -> &'static str {
        "guest"
    }

    fn emit(&self, out: &mut Vec<vmsim_obs::Metric>) {
        out.push(vmsim_obs::Metric::u64("faults", self.faults));
        out.push(vmsim_obs::Metric::u64("cow_breaks", self.cow_breaks));
        out.push(vmsim_obs::Metric::u64("forks", self.forks));
        out.push(vmsim_obs::Metric::u64("unmaps", self.unmaps));
        out.push(vmsim_obs::Metric::u64(
            "allocator_buddy_calls",
            self.allocator_buddy_calls,
        ));
        out.push(vmsim_obs::Metric::u64(
            "allocator_part_lookups",
            self.allocator_part_lookups,
        ));
    }
}

/// The guest operating system: processes, the guest-physical pool, and the
/// pluggable allocation policy.
#[derive(Debug)]
pub struct GuestOs {
    buddy: GuestBuddy,
    allocator: Box<dyn GuestFrameAllocator>,
    processes: BTreeMap<Pid, Process>,
    next_pid: u64,
    /// Reference counts for frames shared across address spaces (fork/COW),
    /// indexed densely by guest frame number (0 = untracked).
    frame_refs: FrameRefTable,
    stats: GuestStats,
    /// Per-process translation generations, indexed by `pid.0`. Bumped by
    /// every operation that changes an *existing* mapping of that process
    /// (COW break or restore-write, fork's COW downgrade, munmap, exit).
    /// Faults that only fill previously-empty slots do not bump: no cached
    /// translation can exist for an unmapped page. The machine's memo layer
    /// uses these to cheaply prove a cached translation is still current.
    xlate_gens: Vec<u64>,
}

impl GuestOs {
    /// Creates a guest OS managing `total_frames` of guest-physical memory
    /// with the given allocation policy.
    pub fn new(total_frames: u64, allocator: Box<dyn GuestFrameAllocator>) -> Self {
        Self {
            buddy: GuestBuddy::new(total_frames),
            allocator,
            processes: BTreeMap::new(),
            next_pid: 1,
            frame_refs: FrameRefTable::new(total_frames),
            stats: GuestStats::default(),
            xlate_gens: Vec::new(),
        }
    }

    /// The translation generation of `pid` (see the field docs). Unknown
    /// pids read as generation 0.
    #[inline]
    pub fn xlate_gen(&self, pid: Pid) -> u64 {
        self.xlate_gens.get(pid.0 as usize).copied().unwrap_or(0)
    }

    /// Bumps `pid`'s translation generation, invalidating any memoized
    /// translations for that process.
    fn bump_xlate_gen(xlate_gens: &mut Vec<u64>, pid: Pid) {
        let i = pid.0 as usize;
        if xlate_gens.len() <= i {
            xlate_gens.resize(i + 1, 0);
        }
        xlate_gens[i] += 1;
    }

    /// Spawns a new, empty process and returns its pid.
    ///
    /// # Panics
    ///
    /// Panics if guest memory is so exhausted that not even a page-table
    /// root can be allocated.
    pub fn spawn(&mut self) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        let buddy = &mut self.buddy;
        // Process creation is not a fault-servicing path: injected
        // allocation failures target the degradation paths (§4.2–§4.3),
        // not the ability to construct a process at all.
        if let Some(inj) = buddy.fault_injector_mut() {
            inj.push_suppress();
        }
        let proc = Process::new(pid, || buddy.alloc(0)).expect("guest OOM while spawning");
        if let Some(inj) = buddy.fault_injector_mut() {
            inj.pop_suppress();
        }
        self.processes.insert(pid, proc);
        pid
    }

    /// Allocates `pages` of virtual address space for `pid` (like `mmap`).
    /// Physical memory is not touched.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn mmap(&mut self, pid: Pid, pages: u64) -> Result<GuestVirtAddr> {
        let proc = self.process_mut(pid)?;
        let start = proc.place_mmap(pages);
        proc.vmas.insert(start, pages, true)?;
        Ok(start.base_addr())
    }

    /// Handles a page fault at (`pid`, `vpn`): the pluggable allocator picks
    /// a frame and the page table is extended.
    ///
    /// # Errors
    ///
    /// * [`MemError::Unmapped`] — `vpn` is outside every VMA (a real fault
    ///   would segfault);
    /// * [`MemError::AlreadyMapped`] — the page already has a frame;
    /// * [`MemError::OutOfMemory`] — the pool is exhausted.
    pub fn page_fault(&mut self, pid: Pid, vpn: GuestVirtPage) -> Result<FaultInfo> {
        let Self {
            buddy,
            allocator,
            processes,
            frame_refs,
            stats,
            ..
        } = self;
        let proc = processes
            .get_mut(&pid)
            .ok_or(MemError::NoSuchProcess { pid: pid.0 })?;
        let vma = *proc
            .vmas
            .find(vpn)
            .ok_or(MemError::Unmapped { vpn: vpn.raw() })?;
        if proc.page_table.lookup(vpn).is_some() {
            return Err(MemError::AlreadyMapped { vpn: vpn.raw() });
        }
        // Could a THP-style allocator install a 2 MB mapping here? Only if
        // the aligned region lies wholly inside this VMA and its level-2
        // slot is still empty.
        let region_base = GuestVirtPage::new(vpn.raw() & !(PT_ENTRIES - 1));
        let huge_candidate = vma.start <= region_base
            && region_base.raw() + PT_ENTRIES <= vma.end().raw()
            && proc.page_table.can_map_large(vpn);

        let (grant, cost) = allocator.allocate_grant(pid, vpn, huge_candidate, buddy)?;
        let nodes_before = proc.page_table.stats().total_nodes();
        let (gfn, huge) = match grant {
            AllocGrant::Small(gfn) => {
                proc.page_table.map(vpn, gfn, || buddy.alloc(0))?;
                proc.rss_pages += 1;
                frame_refs.set_one(gfn.raw());
                (gfn, false)
            }
            AllocGrant::Huge(chunk) => {
                debug_assert!(huge_candidate, "allocator granted huge without a candidate");
                proc.page_table
                    .map_large(region_base, chunk, || buddy.alloc(0))?;
                proc.rss_pages += PT_ENTRIES;
                for i in 0..PT_ENTRIES {
                    frame_refs.set_one(chunk.raw() + i);
                }
                (
                    GuestFrame::new(chunk.raw() + (vpn.raw() & (PT_ENTRIES - 1))),
                    true,
                )
            }
        };
        let pt_node_allocs = (proc.page_table.stats().total_nodes() - nodes_before) as u32;
        stats.faults += 1;
        stats.allocator_buddy_calls += u64::from(cost.buddy_calls) + u64::from(pt_node_allocs);
        stats.allocator_part_lookups += u64::from(cost.part_lookups);
        Ok(FaultInfo {
            gfn,
            cost,
            pt_node_allocs,
            huge,
        })
    }

    /// Handles a write to a COW-mapped page: the mapping is privatized.
    ///
    /// Returns the (possibly new) backing frame and whether a copy happened.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if the page has no present mapping.
    pub fn write_fault(&mut self, pid: Pid, vpn: GuestVirtPage) -> Result<(GuestFrame, bool)> {
        let Self {
            buddy,
            allocator,
            processes,
            frame_refs,
            stats,
            xlate_gens,
            ..
        } = self;
        let proc = processes
            .get_mut(&pid)
            .ok_or(MemError::NoSuchProcess { pid: pid.0 })?;
        let pte = proc
            .page_table
            .lookup(vpn)
            .ok_or(MemError::Unmapped { vpn: vpn.raw() })?;
        if !pte.is_cow() {
            // translate() rather than pte.frame(): for a huge mapping the
            // entry's frame is the 2 MB chunk base, not this page's frame.
            // Nothing mutates, so the translation generation stays put.
            let gfn = proc.page_table.translate(vpn).expect("present mapping");
            return Ok((gfn, false));
        }
        // Huge mappings are demoted at fork time, so a COW entry is always a
        // 4 KB leaf entry here.
        debug_assert!(!pte.is_huge(), "huge mappings never carry COW");
        let old = pte.frame();
        debug_assert!(frame_refs.get(old.raw()) > 0, "cow frame is tracked");
        if !frame_refs.is_shared(old.raw()) {
            // Sole owner: just restore write access.
            proc.page_table
                .update(vpn, |p| p.with_cow(false).with_writable(true))?;
            Self::bump_xlate_gen(xlate_gens, pid);
            return Ok((old, false));
        }
        frame_refs.decr(old.raw());
        let (new_gfn, cost) = allocator.allocate(pid, vpn, buddy)?;
        frame_refs.set_one(new_gfn.raw());
        proc.page_table.unmap(vpn)?;
        proc.page_table.map(vpn, new_gfn, || buddy.alloc(0))?;
        stats.cow_breaks += 1;
        stats.allocator_buddy_calls += u64::from(cost.buddy_calls);
        stats.allocator_part_lookups += u64::from(cost.part_lookups);
        Self::bump_xlate_gen(xlate_gens, pid);
        Ok((new_gfn, true))
    }

    /// Forks `parent`: the child shares all mapped pages copy-on-write.
    ///
    /// Both parent and child PTEs are downgraded to read-only + COW, exactly
    /// like `fork(2)`. Reservation state is shared per the allocator's
    /// [`GuestFrameAllocator::fork`] hook (§4.4).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown parents and
    /// propagates allocation failures for the child's page-table nodes.
    pub fn fork(&mut self, parent: Pid) -> Result<Pid> {
        let child_pid = Pid(self.next_pid);
        self.next_pid += 1;
        let Self {
            buddy,
            allocator,
            processes,
            frame_refs,
            stats,
            ..
        } = self;
        // Like spawn: fork is process management, not fault servicing —
        // a mid-copy injected denial would tear down the child half-built.
        if let Some(inj) = buddy.fault_injector_mut() {
            inj.push_suppress();
        }
        let result = Self::fork_inner(
            child_pid, parent, buddy, allocator, processes, frame_refs, stats,
        );
        if let Some(inj) = buddy.fault_injector_mut() {
            inj.pop_suppress();
        }
        if result.is_ok() {
            // The parent's live PTEs were downgraded to COW (and any huge
            // mappings split), so its cached translations' write permissions
            // are stale.
            Self::bump_xlate_gen(&mut self.xlate_gens, parent);
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn fork_inner(
        child_pid: Pid,
        parent: Pid,
        buddy: &mut GuestBuddy,
        allocator: &mut Box<dyn GuestFrameAllocator>,
        processes: &mut BTreeMap<Pid, Process>,
        frame_refs: &mut FrameRefTable,
        stats: &mut GuestStats,
    ) -> Result<Pid> {
        let parent_proc = processes
            .get_mut(&parent)
            .ok_or(MemError::NoSuchProcess { pid: parent.0 })?;

        // Huge mappings are split before COW-sharing (THP splitting at
        // fork: sharing 2 MB units copy-on-write would copy 2 MB per write,
        // so the model splits eagerly like khugepaged-less kernels do).
        let vmas = parent_proc.vmas.clone();
        for vma in &vmas {
            for vpn in vma.iter_pages() {
                if parent_proc.page_table.is_huge_mapping(vpn) {
                    parent_proc.page_table.demote(vpn, || buddy.alloc(0))?;
                }
            }
        }

        // Collect the parent's live mappings and downgrade them to COW.
        let mut mappings: Vec<(GuestVirtPage, GuestFrame)> = Vec::new();
        for vma in &vmas {
            for vpn in vma.iter_pages() {
                if let Some(pte) = parent_proc.page_table.lookup(vpn) {
                    mappings.push((vpn, pte.frame()));
                    parent_proc
                        .page_table
                        .update(vpn, |p| p.with_cow(true).with_writable(false))?;
                }
            }
        }
        let mmap_cursor = parent_proc.mmap_cursor;

        let mut child = Process::new(child_pid, || buddy.alloc(0))?;
        child.vmas = vmas;
        child.mmap_cursor = mmap_cursor;
        child.parent = Some(parent);
        for (vpn, gfn) in &mappings {
            child.page_table.map_entry(
                *vpn,
                Pte::present(*gfn).with_cow(true).with_writable(false),
                || buddy.alloc(0),
            )?;
            frame_refs.incr(gfn.raw());
        }
        child.rss_pages = mappings.len() as u64;
        processes.insert(child_pid, child);
        allocator.fork(parent, child_pid);
        stats.forks += 1;
        Ok(child_pid)
    }

    /// Unmaps `[start, start+pages)` from `pid`, freeing frames whose last
    /// reference this was. Returns the pages that actually had mappings (for
    /// TLB shootdown by the machine).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidVma`] if the range is not fully covered by
    /// VMAs.
    pub fn munmap(
        &mut self,
        pid: Pid,
        start: GuestVirtPage,
        pages: u64,
    ) -> Result<Vec<GuestVirtPage>> {
        let Self {
            buddy,
            allocator,
            processes,
            frame_refs,
            stats,
            xlate_gens,
            ..
        } = self;
        let proc = processes
            .get_mut(&pid)
            .ok_or(MemError::NoSuchProcess { pid: pid.0 })?;
        proc.vmas.remove(start, pages)?;
        Self::bump_xlate_gen(xlate_gens, pid);
        // Partial unmap of a huge mapping requires demotion first (the
        // THP-split cost the paper's §2.3 discussion refers to). Hugeness
        // is a property of the level-2 entry, so one check covers each
        // aligned 2 MB region.
        let mut vpn_raw = start.raw();
        let end = start.raw() + pages;
        while vpn_raw < end {
            let vpn = GuestVirtPage::new(vpn_raw);
            if proc.page_table.is_huge_mapping(vpn) {
                proc.page_table.demote(vpn, || buddy.alloc(0))?;
            }
            vpn_raw = (vpn_raw | (PT_ENTRIES - 1)) + 1;
        }
        let mut unmapped = Vec::with_capacity(pages as usize);
        for vpn in start.span(pages) {
            let Some(old) = proc.page_table.take(vpn) else {
                continue;
            };
            proc.rss_pages -= 1;
            let gfn = old.frame();
            if frame_refs.decr(gfn.raw()) == 0 {
                allocator.free(pid, vpn, gfn, buddy)?;
            }
            unmapped.push(vpn);
            stats.unmaps += 1;
        }
        Ok(unmapped)
    }

    /// Terminates `pid`, releasing its entire address space and any
    /// allocator-side per-process state.
    ///
    /// Returns the pages that had mappings (for TLB shootdown).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn exit(&mut self, pid: Pid) -> Result<Vec<GuestVirtPage>> {
        let regions: Vec<(GuestVirtPage, u64)> = self
            .process(pid)?
            .vmas
            .iter()
            .map(|v| (v.start, v.pages))
            .collect();
        let mut unmapped = Vec::new();
        for (start, pages) in regions {
            unmapped.extend(self.munmap(pid, start, pages)?);
        }
        // Free the page-table node frames.
        let proc = self.processes.remove(&pid).expect("checked above");
        for (frame, _level) in proc.page_table.node_frames() {
            self.buddy
                .free(frame, 0)
                .expect("PT node frames are order-0 buddy allocations");
        }
        self.allocator.exit(pid, &mut self.buddy);
        Self::bump_xlate_gen(&mut self.xlate_gens, pid);
        Ok(unmapped)
    }

    /// Immutable access to a process.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn process(&self, pid: Pid) -> Result<&Process> {
        self.processes
            .get(&pid)
            .ok_or(MemError::NoSuchProcess { pid: pid.0 })
    }

    /// Mutable access to a process.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn process_mut(&mut self, pid: Pid) -> Result<&mut Process> {
        self.processes
            .get_mut(&pid)
            .ok_or(MemError::NoSuchProcess { pid: pid.0 })
    }

    /// Iterates over all live processes in pid order.
    pub fn processes(&self) -> impl Iterator<Item = &Process> {
        self.processes.values()
    }

    /// Calls `f` for every mapped page of `pid`, in address order.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn for_each_mapped(
        &self,
        pid: Pid,
        mut f: impl FnMut(GuestVirtPage, GuestFrame),
    ) -> Result<()> {
        let proc = self.process(pid)?;
        for vma in &proc.vmas {
            for vpn in vma.iter_pages() {
                if let Some(gfn) = proc.page_table.translate(vpn) {
                    f(vpn, gfn);
                }
            }
        }
        Ok(())
    }

    /// The guest-physical buddy allocator.
    pub fn buddy(&self) -> &GuestBuddy {
        &self.buddy
    }

    /// Mutable access to the guest-physical buddy allocator — used by the
    /// fault-injection driver to install injectors and apply fragmentation
    /// shocks.
    pub fn buddy_mut(&mut self) -> &mut GuestBuddy {
        &mut self.buddy
    }

    /// The pluggable frame allocator.
    pub fn allocator(&self) -> &dyn GuestFrameAllocator {
        self.allocator.as_ref()
    }

    /// Kernel event counters.
    pub fn stats(&self) -> GuestStats {
        self.stats
    }

    /// The guest-frame reference-count table (fork/COW sharing).
    pub fn frame_refs(&self) -> &FrameRefTable {
        &self.frame_refs
    }

    /// Releases up to `target_frames` of reserved-but-unused frames
    /// (memory-pressure reclamation, §4.3).
    pub fn reclaim_reservations(&mut self, target_frames: u64) -> u64 {
        self.allocator.reclaim(&mut self.buddy, target_frames)
    }

    /// Notifies the allocator that the OS targeted `gfn` for swap or
    /// compaction (§4.4): a covering reservation, if any, is reclaimed.
    /// Returns the number of frames released to the buddy allocator.
    pub fn swap_target(&mut self, gfn: GuestFrame) -> u64 {
        self.allocator.on_frame_targeted(gfn, &mut self.buddy)
    }

    /// Artificially fragments free physical memory: allocates everything,
    /// then frees alternating aligned runs of `run_length` frames, keeping
    /// the rest pinned. Models a long-running VM whose free memory is
    /// externally fragmented — blocks up to order log2(`run_length`) remain
    /// available, larger ones do not. Returns the pinned frames; they stay
    /// unavailable until freed by the caller.
    ///
    /// # Panics
    ///
    /// Panics if `run_length` is zero or not a power of two.
    pub fn hold_fragmenting_pattern(&mut self, run_length: u64) -> Vec<GuestFrame> {
        assert!(
            run_length > 0 && run_length.is_power_of_two(),
            "run length must be a power of two"
        );
        let mut taken = Vec::new();
        while let Ok(f) = self.buddy.alloc(0) {
            taken.push(f);
        }
        let mut held = Vec::new();
        for f in taken {
            if (f.raw() / run_length).is_multiple_of(2) {
                self.buddy.free(f, 0).expect("just allocated");
            } else {
                held.push(f);
            }
        }
        held
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn os() -> GuestOs {
        GuestOs::new(4096, Box::new(DefaultAllocator::new()))
    }

    #[test]
    fn spawn_assigns_fresh_pids() {
        let mut g = os();
        let a = g.spawn();
        let b = g.spawn();
        assert_ne!(a, b);
        assert!(g.process(a).is_ok());
        assert!(g.process(Pid(999)).is_err());
    }

    #[test]
    fn mmap_creates_vma_without_touching_memory() {
        let mut g = os();
        let pid = g.spawn();
        let free_before = g.buddy().free_frames();
        let va = g.mmap(pid, 100).unwrap();
        assert_eq!(g.buddy().free_frames(), free_before);
        assert!(g.process(pid).unwrap().vmas.find(va.page()).is_some());
    }

    #[test]
    fn fault_maps_one_page_lazily() {
        let mut g = os();
        let pid = g.spawn();
        let va = g.mmap(pid, 8).unwrap();
        let info = g.page_fault(pid, va.page()).unwrap();
        assert_eq!(info.cost.buddy_calls, 1);
        assert!(info.pt_node_allocs >= 3, "fresh PT path built");
        assert_eq!(g.process(pid).unwrap().rss_pages, 1);
        assert_eq!(
            g.process(pid).unwrap().page_table.translate(va.page()),
            Some(info.gfn)
        );
    }

    #[test]
    fn fault_outside_vma_is_segfault() {
        let mut g = os();
        let pid = g.spawn();
        assert!(matches!(
            g.page_fault(pid, GuestVirtPage::new(0x1)),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn double_fault_is_rejected() {
        let mut g = os();
        let pid = g.spawn();
        let va = g.mmap(pid, 1).unwrap();
        g.page_fault(pid, va.page()).unwrap();
        assert!(matches!(
            g.page_fault(pid, va.page()),
            Err(MemError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn colocated_faults_interleave_frames() {
        // The phenomenon under study: two processes faulting alternately get
        // interleaved guest-physical frames with the default allocator.
        let mut g = os();
        let a = g.spawn();
        let b = g.spawn();
        let va_a = g.mmap(a, 8).unwrap();
        let va_b = g.mmap(b, 8).unwrap();
        let mut a_frames = Vec::new();
        for i in 0..8 {
            let fa = g
                .page_fault(a, GuestVirtPage::new(va_a.page().raw() + i))
                .unwrap();
            g.page_fault(b, GuestVirtPage::new(va_b.page().raw() + i))
                .unwrap();
            a_frames.push(fa.gfn.raw());
        }
        // A's frames are not contiguous (gaps where B's faults landed).
        assert!(a_frames.windows(2).any(|w| w[1] - w[0] > 1));
    }

    #[test]
    fn munmap_frees_frames_and_reports_pages() {
        let mut g = os();
        let pid = g.spawn();
        let va = g.mmap(pid, 4).unwrap();
        for i in 0..4 {
            g.page_fault(pid, GuestVirtPage::new(va.page().raw() + i))
                .unwrap();
        }
        let free_before = g.buddy().free_frames();
        let unmapped = g.munmap(pid, va.page(), 4).unwrap();
        assert_eq!(unmapped.len(), 4);
        assert_eq!(g.buddy().free_frames(), free_before + 4);
        assert_eq!(g.process(pid).unwrap().rss_pages, 0);
    }

    #[test]
    fn fork_shares_pages_cow() {
        let mut g = os();
        let parent = g.spawn();
        let va = g.mmap(parent, 2).unwrap();
        let f = g.page_fault(parent, va.page()).unwrap();
        let child = g.fork(parent).unwrap();
        // Same frame, both COW.
        let p_pte = g
            .process(parent)
            .unwrap()
            .page_table
            .lookup(va.page())
            .unwrap();
        let c_pte = g
            .process(child)
            .unwrap()
            .page_table
            .lookup(va.page())
            .unwrap();
        assert_eq!(p_pte.frame(), f.gfn);
        assert_eq!(c_pte.frame(), f.gfn);
        assert!(p_pte.is_cow() && c_pte.is_cow());
        assert!(!p_pte.is_writable() && !c_pte.is_writable());
        assert_eq!(g.process(child).unwrap().parent, Some(parent));
    }

    #[test]
    fn cow_break_copies_once() {
        let mut g = os();
        let parent = g.spawn();
        let va = g.mmap(parent, 1).unwrap();
        let f = g.page_fault(parent, va.page()).unwrap();
        let child = g.fork(parent).unwrap();
        // Child writes: gets a private copy.
        let (child_gfn, copied) = g.write_fault(child, va.page()).unwrap();
        assert!(copied);
        assert_ne!(child_gfn, f.gfn);
        // Parent writes: now sole owner, no copy needed.
        let (parent_gfn, copied2) = g.write_fault(parent, va.page()).unwrap();
        assert!(!copied2);
        assert_eq!(parent_gfn, f.gfn);
        let p_pte = g
            .process(parent)
            .unwrap()
            .page_table
            .lookup(va.page())
            .unwrap();
        assert!(p_pte.is_writable() && !p_pte.is_cow());
        assert_eq!(g.stats().cow_breaks, 1);
    }

    #[test]
    fn write_fault_on_private_page_is_noop() {
        let mut g = os();
        let pid = g.spawn();
        let va = g.mmap(pid, 1).unwrap();
        let f = g.page_fault(pid, va.page()).unwrap();
        let (gfn, copied) = g.write_fault(pid, va.page()).unwrap();
        assert_eq!(gfn, f.gfn);
        assert!(!copied);
    }

    #[test]
    fn shared_frame_freed_only_at_last_unmap() {
        let mut g = os();
        let parent = g.spawn();
        let va = g.mmap(parent, 1).unwrap();
        g.page_fault(parent, va.page()).unwrap();
        let child = g.fork(parent).unwrap();
        let free_before = g.buddy().free_frames();
        g.munmap(parent, va.page(), 1).unwrap();
        // Child still holds the frame.
        assert_eq!(g.buddy().free_frames(), free_before);
        g.munmap(child, va.page(), 1).unwrap();
        assert_eq!(g.buddy().free_frames(), free_before + 1);
    }

    #[test]
    fn exit_releases_everything() {
        let mut g = os();
        let pid = g.spawn();
        let va = g.mmap(pid, 16).unwrap();
        for i in 0..16 {
            g.page_fault(pid, GuestVirtPage::new(va.page().raw() + i))
                .unwrap();
        }
        let total = g.buddy().total_frames();
        g.exit(pid).unwrap();
        assert_eq!(g.buddy().free_frames(), total);
        assert!(g.process(pid).is_err());
    }

    #[test]
    fn for_each_mapped_visits_only_mapped_pages() {
        let mut g = os();
        let pid = g.spawn();
        let va = g.mmap(pid, 8).unwrap();
        g.page_fault(pid, va.page()).unwrap();
        g.page_fault(pid, GuestVirtPage::new(va.page().raw() + 3))
            .unwrap();
        let mut seen = Vec::new();
        g.for_each_mapped(pid, |vpn, _| seen.push(vpn.raw() - va.page().raw()))
            .unwrap();
        assert_eq!(seen, vec![0, 3]);
    }

    /// A toy THP-like allocator for exercising the huge-grant OS paths
    /// without depending on the `ptemagnet` crate (which sits above us).
    #[derive(Debug, Default)]
    struct ToyHuge;

    impl GuestFrameAllocator for ToyHuge {
        fn name(&self) -> &'static str {
            "toy-huge"
        }

        fn allocate(
            &mut self,
            _pid: Pid,
            _vpn: GuestVirtPage,
            buddy: &mut GuestBuddy,
        ) -> Result<(GuestFrame, AllocCost)> {
            Ok((buddy.alloc(0)?, AllocCost::default()))
        }

        fn allocate_grant(
            &mut self,
            pid: Pid,
            vpn: GuestVirtPage,
            huge_candidate: bool,
            buddy: &mut GuestBuddy,
        ) -> Result<(crate::guest::AllocGrant, AllocCost)> {
            if huge_candidate {
                if let Ok(chunk) = buddy.alloc(9) {
                    buddy.fragment_allocation(chunk, 9).unwrap();
                    return Ok((crate::guest::AllocGrant::Huge(chunk), AllocCost::default()));
                }
            }
            let (g, c) = self.allocate(pid, vpn, buddy)?;
            Ok((crate::guest::AllocGrant::Small(g), c))
        }

        fn free(
            &mut self,
            _pid: Pid,
            _vpn: GuestVirtPage,
            gfn: GuestFrame,
            buddy: &mut GuestBuddy,
        ) -> Result<()> {
            buddy.free(gfn, 0)
        }
    }

    fn huge_os() -> GuestOs {
        GuestOs::new(4096, Box::new(ToyHuge))
    }

    #[test]
    fn huge_fault_maps_whole_region() {
        let mut g = huge_os();
        let pid = g.spawn();
        let va = g.mmap(pid, 1024).unwrap();
        let info = g.page_fault(pid, va.page()).unwrap();
        assert!(info.huge);
        assert_eq!(g.process(pid).unwrap().rss_pages, 512);
        // Every page of the region translates without further faults.
        let pt = &g.process(pid).unwrap().page_table;
        assert!(pt.is_huge_mapping(va.page()));
        for i in 0..512u64 {
            assert!(pt
                .translate(GuestVirtPage::new(va.page().raw() + i))
                .is_some());
        }
        // Faulting inside the region again is AlreadyMapped.
        assert!(matches!(
            g.page_fault(pid, GuestVirtPage::new(va.page().raw() + 7)),
            Err(MemError::AlreadyMapped { .. })
        ));
    }

    #[test]
    fn small_region_is_not_a_huge_candidate() {
        let mut g = huge_os();
        let pid = g.spawn();
        let va = g.mmap(pid, 8).unwrap(); // smaller than 2 MB
        let info = g.page_fault(pid, va.page()).unwrap();
        assert!(!info.huge);
        assert_eq!(g.process(pid).unwrap().rss_pages, 1);
    }

    #[test]
    fn munmap_demotes_then_frees_everything() {
        let mut g = huge_os();
        let pid = g.spawn();
        let va = g.mmap(pid, 1024).unwrap();
        g.page_fault(pid, va.page()).unwrap();
        let before = g.buddy().free_frames();
        // Unmap half the huge region: demotion, then 256 frees.
        let unmapped = g.munmap(pid, va.page(), 256).unwrap();
        assert_eq!(unmapped.len(), 256);
        // 256 frames back, minus the new leaf node taken for demotion.
        assert_eq!(g.buddy().free_frames(), before + 256 - 1);
        assert_eq!(g.process(pid).unwrap().rss_pages, 256);
        assert!(!g
            .process(pid)
            .unwrap()
            .page_table
            .is_huge_mapping(GuestVirtPage::new(va.page().raw() + 300)));
    }

    #[test]
    fn fork_splits_huge_mappings_for_cow() {
        let mut g = huge_os();
        let parent = g.spawn();
        let va = g.mmap(parent, 1024).unwrap();
        g.page_fault(parent, va.page()).unwrap();
        let child = g.fork(parent).unwrap();
        // Post-fork both sides see 4 KB COW mappings of the same frames.
        let p_pte = g
            .process(parent)
            .unwrap()
            .page_table
            .lookup(va.page())
            .unwrap();
        assert!(!p_pte.is_huge());
        assert!(p_pte.is_cow());
        let (gfn, copied) = g.write_fault(child, va.page()).unwrap();
        assert!(copied);
        assert_ne!(gfn, p_pte.frame());
        // Exit both; everything returns.
        let total = g.buddy().total_frames();
        g.exit(child).unwrap();
        g.exit(parent).unwrap();
        assert_eq!(g.buddy().free_frames(), total);
    }

    #[test]
    fn xlate_gen_moves_only_on_mapping_mutations() {
        let mut g = os();
        let pid = g.spawn();
        assert_eq!(g.xlate_gen(pid), 0);
        let va = g.mmap(pid, 4).unwrap();
        // Filling empty slots never invalidates a cached translation.
        g.page_fault(pid, va.page()).unwrap();
        assert_eq!(g.xlate_gen(pid), 0);
        // Write fault on a private page mutates nothing.
        g.write_fault(pid, va.page()).unwrap();
        assert_eq!(g.xlate_gen(pid), 0);
        // Fork downgrades the parent's PTEs to COW.
        let child = g.fork(pid).unwrap();
        let after_fork = g.xlate_gen(pid);
        assert!(after_fork > 0);
        assert_eq!(g.xlate_gen(child), 0);
        // COW break (child) and restore-write (parent, sole owner) both bump.
        g.write_fault(child, va.page()).unwrap();
        assert_eq!(g.xlate_gen(child), 1);
        g.write_fault(pid, va.page()).unwrap();
        assert_eq!(g.xlate_gen(pid), after_fork + 1);
        // munmap and exit bump.
        let before = g.xlate_gen(pid);
        g.munmap(pid, va.page(), 1).unwrap();
        assert!(g.xlate_gen(pid) > before);
        let before = g.xlate_gen(child);
        g.exit(child).unwrap();
        assert!(g.xlate_gen(child) > before);
    }

    #[test]
    fn stats_count_events() {
        let mut g = os();
        let pid = g.spawn();
        let va = g.mmap(pid, 2).unwrap();
        g.page_fault(pid, va.page()).unwrap();
        g.fork(pid).unwrap();
        let s = g.stats();
        assert_eq!(s.faults, 1);
        assert_eq!(s.forks, 1);
        assert!(s.allocator_buddy_calls >= 1);
    }
}
