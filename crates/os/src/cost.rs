//! Cycle cost model for software events (page faults, allocator calls).
//!
//! Hardware access costs (cache/TLB/DRAM) come from
//! [`vmsim_cache::LatencyModel`]; this model covers the *software* side:
//! entering the fault handler, calling the buddy allocator, and probing
//! PTEMagnet's Page Reservation Table. The §6.4 allocation-latency result —
//! PTEMagnet slightly *faster* because 7 of 8 buddy calls become PaRT hits —
//! falls out of the relative cost of `buddy_call_cycles` vs
//! `part_lookup_cycles`.

use serde::{Deserialize, Serialize};

/// Cycle costs of software memory-management events.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Fixed cost of taking a guest page fault (trap + handler entry/exit).
    pub guest_fault_cycles: u64,
    /// Cost of one call into the buddy allocator (free-list manipulation,
    /// possible splits).
    pub buddy_call_cycles: u64,
    /// Cost of one PaRT radix-tree lookup (PTEMagnet fast path).
    pub part_lookup_cycles: u64,
    /// Fixed cost of a host-side (EPT violation) fault.
    pub host_fault_cycles: u64,
    /// Extra cost of a huge-page (2 MB) fault over a 4 KB fault: clearing
    /// 512 pages instead of one. This first-touch latency spike is one of
    /// the THP performance anomalies §2.3 cites.
    pub huge_fault_extra_cycles: u64,
    /// Base pipeline cost per instruction's memory access, excluding the
    /// memory hierarchy (models non-memory work between accesses).
    pub work_cycles_per_access: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // The fault cost is dominated by handler entry/exit and page
        // zeroing, with the allocator call a small slice of it — which is
        // why the paper's §6.4 microbenchmark sees only a ~0.5 % allocation
        // speedup from replacing 7 of 8 buddy calls with PaRT lookups.
        Self {
            guest_fault_cycles: 5000,
            buddy_call_cycles: 150,
            part_lookup_cycles: 100,
            host_fault_cycles: 6000,
            huge_fault_extra_cycles: 60_000,
            work_cycles_per_access: 6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn part_lookup_is_cheaper_than_buddy_call() {
        // The premise of §6.4: replacing buddy calls with PaRT lookups must
        // not slow allocation down.
        let c = CostModel::default();
        assert!(c.part_lookup_cycles < c.buddy_call_cycles);
    }

    #[test]
    fn faults_dominate_single_calls() {
        let c = CostModel::default();
        assert!(c.guest_fault_cycles > c.buddy_call_cycles);
        assert!(c.host_fault_cycles > c.guest_fault_cycles);
    }

    #[test]
    fn huge_faults_are_an_order_of_magnitude_heavier() {
        // Zeroing 2 MB vs 4 KB: the THP first-touch spike.
        let c = CostModel::default();
        assert!(c.huge_fault_extra_cycles > 8 * c.guest_fault_cycles);
    }
}
