//! Guest processes.

use serde::{Deserialize, Serialize};
use vmsim_pt::PageTable;
use vmsim_types::{GuestFrame, GuestVirtPage};

use crate::vma::VmaSet;

/// A guest process identifier (also used as the TLB ASID).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default, Serialize, Deserialize,
)]
pub struct Pid(pub u64);

impl core::fmt::Display for Pid {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pid{}", self.0)
    }
}

/// Default base of the mmap area, in pages (0x7f00_0000_0000 >> 12).
pub(crate) const MMAP_BASE: u64 = 0x7f00_0000_0000 >> vmsim_types::PAGE_SHIFT;

/// One guest process: its address space layout and page table.
///
/// The page table's nodes live in guest-physical frames taken from the guest
/// buddy allocator, so PT memory competes with data memory exactly as in a
/// real kernel.
#[derive(Clone, Debug)]
pub struct Process {
    /// Process identifier.
    pub pid: Pid,
    /// Eagerly allocated virtual regions.
    pub vmas: VmaSet,
    /// The process page table (guest-virtual → guest-physical).
    pub page_table: PageTable<GuestVirtPage, GuestFrame>,
    /// Bump cursor for placing new mmap regions, in pages.
    pub(crate) mmap_cursor: u64,
    /// Parent process, if this process was forked.
    pub parent: Option<Pid>,
    /// Resident pages (mapped in the page table).
    pub rss_pages: u64,
}

impl Process {
    /// Creates a process with an empty address space.
    ///
    /// `pt_root_alloc` supplies the frame for the page-table root node.
    pub fn new(
        pid: Pid,
        pt_root_alloc: impl FnMut() -> vmsim_types::Result<GuestFrame>,
    ) -> vmsim_types::Result<Self> {
        Ok(Self {
            pid,
            vmas: VmaSet::new(),
            page_table: PageTable::new(pt_root_alloc)?,
            mmap_cursor: MMAP_BASE,
            parent: None,
            rss_pages: 0,
        })
    }

    /// Reserves the next `pages`-page region of virtual address space,
    /// separated from the previous region by one guard page (so independent
    /// allocations never share a reservation group by accident).
    pub(crate) fn place_mmap(&mut self, pages: u64) -> GuestVirtPage {
        // Align each region to a reservation-group boundary, as glibc's mmap
        // threshold behaviour effectively does for large allocations.
        let aligned =
            (self.mmap_cursor + vmsim_types::GROUP_PAGES - 1) & !(vmsim_types::GROUP_PAGES - 1);
        self.mmap_cursor = aligned + pages + 1;
        GuestVirtPage::new(aligned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bump_alloc() -> impl FnMut() -> vmsim_types::Result<GuestFrame> {
        let mut next = 0u64;
        move || {
            next += 1;
            Ok(GuestFrame::new(next - 1))
        }
    }

    #[test]
    fn new_process_is_empty() {
        let p = Process::new(Pid(1), bump_alloc()).unwrap();
        assert!(p.vmas.is_empty());
        assert_eq!(p.rss_pages, 0);
        assert_eq!(p.page_table.stats().mapped_pages, 0);
        assert_eq!(p.parent, None);
    }

    #[test]
    fn mmap_placement_is_group_aligned_and_disjoint() {
        let mut p = Process::new(Pid(1), bump_alloc()).unwrap();
        let a = p.place_mmap(5);
        let b = p.place_mmap(3);
        assert_eq!(a.raw() % vmsim_types::GROUP_PAGES, 0);
        assert_eq!(b.raw() % vmsim_types::GROUP_PAGES, 0);
        assert!(b.raw() >= a.raw() + 5);
    }

    #[test]
    fn pid_displays_readably() {
        assert_eq!(Pid(7).to_string(), "pid7");
    }
}
