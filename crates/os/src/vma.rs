//! Virtual memory areas: eager virtual-address-space allocation.
//!
//! Linux hands out virtual address space eagerly on `mmap()`/`brk()` and
//! physical memory lazily on first touch (paper §2.2). A [`VmaSet`] models
//! the eager half: contiguous, non-overlapping page ranges per process.

use serde::{Deserialize, Serialize};
use vmsim_types::{GuestVirtPage, MemError, Result};

/// One contiguous region of a process's virtual address space.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vma {
    /// First page of the region.
    pub start: GuestVirtPage,
    /// Length in pages (never zero).
    pub pages: u64,
    /// Whether the region is writable.
    pub writable: bool,
}

impl Vma {
    /// Exclusive end page of the region.
    pub fn end(&self) -> GuestVirtPage {
        GuestVirtPage::new(self.start.raw() + self.pages)
    }

    /// Whether `vpn` falls inside the region.
    pub fn contains(&self, vpn: GuestVirtPage) -> bool {
        vpn >= self.start && vpn < self.end()
    }

    /// Iterates over every page of the region.
    pub fn iter_pages(&self) -> impl Iterator<Item = GuestVirtPage> {
        self.start.span(self.pages)
    }
}

/// The ordered, non-overlapping set of VMAs of one process.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct VmaSet {
    /// Regions sorted by start page.
    regions: Vec<Vma>,
}

impl VmaSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a region at a fixed address.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidVma`] if `pages` is zero or the region
    /// would overlap an existing one.
    pub fn insert(&mut self, start: GuestVirtPage, pages: u64, writable: bool) -> Result<()> {
        if pages == 0 {
            return Err(MemError::InvalidVma);
        }
        let vma = Vma {
            start,
            pages,
            writable,
        };
        let idx = self.regions.partition_point(|r| r.start < start);
        let overlaps_prev = idx > 0 && self.regions[idx - 1].end() > start;
        let overlaps_next = idx < self.regions.len() && vma.end() > self.regions[idx].start;
        if overlaps_prev || overlaps_next {
            return Err(MemError::InvalidVma);
        }
        self.regions.insert(idx, vma);
        Ok(())
    }

    /// The VMA containing `vpn`, if any.
    pub fn find(&self, vpn: GuestVirtPage) -> Option<&Vma> {
        let idx = self.regions.partition_point(|r| r.start <= vpn);
        idx.checked_sub(1)
            .map(|i| &self.regions[i])
            .filter(|r| r.contains(vpn))
    }

    /// Removes exactly the pages `[start, start + pages)`, splitting VMAs
    /// that straddle the boundary (as `munmap` does).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::InvalidVma`] if `pages` is zero or any page in the
    /// range is not covered by a VMA.
    pub fn remove(&mut self, start: GuestVirtPage, pages: u64) -> Result<()> {
        if pages == 0 {
            return Err(MemError::InvalidVma);
        }
        let end = start.raw() + pages;
        // Every page of the range must be covered.
        let mut covered = 0u64;
        for r in &self.regions {
            let lo = r.start.raw().max(start.raw());
            let hi = r.end().raw().min(end);
            if hi > lo {
                covered += hi - lo;
            }
        }
        if covered != pages {
            return Err(MemError::InvalidVma);
        }
        let mut rebuilt = Vec::with_capacity(self.regions.len() + 1);
        for r in self.regions.drain(..) {
            let r_start = r.start.raw();
            let r_end = r.end().raw();
            if r_end <= start.raw() || r_start >= end {
                rebuilt.push(r);
                continue;
            }
            if r_start < start.raw() {
                rebuilt.push(Vma {
                    start: r.start,
                    pages: start.raw() - r_start,
                    writable: r.writable,
                });
            }
            if r_end > end {
                rebuilt.push(Vma {
                    start: GuestVirtPage::new(end),
                    pages: r_end - end,
                    writable: r.writable,
                });
            }
        }
        self.regions = rebuilt;
        Ok(())
    }

    /// Iterates over the regions in address order.
    pub fn iter(&self) -> impl Iterator<Item = &Vma> {
        self.regions.iter()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the set has no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// Total pages across all regions.
    pub fn total_pages(&self) -> u64 {
        self.regions.iter().map(|r| r.pages).sum()
    }
}

impl<'a> IntoIterator for &'a VmaSet {
    type Item = &'a Vma;
    type IntoIter = core::slice::Iter<'a, Vma>;

    fn into_iter(self) -> Self::IntoIter {
        self.regions.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: u64) -> GuestVirtPage {
        GuestVirtPage::new(n)
    }

    #[test]
    fn insert_and_find() {
        let mut s = VmaSet::new();
        s.insert(page(100), 10, true).unwrap();
        assert!(s.find(page(100)).is_some());
        assert!(s.find(page(109)).is_some());
        assert!(s.find(page(110)).is_none());
        assert!(s.find(page(99)).is_none());
        assert_eq!(s.total_pages(), 10);
    }

    #[test]
    fn zero_length_rejected() {
        let mut s = VmaSet::new();
        assert_eq!(s.insert(page(0), 0, true), Err(MemError::InvalidVma));
        assert_eq!(s.remove(page(0), 0), Err(MemError::InvalidVma));
    }

    #[test]
    fn overlap_rejected() {
        let mut s = VmaSet::new();
        s.insert(page(100), 10, true).unwrap();
        assert!(s.insert(page(105), 10, true).is_err());
        assert!(s.insert(page(95), 10, true).is_err());
        assert!(s.insert(page(100), 10, true).is_err());
        // Adjacent is fine.
        assert!(s.insert(page(110), 5, true).is_ok());
        assert!(s.insert(page(90), 10, true).is_ok());
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn remove_whole_region() {
        let mut s = VmaSet::new();
        s.insert(page(100), 10, true).unwrap();
        s.remove(page(100), 10).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn remove_splits_region() {
        let mut s = VmaSet::new();
        s.insert(page(100), 10, true).unwrap();
        s.remove(page(103), 4).unwrap();
        assert_eq!(s.len(), 2);
        assert!(s.find(page(102)).is_some());
        assert!(s.find(page(103)).is_none());
        assert!(s.find(page(106)).is_none());
        assert!(s.find(page(107)).is_some());
        assert_eq!(s.total_pages(), 6);
    }

    #[test]
    fn remove_across_regions() {
        let mut s = VmaSet::new();
        s.insert(page(100), 5, true).unwrap();
        s.insert(page(105), 5, true).unwrap();
        s.remove(page(103), 4).unwrap();
        assert_eq!(s.total_pages(), 6);
    }

    #[test]
    fn remove_uncovered_range_fails() {
        let mut s = VmaSet::new();
        s.insert(page(100), 5, true).unwrap();
        assert_eq!(s.remove(page(103), 4), Err(MemError::InvalidVma));
        // Untouched on failure.
        assert_eq!(s.total_pages(), 5);
    }

    #[test]
    fn iter_pages_covers_region() {
        let v = Vma {
            start: page(3),
            pages: 4,
            writable: true,
        };
        let pages: Vec<u64> = v.iter_pages().map(|p| p.raw()).collect();
        assert_eq!(pages, vec![3, 4, 5, 6]);
    }
}
