//! The hypervisor / host-kernel model.
//!
//! With KVM-style virtualization the VM is just a host process, and the VM's
//! guest-physical memory is one contiguous region of that process's virtual
//! address space (paper §3.1): `host-virtual = vm_base + guest-physical`.
//! Host-physical frames back that region lazily, on first access, through
//! the host's own page table — the "host PT" whose cache footprint the paper
//! is about.

use serde::{Deserialize, Serialize};
use vmsim_buddy::BuddyAllocator;
use vmsim_pt::{PageTable, WalkPath};
use vmsim_types::{GuestFrame, HostFrame, HostVirtPage, MemError, Result};

use crate::frames::FrameRefTable;

/// Host-kernel event counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostStats {
    /// Host-side (EPT-violation-style) faults served.
    pub faults: u64,
}

impl vmsim_obs::MetricSource for HostStats {
    fn source_name(&self) -> &'static str {
        "host"
    }

    fn emit(&self, out: &mut Vec<vmsim_obs::Metric>) {
        out.push(vmsim_obs::Metric::u64("faults", self.faults));
    }
}

/// The host OS: host-physical pool, the VM's host page table, and the
/// guest-physical → host-virtual identity.
#[derive(Debug)]
pub struct HostOs {
    buddy: BuddyAllocator<HostFrame>,
    host_pt: PageTable<HostVirtPage, HostFrame>,
    vm_base: HostVirtPage,
    /// Reference counts for host data frames, indexed by host frame number.
    /// Every mapping installed through the host PT holds one reference;
    /// page-table node frames are owned by the table itself and stay
    /// untracked.
    frame_refs: FrameRefTable,
    stats: HostStats,
}

impl HostOs {
    /// Creates a host managing `total_frames` of host-physical memory, with
    /// the VM's guest-physical range mapped at host-virtual page `vm_base`.
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is zero (no room for the host PT root).
    pub fn new(total_frames: u64, vm_base: HostVirtPage) -> Self {
        let mut buddy = BuddyAllocator::new(total_frames);
        let host_pt = PageTable::new(|| buddy.alloc(0)).expect("host OOM at boot");
        Self {
            buddy,
            host_pt,
            vm_base,
            frame_refs: FrameRefTable::new(total_frames),
            stats: HostStats::default(),
        }
    }

    /// The host-virtual page corresponding to guest frame `gfn`.
    #[inline]
    pub fn hvpn_of(&self, gfn: GuestFrame) -> HostVirtPage {
        HostVirtPage::new(self.vm_base.raw() + gfn.raw())
    }

    /// Base of the VM's guest-physical region in host-virtual space.
    pub fn vm_base(&self) -> HostVirtPage {
        self.vm_base
    }

    /// Looks up the host frame backing `hvpn`, if already faulted in.
    pub fn translate(&self, hvpn: HostVirtPage) -> Option<HostFrame> {
        self.host_pt.translate(hvpn)
    }

    /// Serves a host fault: backs `hvpn` with a fresh order-0 host frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::AlreadyMapped`] if the page is already backed and
    /// [`MemError::OutOfMemory`] if the host pool is exhausted.
    pub fn fault(&mut self, hvpn: HostVirtPage) -> Result<HostFrame> {
        if self.host_pt.lookup(hvpn).is_some() {
            return Err(MemError::AlreadyMapped { vpn: hvpn.raw() });
        }
        self.fault_unchecked(hvpn)
    }

    /// [`HostOs::fault`] for a page the caller has just proven unmapped,
    /// skipping the presence re-check's table descent (hot backing path).
    pub(crate) fn fault_unchecked(&mut self, hvpn: HostVirtPage) -> Result<HostFrame> {
        let hfn = self.buddy.alloc(0)?;
        let Self { buddy, host_pt, .. } = self;
        host_pt.map(hvpn, hfn, || buddy.alloc(0))?;
        self.frame_refs.set_one(hfn.raw());
        self.stats.faults += 1;
        Ok(hfn)
    }

    /// Removes the backing of `hvpn`, releasing the host frame once its last
    /// reference drops. Returns the frame that was mapped, if any. The leaf
    /// page-table nodes stay allocated — the slot can be re-faulted cheaply,
    /// which is exactly what happens when a VM slot is recycled.
    pub fn unback_page(&mut self, hvpn: HostVirtPage) -> Option<HostFrame> {
        let pte = self.host_pt.take(hvpn)?;
        let hfn = pte.frame();
        if self.frame_refs.decr(hfn.raw()) == 0 {
            self.buddy
                .free(hfn, 0)
                .expect("host data frames are order-0 buddy allocations");
        }
        Some(hfn)
    }

    /// Returns the host frame backing guest frame `gfn`, faulting it in if
    /// needed. The boolean reports whether a fault occurred.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if a needed fault cannot be served.
    pub fn back_guest_frame(&mut self, gfn: GuestFrame) -> Result<(HostFrame, bool)> {
        self.back_page(self.hvpn_of(gfn))
    }

    /// Returns the host frame backing host-virtual page `hvpn`, faulting it
    /// in if needed — the general form of [`HostOs::back_guest_frame`] used
    /// by multi-tenant hosts where each VM has its own base.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfMemory`] if a needed fault cannot be served.
    pub fn back_page(&mut self, hvpn: HostVirtPage) -> Result<(HostFrame, bool)> {
        if let Some(hfn) = self.translate(hvpn) {
            return Ok((hfn, false));
        }
        Ok((self.fault_unchecked(hvpn)?, true))
    }

    /// The host page table's walk path for `hvpn` (entry addresses are
    /// host-physical).
    pub fn walk_path(&self, hvpn: HostVirtPage) -> WalkPath<HostFrame> {
        self.host_pt.walk_path(hvpn)
    }

    /// Single-descent combination of [`HostOs::walk_path`] and
    /// [`HostOs::translate`].
    pub fn walk_translate(&self, hvpn: HostVirtPage) -> (WalkPath<HostFrame>, Option<HostFrame>) {
        self.host_pt.walk_translate(hvpn)
    }

    /// Host-physical byte address of the host PTE for `hvpn`, if its leaf
    /// node exists. The cache line of this address is what the host-PT
    /// fragmentation metric counts.
    pub fn hpte_addr_raw(&self, hvpn: HostVirtPage) -> Option<u64> {
        self.host_pt.pte_addr_raw(hvpn)
    }

    /// The host page table.
    pub fn host_pt(&self) -> &PageTable<HostVirtPage, HostFrame> {
        &self.host_pt
    }

    /// The host-physical buddy allocator.
    pub fn buddy(&self) -> &BuddyAllocator<HostFrame> {
        &self.buddy
    }

    /// Host event counters.
    pub fn stats(&self) -> HostStats {
        self.stats
    }

    /// The host-frame reference-count table.
    pub fn frame_refs(&self) -> &FrameRefTable {
        &self.frame_refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host() -> HostOs {
        HostOs::new(4096, HostVirtPage::new(0x10_0000))
    }

    #[test]
    fn hvpn_is_vm_base_plus_gfn() {
        let h = host();
        assert_eq!(h.hvpn_of(GuestFrame::new(5)).raw(), 0x10_0000 + 5);
    }

    #[test]
    fn fault_backs_page_once() {
        let mut h = host();
        let hvpn = HostVirtPage::new(0x10_0000);
        let hfn = h.fault(hvpn).unwrap();
        assert_eq!(h.translate(hvpn), Some(hfn));
        assert!(matches!(h.fault(hvpn), Err(MemError::AlreadyMapped { .. })));
        assert_eq!(h.stats().faults, 1);
    }

    #[test]
    fn back_guest_frame_is_idempotent() {
        let mut h = host();
        let (a, faulted_a) = h.back_guest_frame(GuestFrame::new(3)).unwrap();
        let (b, faulted_b) = h.back_guest_frame(GuestFrame::new(3)).unwrap();
        assert_eq!(a, b);
        assert!(faulted_a);
        assert!(!faulted_b);
    }

    #[test]
    fn contiguous_gfns_get_adjacent_hptes() {
        // Host PTE locality depends only on guest-physical contiguity: the
        // hPTEs of adjacent gfns sit 8 bytes apart in the same leaf node.
        let mut h = host();
        h.back_guest_frame(GuestFrame::new(8)).unwrap();
        h.back_guest_frame(GuestFrame::new(9)).unwrap();
        let a = h.hpte_addr_raw(h.hvpn_of(GuestFrame::new(8))).unwrap();
        let b = h.hpte_addr_raw(h.hvpn_of(GuestFrame::new(9))).unwrap();
        assert_eq!(b - a, 8);
        assert_eq!(a / 64, b / 64, "same cache line");
    }

    #[test]
    fn scattered_gfns_get_scattered_hptes() {
        let mut h = host();
        h.back_guest_frame(GuestFrame::new(0)).unwrap();
        h.back_guest_frame(GuestFrame::new(64)).unwrap();
        let a = h.hpte_addr_raw(h.hvpn_of(GuestFrame::new(0))).unwrap();
        let b = h.hpte_addr_raw(h.hvpn_of(GuestFrame::new(64))).unwrap();
        assert_ne!(a / 64, b / 64, "different cache lines");
    }

    #[test]
    fn host_oom_propagates_cleanly() {
        // 4 frames: root node takes one; first fault takes a data frame and
        // up to 3 PT nodes — the pool runs dry mid-mapping and the error
        // surfaces instead of panicking.
        let mut h = HostOs::new(4, HostVirtPage::new(0x10_0000));
        let r = h.fault(HostVirtPage::new(0x10_0000));
        assert!(matches!(r, Err(MemError::OutOfMemory { .. })));
    }

    #[test]
    fn distant_hvpns_live_in_distinct_leaf_nodes() {
        let mut h = HostOs::new(4096, HostVirtPage::new(0));
        h.fault(HostVirtPage::new(0)).unwrap();
        h.fault(HostVirtPage::new(512)).unwrap();
        let a = h.hpte_addr_raw(HostVirtPage::new(0)).unwrap();
        let b = h.hpte_addr_raw(HostVirtPage::new(512)).unwrap();
        assert_ne!(a >> 12, b >> 12, "different leaf node frames");
    }

    #[test]
    fn stats_and_accessors_are_consistent() {
        let mut h = host();
        assert_eq!(h.vm_base().raw(), 0x10_0000);
        assert_eq!(h.stats().faults, 0);
        h.back_guest_frame(GuestFrame::new(0)).unwrap();
        h.back_guest_frame(GuestFrame::new(1)).unwrap();
        assert_eq!(h.stats().faults, 2);
        assert_eq!(h.host_pt().stats().mapped_pages, 2);
        // Host pool accounting: 2 data frames + root + walk nodes.
        let used = h.buddy().total_frames() - h.buddy().free_frames();
        assert!(used >= 2 + 1 + 3);
    }

    #[test]
    fn unback_releases_frame_and_refcount() {
        let mut h = host();
        let hvpn = h.hvpn_of(GuestFrame::new(7));
        let (hfn, faulted) = h.back_page(hvpn).unwrap();
        assert!(faulted);
        assert_eq!(h.frame_refs().get(hfn.raw()), 1);
        let free_before = h.buddy().free_frames();
        assert_eq!(h.unback_page(hvpn), Some(hfn));
        assert_eq!(h.frame_refs().get(hfn.raw()), 0);
        assert_eq!(h.buddy().free_frames(), free_before + 1);
        assert_eq!(h.translate(hvpn), None);
        assert_eq!(h.unback_page(hvpn), None, "second unback is a no-op");
        // The slot can be re-faulted afterwards, reusing the leaf node.
        let (hfn2, refaulted) = h.back_page(hvpn).unwrap();
        assert!(refaulted);
        assert_eq!(h.frame_refs().get(hfn2.raw()), 1);
    }

    #[test]
    fn walk_path_exists_after_fault() {
        let mut h = host();
        let hvpn = h.hvpn_of(GuestFrame::new(1));
        assert!(!h.walk_path(hvpn).complete);
        h.fault(hvpn).unwrap();
        assert!(h.walk_path(hvpn).complete);
    }
}
