//! Dense physical-frame reference counting.
//!
//! Both memory layers need to know how many mappings point at a physical
//! frame: the guest kernel shares guest frames across processes after a
//! fork (COW, §4.4), and a multi-tenant host shares host frames across the
//! page tables of colocated VMs. Historically each layer kept an ad-hoc
//! `Vec<u32>` (or nothing at all, on the host side); [`FrameRefTable`]
//! centralizes the bookkeeping behind one audited interface, in the style
//! of a kernel's physical-page reference counter.
//!
//! The table is deliberately dumb: a dense `Vec<u32>` indexed by frame
//! number. Every transition is checked — dropping a reference on an
//! untracked frame, or re-initializing a frame that still has owners, is a
//! logic bug upstream and panics loudly rather than corrupting accounting.

/// Dense per-frame reference counts for one physical address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameRefTable {
    refs: Vec<u32>,
}

impl FrameRefTable {
    /// An all-zero table covering `frames` physical frames.
    #[must_use]
    pub fn new(frames: u64) -> Self {
        Self {
            refs: vec![0; frames as usize],
        }
    }

    /// Number of frames the table covers.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.refs.len() as u64
    }

    /// True when the table covers zero frames.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Current reference count of `frame`.
    #[must_use]
    pub fn get(&self, frame: u64) -> u32 {
        self.refs[frame as usize]
    }

    /// True when more than one mapping references `frame`.
    #[must_use]
    pub fn is_shared(&self, frame: u64) -> bool {
        self.refs[frame as usize] > 1
    }

    /// Initializes `frame` with exactly one owner.
    ///
    /// # Panics
    ///
    /// Panics if the frame is already referenced — a frame must be fully
    /// released before it can be handed out again.
    pub fn set_one(&mut self, frame: u64) {
        let r = &mut self.refs[frame as usize];
        assert_eq!(*r, 0, "frame {frame} re-initialized with {r} live refs");
        *r = 1;
    }

    /// Adds a reference to an already-tracked frame, returning the new
    /// count.
    ///
    /// # Panics
    ///
    /// Panics if the frame had no owner: sharing starts from an existing
    /// mapping, never from thin air.
    pub fn incr(&mut self, frame: u64) -> u32 {
        let r = &mut self.refs[frame as usize];
        assert!(*r > 0, "frame {frame} shared while unreferenced");
        *r += 1;
        *r
    }

    /// Drops a reference, returning the remaining count (0 means the frame
    /// is now free to return to its allocator).
    ///
    /// # Panics
    ///
    /// Panics on a frame with no live references (double free).
    pub fn decr(&mut self, frame: u64) -> u32 {
        let r = &mut self.refs[frame as usize];
        assert!(*r > 0, "frame {frame} released below zero refs");
        *r -= 1;
        *r
    }

    /// Number of frames with at least one live reference.
    #[must_use]
    pub fn referenced_frames(&self) -> u64 {
        self.refs.iter().filter(|&&r| r > 0).count() as u64
    }

    /// Total live references across all frames.
    #[must_use]
    pub fn total_refs(&self) -> u64 {
        self.refs.iter().map(|&r| u64::from(r)).sum()
    }

    /// Resets every count to zero (the owning address space was torn down
    /// wholesale, e.g. a VM kill).
    pub fn clear(&mut self) {
        self.refs.fill(0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_counts_up_and_down() {
        let mut t = FrameRefTable::new(8);
        assert_eq!(t.len(), 8);
        assert_eq!(t.get(3), 0);
        t.set_one(3);
        assert!(!t.is_shared(3));
        assert_eq!(t.incr(3), 2);
        assert!(t.is_shared(3));
        assert_eq!(t.referenced_frames(), 1);
        assert_eq!(t.total_refs(), 2);
        assert_eq!(t.decr(3), 1);
        assert_eq!(t.decr(3), 0);
        assert_eq!(t.referenced_frames(), 0);
    }

    #[test]
    #[should_panic(expected = "re-initialized")]
    fn double_init_panics() {
        let mut t = FrameRefTable::new(2);
        t.set_one(0);
        t.set_one(0);
    }

    #[test]
    #[should_panic(expected = "below zero")]
    fn double_free_panics() {
        let mut t = FrameRefTable::new(2);
        t.decr(1);
    }

    #[test]
    #[should_panic(expected = "unreferenced")]
    fn sharing_untracked_frame_panics() {
        let mut t = FrameRefTable::new(2);
        t.incr(0);
    }

    #[test]
    fn clear_releases_everything() {
        let mut t = FrameRefTable::new(4);
        t.set_one(0);
        t.set_one(2);
        t.incr(2);
        t.clear();
        assert_eq!(t.referenced_frames(), 0);
        t.set_one(0); // legal again after clear
    }
}
