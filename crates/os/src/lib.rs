//! Guest OS, host OS (hypervisor), and assembled virtual machine models.
//!
//! This crate provides the operating-system substrate the paper's mechanism
//! lives in:
//!
//! * [`vma`] — eager virtual-address-space allocation (`mmap`-style regions);
//! * [`process`] — guest processes, each with its own VMA set and its own
//!   radix page table materialized in guest-physical frames;
//! * [`guest`] — the guest kernel: lazy page-fault-driven physical
//!   allocation through a pluggable [`GuestFrameAllocator`] (the default
//!   Linux-like order-0 allocator lives here; PTEMagnet plugs in from the
//!   `ptemagnet` crate), plus fork/COW semantics (§4.4);
//! * [`host`] — the hypervisor/host-kernel model: the VM is a host process
//!   whose virtual memory *is* guest-physical memory (§3.1), backed lazily by
//!   host frames and translated by a host page table;
//! * [`machine`] — the assembled VM: guest + host + cache hierarchy + TLBs +
//!   page-walk caches, with the nested (2D) page-walk engine that charges
//!   every page-table access to the cache model (§2.5's up-to-24-access
//!   walk).
//!
//! # Examples
//!
//! ```
//! use vmsim_os::{Machine, MachineConfig};
//!
//! # fn main() -> Result<(), vmsim_types::MemError> {
//! let mut m = Machine::new(MachineConfig::small());
//! let pid = m.guest_mut().spawn();
//! let va = m.guest_mut().mmap(pid, 16)?; // 16 pages of virtual memory
//! let out = m.touch(0, pid, va, false)?; // first touch: faults + walks
//! assert!(out.faulted);
//! let again = m.touch(0, pid, va, false)?;
//! assert!(again.tlb_hit);
//! # Ok(())
//! # }
//! ```

pub mod cost;
pub mod frames;
pub mod guest;
pub mod host;
pub mod machine;
pub mod process;
pub mod vma;

pub use cost::CostModel;
pub use frames::FrameRefTable;
pub use guest::{
    resolve_os_policy, AllocCost, AllocGrant, DefaultAllocator, GuestBuddy, GuestFrameAllocator,
    GuestOs, OS_POLICY_NAMES,
};
pub use host::HostOs;
pub use machine::{Machine, MachineConfig, MemoStats, TouchOutcome};
pub use process::{Pid, Process};
pub use vma::{Vma, VmaSet};
