//! The assembled virtual machine: guest OS + host OS + hardware models,
//! including the nested (2D) page-walk engine.
//!
//! [`Machine::touch`] is the simulator's inner loop: it plays one memory
//! access by one guest process on one core, serving guest/host page faults,
//! consulting the TLB, performing the nested walk on a miss (charging every
//! page-table access to the cache hierarchy), and finally accessing the data
//! line — returning the total cycle cost. The up-to-24-access structure of a
//! 2D walk (paper §2.5: 4 guest-PT accesses, each needing up to 4 host-PT
//! accesses, plus a final host walk for the data page) arises naturally;
//! page-walk caches and the nested TLB short-circuit most upper-level
//! accesses exactly as hardware does, leaving leaf PTE fetches dominant.

use serde::{Deserialize, Serialize};
use vmsim_buddy::FragmentationIndex;
use vmsim_cache::{
    AccessKind, CacheHierarchy, HierarchyConfig, Histogram, PageWalkCaches, PwcConfig, Tlb,
    TlbConfig,
};
use vmsim_obs::Phase;
use vmsim_pt::LineCensus;
use vmsim_types::{
    FaultInjector, FaultPlan, GuestFrame, GuestVirtAddr, GuestVirtPage, HostFrame, HostPhysAddr,
    HostVirtPage, MemError, Result, GROUP_PAGES, PAGE_SHIFT, PTE_SIZE, PT_LEVELS,
};

use crate::cost::CostModel;
use crate::guest::{DefaultAllocator, GuestFrameAllocator, GuestOs};
use crate::host::HostOs;
use crate::process::Pid;

/// Full machine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Guest-physical frames (VM RAM size in pages).
    pub guest_frames: u64,
    /// Host-physical frames (machine RAM size in pages).
    pub host_frames: u64,
    /// Host-virtual page where the VM's guest-physical range is mapped.
    pub vm_base: u64,
    /// Cache hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Page-walk-cache / nested-TLB geometry.
    pub pwc: PwcConfig,
    /// Software event costs.
    pub cost: CostModel,
}

impl MachineConfig {
    /// A small configuration for unit tests and examples: 64 MB guest RAM,
    /// tiny caches, 2 cores.
    pub fn small() -> Self {
        Self {
            guest_frames: 1 << 14,
            host_frames: 1 << 15,
            vm_base: 1 << 20,
            hierarchy: HierarchyConfig::tiny(2),
            tlb: TlbConfig::default(),
            pwc: PwcConfig::default(),
            cost: CostModel::default(),
        }
    }

    /// A scaled-down version of the paper's platform (Table 2): Broadwell
    /// cache geometry with `cores` cores and `guest_mb` of VM RAM (the
    /// evaluation scales the paper's 64 GB VM by keeping the ratio of
    /// workload footprint to LLC capacity in the same regime).
    pub fn paper(cores: usize, guest_mb: u64) -> Self {
        let guest_frames = guest_mb * 256; // 256 pages per MB
        Self {
            guest_frames,
            host_frames: guest_frames * 2,
            vm_base: 1 << 24,
            hierarchy: HierarchyConfig::broadwell(cores),
            tlb: TlbConfig::default(),
            pwc: PwcConfig::default(),
            cost: CostModel::default(),
        }
    }
}

/// Outcome of one [`Machine::touch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Total cycles charged for the access (software + hardware).
    pub cycles: u64,
    /// Whether the translation hit in the TLB.
    pub tlb_hit: bool,
    /// Whether a guest page fault was served.
    pub faulted: bool,
    /// Whether a COW break copied the page.
    pub cow_break: bool,
    /// Host faults served while backing frames for this access.
    pub host_faults: u32,
}

/// Number of slots in each core's direct-mapped memo table (power of two).
const MEMO_SLOTS: usize = 4096;

/// One memoized translation: the proof that a repeat touch of `va` by `pid`
/// is a pure TLB-L1 + data-L1 hit whose only observable effects are counter
/// increments and a fixed cycle charge.
///
/// The proof is a fingerprint of everything the warm path depends on:
/// the process's translation generation (mapping + COW state unchanged),
/// the TLB-L1 set epoch (entry still resident and still MRU, so its LRU
/// promotion is a no-op), and the data-L1 set epoch (likewise for the data
/// line). Any intervening activity that could change the outcome bumps one
/// of the three, and the slot silently stops matching.
#[derive(Clone, Copy, Debug)]
struct MemoSlot {
    /// Owning process; 0 marks an empty slot (pids start at 1).
    pid: u64,
    /// The exact virtual address (page + offset: the offset picks the data
    /// cache line).
    va: u64,
    /// [`GuestOs::xlate_gen`] of `pid` at fill time.
    gen: u64,
    /// L1 TLB set of the translation, captured at fill so validation needs
    /// no lookup.
    tlb_set: u32,
    /// L1 data-cache set of the data line, likewise.
    data_set: u32,
    /// [`Tlb::l1_set_epoch_at`] of `tlb_set` at fill time.
    tlb_epoch: u64,
    /// [`CacheHierarchy::l1_set_epoch_at`] of `data_set` at fill time.
    data_epoch: u64,
    /// Whether a *write* can replay: the page is mapped writable (not COW).
    /// Reads replay regardless.
    write_ok: bool,
}

impl MemoSlot {
    const EMPTY: Self = Self {
        pid: 0,
        va: 0,
        gen: 0,
        tlb_set: 0,
        data_set: 0,
        tlb_epoch: 0,
        data_epoch: 0,
        write_ok: false,
    };
}

/// Counters of the memo layer, reported separately from
/// [`Machine::metrics_snapshot`] so memoization stays invisible to the
/// simulation's observable state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoStats {
    /// Touches replayed from a memo slot (full fingerprint validation).
    pub hits: u64,
    /// Touches replayed by the [`Machine::touch_run`] same-page streak path
    /// (no fingerprint validation needed).
    pub streak_hits: u64,
    /// Memo slots (re)filled after a slow-path touch.
    pub fills: u64,
    /// Touches served by the full naive path (faults, TLB, walks).
    pub naive_walks: u64,
    /// Whole-table clears (fault-plan trigger fired, translation state
    /// flushed, or a plan was installed).
    pub clears: u64,
}

/// One tenant VM on the host: its guest kernel plus its slot in the host's
/// virtual address space. A classic single-guest [`Machine`] is simply a
/// host with one `GuestVm` whose slot starts at `config.vm_base`.
#[derive(Debug)]
pub struct GuestVm {
    guest: GuestOs,
    /// First host-virtual page of this VM's guest-physical slot; guest
    /// frame `g` of this VM lives at host-virtual page `base + g`.
    base: HostVirtPage,
    /// Guest frames pinned by the balloon driver: allocated from the guest
    /// buddy (so the guest cannot use them) with their host backing
    /// released (so the host can hand the frames to other VMs).
    ballooned: Vec<GuestFrame>,
    /// Times this VM slot has booted (1 after construction).
    boots: u64,
    /// False between a kill and the next boot.
    running: bool,
}

impl GuestVm {
    fn new(guest: GuestOs, base: HostVirtPage) -> Self {
        Self {
            guest,
            base,
            ballooned: Vec::new(),
            boots: 1,
            running: true,
        }
    }
}

/// Per-VM allocator factory for multi-tenant machines: rebooting a VM slot
/// needs a fresh policy instance, so the machine keeps the recipe, not just
/// the product.
struct AllocFactory(Box<dyn Fn(usize) -> Box<dyn GuestFrameAllocator>>);

impl std::fmt::Debug for AllocFactory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AllocFactory")
    }
}

/// The assembled machine: one host plus its tenant VMs and hardware state.
///
/// The classic constructors ([`Machine::new`], [`Machine::with_allocator`])
/// build a single-tenant machine and every historical accessor
/// ([`Machine::guest`], [`Machine::touch`], …) operates on VM 0, so
/// existing callers observe bit-identical behaviour. A multi-tenant host
/// is built with [`Machine::multi_tenant`] and driven through the
/// `*_vm` methods plus the VM lifecycle API ([`Machine::kill_vm`],
/// [`Machine::boot_vm`], [`Machine::balloon_vm`]).
#[derive(Debug)]
pub struct Machine {
    vms: Vec<GuestVm>,
    host: HostOs,
    /// Recipe for per-VM allocators; present only on multi-tenant machines
    /// (needed to reboot a killed VM slot with a fresh policy instance).
    factory: Option<AllocFactory>,
    caches: CacheHierarchy,
    tlbs: Vec<Tlb>,
    pwcs: Vec<PageWalkCaches>,
    /// Per-core direct-mapped memo tables (see [`MemoSlot`]).
    memos: Vec<Box<[MemoSlot]>>,
    /// The `VMSIM_MEMO` escape hatch: when false, every touch takes the
    /// naive path.
    memo_enabled: bool,
    memo_stats: MemoStats,
    /// Per-core nested-walk latency distributions.
    walk_hist: Vec<Histogram>,
    /// Per-core fault-service latency distributions (guest fault + backing).
    fault_hist: Vec<Histogram>,
    cost: CostModel,
    config: MachineConfig,
    /// Monotonic count of [`Machine::touch`] calls — the sim-op clock that
    /// timestamps observability snapshots and trace events.
    ops: u64,
    /// Optional event tracer. `None` (the default) costs one branch per
    /// event site and keeps the simulation outcome bit-identical.
    tracer: Option<vmsim_obs::Tracer>,
    /// Optional phase profiler. Same contract as the tracer: `None` costs
    /// one branch per span site and the simulation outcome is
    /// bit-identical with profiling on or off (the profiler only reads
    /// wall clocks and already-computed cycle charges).
    prof: Option<vmsim_obs::Profiler>,
    /// Optional fault-injection driver. `None` (the default) costs one
    /// branch per op; the probabilistic injector itself lives inside the
    /// guest buddy allocator.
    faults: Option<FaultDriver>,
    /// Simulated guest threads declared by the driving engine. 1 (the
    /// default) keeps the serial fault path bit-identical: no per-thread
    /// bookkeeping runs and no `threads.*` gauges are emitted.
    guest_threads: u32,
    /// Thread the engine reports as currently executing (`<
    /// guest_threads`); guest faults are attributed to it.
    active_thread: u32,
    /// Guest page faults taken while each thread was active.
    thread_faults: Vec<u64>,
    /// Ring of recent fault origins, as (group key, thread): a fault into
    /// an 8-page reservation group another thread faulted recently is a
    /// *contended* group — the interleaving the lock-free PaRT exists to
    /// serve without serializing.
    recent_fault_groups: [(u64, u32); RECENT_FAULT_GROUPS],
    recent_fault_pos: usize,
    /// Faults landing in a recently-cross-thread-faulted group.
    contended_group_faults: u64,
}

/// Depth of the recent-fault-group ring used for contention detection.
const RECENT_FAULT_GROUPS: usize = 16;

/// Ring sentinel: no real group key uses thread `u32::MAX`.
const NO_RECENT_FAULT: (u64, u32) = (u64::MAX, u32::MAX);

/// Machine-level state of an installed [`vmsim_types::FaultPlan`]: the
/// scheduled triggers (fragmentation shocks, reclaim storms, swap-outs,
/// daemon passes) and their counters. Per-allocation denial rolls live in
/// the injector installed into the guest buddy allocator.
#[derive(Clone, Copy, Debug)]
struct FaultDriver {
    plan: FaultPlan,
    frag_shocks: u64,
    reclaim_storms: u64,
    swap_outs: u64,
    daemon_passes: u64,
    oom_retries: u64,
    /// Frames released by storms, daemon passes, swap-outs, and OOM-retry
    /// reclaims driven by the plan.
    reclaimed_frames: u64,
}

impl FaultDriver {
    fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            frag_shocks: 0,
            reclaim_storms: 0,
            swap_outs: 0,
            daemon_passes: 0,
            oom_retries: 0,
            reclaimed_frames: 0,
        }
    }
}

impl Machine {
    /// Builds a machine with the stock Linux-like allocator.
    pub fn new(config: MachineConfig) -> Self {
        Self::with_allocator(config, Box::new(DefaultAllocator::new()))
    }

    /// Builds a machine with a custom guest frame allocator (PTEMagnet plugs
    /// in here).
    pub fn with_allocator(config: MachineConfig, allocator: Box<dyn GuestFrameAllocator>) -> Self {
        let cores = config.hierarchy.cores;
        Self {
            vms: vec![GuestVm::new(
                GuestOs::new(config.guest_frames, allocator),
                HostVirtPage::new(config.vm_base),
            )],
            host: HostOs::new(config.host_frames, HostVirtPage::new(config.vm_base)),
            factory: None,
            caches: CacheHierarchy::new(config.hierarchy),
            tlbs: (0..cores).map(|_| Tlb::new(config.tlb)).collect(),
            pwcs: (0..cores)
                .map(|_| PageWalkCaches::new(config.pwc))
                .collect(),
            memos: (0..cores)
                .map(|_| vec![MemoSlot::EMPTY; MEMO_SLOTS].into_boxed_slice())
                .collect(),
            memo_enabled: true,
            memo_stats: MemoStats::default(),
            walk_hist: (0..cores).map(|_| Histogram::new()).collect(),
            fault_hist: (0..cores).map(|_| Histogram::new()).collect(),
            cost: config.cost,
            config,
            ops: 0,
            tracer: None,
            prof: None,
            faults: None,
            guest_threads: 1,
            active_thread: 0,
            thread_faults: vec![0],
            recent_fault_groups: [NO_RECENT_FAULT; RECENT_FAULT_GROUPS],
            recent_fault_pos: 0,
            contended_group_faults: 0,
        }
    }

    /// Builds a multi-tenant host: `vm_count` independent guest VMs, each
    /// with `config.guest_frames` of guest-physical memory and its own
    /// allocator built by `factory(vm)`, all sharing one host pool of
    /// `config.host_frames` frames (the caller sizes the pool for the
    /// desired overcommit ratio). VM `i`'s guest-physical slot is mapped at
    /// host-virtual page `config.vm_base + i * config.guest_frames`.
    ///
    /// A 1-VM multi-tenant machine behaves bit-identically to
    /// [`Machine::with_allocator`] with the same config and allocator.
    ///
    /// # Panics
    ///
    /// Panics if `vm_count` is zero.
    pub fn multi_tenant(
        config: MachineConfig,
        vm_count: usize,
        factory: impl Fn(usize) -> Box<dyn GuestFrameAllocator> + 'static,
    ) -> Self {
        assert!(vm_count > 0, "a host needs at least one VM");
        let mut machine = Self::with_allocator(config, factory(0));
        for vm in 1..vm_count {
            machine.vms.push(GuestVm::new(
                GuestOs::new(config.guest_frames, factory(vm)),
                HostVirtPage::new(config.vm_base + vm as u64 * config.guest_frames),
            ));
        }
        machine.factory = Some(AllocFactory(Box::new(factory)));
        machine
    }

    /// Composed TLB/PWC address-space id for (`vm`, `pid`): VM 0 keeps the
    /// raw pid, so single-tenant machines are bit-compatible with the
    /// historical single-guest encoding.
    #[inline]
    fn asid_of(vm: usize, pid: Pid) -> u64 {
        ((vm as u64) << 32) | pid.0
    }

    /// Host-virtual page backing guest frame `gfn` of VM `vm`.
    #[inline]
    fn hvpn_in(&self, vm: usize, gfn: GuestFrame) -> HostVirtPage {
        HostVirtPage::new(self.vms[vm].base.raw() + gfn.raw())
    }

    /// Nested-TLB/PWC key for guest frame `gfn` of VM `vm`: guest-frame
    /// numbers collide across VMs, so the key is namespaced by the VM's
    /// slot index (identity for VM 0).
    #[inline]
    fn nested_key(&self, vm: usize, gfn: GuestFrame) -> GuestFrame {
        GuestFrame::new(vm as u64 * self.config.guest_frames + gfn.raw())
    }

    /// Number of [`Machine::touch`] calls played so far (the sim-op clock).
    pub fn ops_executed(&self) -> u64 {
        self.ops
    }

    /// Installs an event tracer; subsequent faults, walks, and reservation
    /// activity emit typed events into it.
    pub fn install_tracer(&mut self, tracer: vmsim_obs::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Removes and returns the tracer (with every retained event), if one
    /// was installed.
    pub fn take_tracer(&mut self) -> Option<vmsim_obs::Tracer> {
        self.tracer.take()
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&vmsim_obs::Tracer> {
        self.tracer.as_ref()
    }

    /// Installs a phase profiler; translation phases accrue wall-clock
    /// self-time and simulated cycles into it until it is taken back.
    pub fn install_profiler(&mut self, prof: vmsim_obs::Profiler) {
        self.prof = Some(prof);
    }

    /// Removes and returns the profiler (with its accumulated phase
    /// totals), if one was installed.
    pub fn take_profiler(&mut self) -> Option<vmsim_obs::Profiler> {
        self.prof.take()
    }

    /// The installed profiler, if any.
    pub fn profiler(&self) -> Option<&vmsim_obs::Profiler> {
        self.prof.as_ref()
    }

    /// Opens a profiler span for caller-side phases (the engine's
    /// workload loop, the scenario's epoch sampling). No-op when no
    /// profiler is installed.
    #[inline]
    pub fn prof_enter(&mut self, phase: vmsim_obs::Phase) {
        if let Some(p) = self.prof.as_mut() {
            p.begin(phase);
        }
    }

    /// Closes the innermost profiler span opened by [`Machine::prof_enter`]
    /// (or internally). No-op when no profiler is installed.
    #[inline]
    pub fn prof_exit(&mut self) {
        if let Some(p) = self.prof.as_mut() {
            p.end();
        }
    }

    /// Charges simulated cycles to a phase. No-op when no profiler is
    /// installed.
    #[inline]
    fn prof_cycles(&mut self, phase: vmsim_obs::Phase, cycles: u64) {
        if let Some(p) = self.prof.as_mut() {
            p.add_cycles(phase, cycles);
        }
    }

    /// Installs a fault plan: a seeded injector goes into the guest buddy
    /// allocator (per-allocation denial rolls) and this machine drives the
    /// plan's scheduled triggers on every [`Machine::touch`]. The decision
    /// stream is a pure function of `(plan, run_seed)`, so faulted runs are
    /// bit-reproducible regardless of worker-pool width.
    pub fn install_faults(&mut self, plan: FaultPlan, run_seed: u64) {
        self.vms[0]
            .guest
            .buddy_mut()
            .set_fault_injector(FaultInjector::new(&plan, run_seed));
        self.faults = Some(FaultDriver::new(plan));
        self.clear_memos();
    }

    /// Enables or disables the translation memo layer (the `VMSIM_MEMO`
    /// escape hatch). Disabling clears the tables so a later re-enable
    /// starts from a clean slate. Memoization is validated to be
    /// bit-invisible, so this only affects wall-clock speed.
    pub fn set_memo_enabled(&mut self, enabled: bool) {
        if !enabled {
            self.clear_memos();
            self.memo_stats = MemoStats::default();
        }
        self.memo_enabled = enabled;
    }

    /// Whether the memo layer is active.
    pub fn memo_enabled(&self) -> bool {
        self.memo_enabled
    }

    /// Declares how many simulated guest threads the driving engine
    /// interleaves. With `threads == 1` (the default) the machine does no
    /// per-thread bookkeeping and its observable state is bit-identical to
    /// a machine that never heard of threads; above 1 it attributes guest
    /// faults to the active thread and tracks cross-thread group
    /// contention. Resets any previous per-thread tallies.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn set_guest_threads(&mut self, threads: u32) {
        assert!(threads >= 1, "a guest needs at least one thread");
        self.guest_threads = threads;
        self.active_thread = 0;
        self.thread_faults = vec![0; threads as usize];
        self.recent_fault_groups = [NO_RECENT_FAULT; RECENT_FAULT_GROUPS];
        self.recent_fault_pos = 0;
        self.contended_group_faults = 0;
    }

    /// Declared simulated guest thread count (1 unless an engine raised it).
    pub fn guest_threads(&self) -> u32 {
        self.guest_threads
    }

    /// Marks `thread` as the one currently executing; subsequent guest
    /// faults are attributed to it.
    ///
    /// # Panics
    ///
    /// Panics if `thread` is outside the declared thread count.
    pub fn set_active_thread(&mut self, thread: u32) {
        assert!(
            thread < self.guest_threads,
            "thread {thread} out of range (guest has {} threads)",
            self.guest_threads
        );
        self.active_thread = thread;
    }

    /// The thread faults are currently attributed to.
    pub fn active_thread(&self) -> u32 {
        self.active_thread
    }

    /// Guest faults taken per thread (index = thread id).
    pub fn thread_faults(&self) -> &[u64] {
        &self.thread_faults
    }

    /// Faults that landed in an 8-page reservation group another thread
    /// had faulted into recently — the interleavings that contend on one
    /// PaRT leaf word.
    pub fn contended_group_faults(&self) -> u64 {
        self.contended_group_faults
    }

    /// Attributes a fresh guest fault at (`vm`, `vpn`) to the active
    /// thread and updates the contended-group ring. Only called when
    /// `guest_threads > 1`.
    fn note_thread_fault(&mut self, vm: usize, vpn: GuestVirtPage) {
        self.thread_faults[self.active_thread as usize] += 1;
        // Namespace the group key by VM: guest page numbers collide across
        // tenants, and cross-VM faults never share a PaRT.
        let group = ((vm as u64) << 48) | (vpn.raw() / GROUP_PAGES);
        if self
            .recent_fault_groups
            .iter()
            .any(|&(g, t)| g == group && t != self.active_thread)
        {
            self.contended_group_faults += 1;
        }
        self.recent_fault_groups[self.recent_fault_pos] = (group, self.active_thread);
        self.recent_fault_pos = (self.recent_fault_pos + 1) % RECENT_FAULT_GROUPS;
    }

    /// Memo-layer counters. Deliberately *not* part of
    /// [`Machine::metrics_snapshot`]: snapshots must be bit-identical with
    /// the memo layer on, off, or absent.
    pub fn memo_stats(&self) -> MemoStats {
        self.memo_stats
    }

    /// Invalidates every memo slot on every core.
    fn clear_memos(&mut self) {
        for table in &mut self.memos {
            table.fill(MemoSlot::EMPTY);
        }
        self.memo_stats.clears += 1;
    }

    /// Direct-mapped memo slot index for `va`.
    #[inline]
    fn memo_index(va: GuestVirtAddr) -> usize {
        ((va.raw() >> PAGE_SHIFT) as usize) & (MEMO_SLOTS - 1)
    }

    /// Whether a fault plan is installed.
    pub fn faults_installed(&self) -> bool {
        self.faults.is_some()
    }

    /// The guest OS (of VM 0 — the only VM on single-tenant machines).
    pub fn guest(&self) -> &GuestOs {
        &self.vms[0].guest
    }

    /// Mutable access to VM 0's guest OS (spawn processes, mmap, …).
    pub fn guest_mut(&mut self) -> &mut GuestOs {
        &mut self.vms[0].guest
    }

    /// The guest OS of VM `vm`.
    pub fn vm_guest(&self, vm: usize) -> &GuestOs {
        &self.vms[vm].guest
    }

    /// Mutable access to VM `vm`'s guest OS.
    pub fn vm_guest_mut(&mut self, vm: usize) -> &mut GuestOs {
        &mut self.vms[vm].guest
    }

    /// Number of VM slots on this host (running or not).
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Whether VM `vm` is currently running.
    pub fn vm_running(&self, vm: usize) -> bool {
        self.vms[vm].running
    }

    /// Times VM slot `vm` has booted.
    pub fn vm_boots(&self, vm: usize) -> u64 {
        self.vms[vm].boots
    }

    /// Frames currently pinned by VM `vm`'s balloon.
    pub fn vm_ballooned(&self, vm: usize) -> u64 {
        self.vms[vm].ballooned.len() as u64
    }

    /// Base of VM `vm`'s guest-physical slot in host-virtual space.
    pub fn vm_base_of(&self, vm: usize) -> HostVirtPage {
        self.vms[vm].base
    }

    /// Free frames left in the host-physical pool.
    pub fn host_free_frames(&self) -> u64 {
        self.host.buddy().free_frames()
    }

    /// The host OS.
    pub fn host(&self) -> &HostOs {
        &self.host
    }

    /// The cache hierarchy (for counters).
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// The TLB of `core`.
    pub fn tlb(&self, core: usize) -> &Tlb {
        &self.tlbs[core]
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Plays one memory access: (`core`, `pid`) touches guest-virtual `va`.
    ///
    /// Serves guest/host faults as needed, models the TLB lookup, the nested
    /// walk on a miss, and the data access itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use vmsim_os::{Machine, MachineConfig};
    ///
    /// # fn main() -> Result<(), vmsim_types::MemError> {
    /// let mut m = Machine::new(MachineConfig::small());
    /// let pid = m.guest_mut().spawn();
    /// let va = m.guest_mut().mmap(pid, 1)?;
    /// let cold = m.touch(0, pid, va, true)?; // faults, walks, fills caches
    /// let warm = m.touch(0, pid, va, false)?; // pure TLB + L1 hit
    /// assert!(cold.faulted && warm.tlb_hit);
    /// assert!(warm.cycles < cold.cycles / 10);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] for addresses outside every VMA and
    /// [`MemError::OutOfMemory`] when a fault cannot be served.
    pub fn touch(
        &mut self,
        core: usize,
        pid: Pid,
        va: GuestVirtAddr,
        is_write: bool,
    ) -> Result<TouchOutcome> {
        self.touch_in(0, core, pid, va, is_write)
    }

    /// [`Machine::touch`] against VM `vm` of a multi-tenant host.
    ///
    /// # Errors
    ///
    /// As for [`Machine::touch`].
    ///
    /// # Panics
    ///
    /// Panics if the VM slot is not running.
    pub fn touch_vm(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        va: GuestVirtAddr,
        is_write: bool,
    ) -> Result<TouchOutcome> {
        assert!(self.vms[vm].running, "touch of a stopped VM");
        self.touch_in(vm, core, pid, va, is_write)
    }

    fn touch_in(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        va: GuestVirtAddr,
        is_write: bool,
    ) -> Result<TouchOutcome> {
        self.ops += 1;
        // Scheduled fault triggers fire before the access is served, so a
        // fragmentation shock can deny this very op's reservation chunk. A
        // fired trigger may mutate translation-relevant state wholesale, so
        // it drops every memo.
        if self.faults.is_some() {
            self.prof_enter(Phase::FaultDriver);
            let fired = self.drive_fault_schedule();
            self.prof_exit();
            if fired {
                self.clear_memos();
            }
        }
        if self.memo_enabled {
            self.prof_enter(Phase::MemoProbe);
            let replayed = self.memo_replay(vm, core, pid, va, is_write);
            self.prof_exit();
            if let Some((out, _)) = replayed {
                self.prof_cycles(Phase::MemoProbe, out.cycles);
                return Ok(out);
            }
        }
        let (out, write_ok, data_hpa) = self.touch_slow(vm, core, pid, va, is_write)?;
        if self.memo_enabled {
            self.prof_enter(Phase::Fill);
            self.memo_fill(vm, core, pid, va, write_ok, data_hpa);
            self.prof_exit();
        }
        Ok(out)
    }

    /// Plays a run of accesses by one (`core`, `pid`) pair, returning the
    /// total cycles charged. Semantically identical to calling
    /// [`Machine::touch`] once per element (bit-identical counters, events,
    /// histograms, and cycle totals) but with a fast path for same-page
    /// streaks: once an access to a page has been played, immediately
    /// repeated accesses to the same address need no revalidation at all —
    /// nothing can have intervened — so they replay directly.
    ///
    /// # Errors
    ///
    /// As for [`Machine::touch`]; the first failing access aborts the run.
    pub fn touch_run(
        &mut self,
        core: usize,
        pid: Pid,
        run: &[(GuestVirtAddr, bool)],
    ) -> Result<u64> {
        self.touch_run_in(0, core, pid, run)
    }

    /// [`Machine::touch_run`] against VM `vm` of a multi-tenant host.
    ///
    /// # Errors
    ///
    /// As for [`Machine::touch_run`].
    ///
    /// # Panics
    ///
    /// Panics if the VM slot is not running.
    pub fn touch_run_vm(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        run: &[(GuestVirtAddr, bool)],
    ) -> Result<u64> {
        assert!(self.vms[vm].running, "touch of a stopped VM");
        self.touch_run_in(vm, core, pid, run)
    }

    fn touch_run_in(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        run: &[(GuestVirtAddr, bool)],
    ) -> Result<u64> {
        let mut total = 0u64;
        // The address (and write permission) proven warm by the previous
        // iteration; u64::MAX never matches a real va.
        let mut prev_va = u64::MAX;
        let mut prev_write_ok = false;
        for &(va, is_write) in run {
            self.ops += 1;
            if self.faults.is_some() {
                self.prof_enter(Phase::FaultDriver);
                let fired = self.drive_fault_schedule();
                self.prof_exit();
                if fired {
                    self.clear_memos();
                    prev_va = u64::MAX;
                }
            }
            if self.memo_enabled && va.raw() == prev_va && (!is_write || prev_write_ok) {
                // Same-page streak: the previous op touched this very
                // address and nothing intervened, so the TLB entry and the
                // data line are still MRU in their sets by construction.
                self.prof_enter(Phase::MemoProbe);
                self.memo_stats.streak_hits += 1;
                self.tlbs[core].replay_l1_hit();
                let cycles = self.cost.work_cycles_per_access
                    + self.caches.replay_l1_hit(core, AccessKind::Data);
                total += cycles;
                self.prof_cycles(Phase::MemoProbe, cycles);
                self.prof_exit();
                continue;
            }
            if self.memo_enabled {
                self.prof_enter(Phase::MemoProbe);
                let replayed = self.memo_replay(vm, core, pid, va, is_write);
                self.prof_exit();
                if let Some((out, write_ok)) = replayed {
                    self.prof_cycles(Phase::MemoProbe, out.cycles);
                    total += out.cycles;
                    prev_va = va.raw();
                    prev_write_ok = write_ok;
                    continue;
                }
            }
            let (out, write_ok, data_hpa) = self.touch_slow(vm, core, pid, va, is_write)?;
            if self.memo_enabled {
                self.prof_enter(Phase::Fill);
                self.memo_fill(vm, core, pid, va, write_ok, data_hpa);
                self.prof_exit();
            }
            total += out.cycles;
            prev_va = va.raw();
            prev_write_ok = write_ok;
        }
        Ok(total)
    }

    /// Attempts to replay a memoized warm touch. `None` means the slot does
    /// not prove this access; take the slow path. On a hit, returns the
    /// outcome and the slot's write permission, and applies the warm path's
    /// exact observable side effects: the TLB L1-hit counter, the data L1
    /// MemCounters record, and the fixed warm-cycle charge. No tracer
    /// events, no histogram samples, no PWC activity — precisely what the
    /// naive warm path does.
    #[inline]
    fn memo_replay(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        va: GuestVirtAddr,
        is_write: bool,
    ) -> Option<(TouchOutcome, bool)> {
        let slot = &self.memos[core][Self::memo_index(va)];
        if slot.pid != Self::asid_of(vm, pid)
            || slot.va != va.raw()
            || (is_write && !slot.write_ok)
            || slot.gen != self.vms[vm].guest.xlate_gen(pid)
            || slot.tlb_epoch != self.tlbs[core].l1_set_epoch_at(slot.tlb_set)
            || slot.data_epoch != self.caches.l1_set_epoch_at(core, slot.data_set)
        {
            return None;
        }
        let write_ok = slot.write_ok;
        self.memo_stats.hits += 1;
        self.tlbs[core].replay_l1_hit();
        let data_cycles = self.caches.replay_l1_hit(core, AccessKind::Data);
        Some((
            TouchOutcome {
                cycles: self.cost.work_cycles_per_access + data_cycles,
                tlb_hit: true,
                ..TouchOutcome::default()
            },
            write_ok,
        ))
    }

    /// Fills the memo slot for `va` after a successful slow-path touch. The
    /// touch itself guarantees the preconditions: its data access left the
    /// line MRU in `core`'s L1, and its translation ended MRU in the L1 TLB
    /// (promoted by the hit, or freshly inserted by the walk).
    #[inline]
    fn memo_fill(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        va: GuestVirtAddr,
        write_ok: bool,
        data_hpa: HostPhysAddr,
    ) {
        let asid = Self::asid_of(vm, pid);
        let tlb_set = self.tlbs[core].l1_set_index(asid, va.page());
        let data_set = self.caches.l1_set_index(core, data_hpa);
        self.memos[core][Self::memo_index(va)] = MemoSlot {
            pid: asid,
            va: va.raw(),
            gen: self.vms[vm].guest.xlate_gen(pid),
            tlb_set,
            data_set,
            tlb_epoch: self.tlbs[core].l1_set_epoch_at(tlb_set),
            data_epoch: self.caches.l1_set_epoch_at(core, data_set),
            write_ok,
        };
        self.memo_stats.fills += 1;
    }

    /// The full (naive) touch path: fault service, TLB lookup, nested walk,
    /// data access. Also returns whether the page ended up writable without
    /// a COW break (for memo filling) and the data line's host-physical
    /// address.
    fn touch_slow(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        va: GuestVirtAddr,
        is_write: bool,
    ) -> Result<(TouchOutcome, bool, HostPhysAddr)> {
        let vpn = va.page();
        let asid = Self::asid_of(vm, pid);
        self.memo_stats.naive_walks += 1;
        let mut out = TouchOutcome {
            cycles: self.cost.work_cycles_per_access,
            ..TouchOutcome::default()
        };
        // Buddy counters before the fault section, so tracing can report
        // split/merge activity caused by this access. Read only when a
        // tracer is installed — the disabled path stays a single branch.
        let buddy_before = self
            .tracer
            .as_ref()
            .map(|_| *self.vms[vm].guest.buddy().stats());
        let injector_before = if self.tracer.is_some() {
            self.vms[vm]
                .guest
                .buddy()
                .fault_injector()
                .map(|i| i.stats())
        } else {
            None
        };

        // 1. Ensure the page is mapped (guest fault) and writable if needed
        //    (COW break). Profiled as the alloc phase: buddy allocations,
        //    reservations, COW copies, and host backing all happen here.
        // An error propagating out of this section leaks the span; that is
        // fine — touch errors abort the run and `Profiler::finish` closes
        // dangling spans.
        self.prof_enter(Phase::Alloc);
        let cycles_before_fault = out.cycles;
        let pte = self.vms[vm].guest.process(pid)?.page_table.lookup(vpn);
        // Whether, after the fault section, the page is writable without
        // further kernel involvement (feeds the memo's write permission).
        let write_ok;
        match pte {
            None => {
                // A fresh fault installs a private, writable mapping.
                write_ok = true;
                let info = match self.vms[vm].guest.page_fault(pid, vpn) {
                    Ok(info) => info,
                    Err(MemError::OutOfMemory { .. }) if self.faults.is_some() => {
                        self.absorb_oom_and_retry(vm, pid, vpn, |g, p, v| g.page_fault(p, v))?
                    }
                    Err(e) => return Err(e),
                };
                out.faulted = true;
                if self.guest_threads > 1 {
                    self.note_thread_fault(vm, vpn);
                }
                out.cycles += self.cost.guest_fault_cycles
                    + u64::from(info.cost.buddy_calls + info.pt_node_allocs)
                        * self.cost.buddy_call_cycles
                    + u64::from(info.cost.part_lookups) * self.cost.part_lookup_cycles;
                if info.huge {
                    // Zeroing a 2 MB chunk on first touch.
                    out.cycles += self.cost.huge_fault_extra_cycles;
                }
                // The faulting instruction touches the page immediately, so
                // the host backs the data frame right away.
                let hvpn = self.hvpn_in(vm, info.gfn);
                let (_hfn, host_faulted) = self.host.back_page(hvpn)?;
                if host_faulted {
                    out.host_faults += 1;
                    out.cycles += self.cost.host_fault_cycles;
                }
                if let Some(tracer) = self.tracer.as_mut() {
                    let op = self.ops;
                    tracer.emit(
                        op,
                        vmsim_obs::EventKind::PageFault {
                            pid: pid.0,
                            vpn: vpn.raw(),
                            gfn: info.gfn.raw(),
                            huge: info.huge,
                        },
                    );
                    if info.cost.reservation_hit {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ReservationHit {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: info.gfn.raw(),
                            },
                        );
                    }
                    if info.cost.reservation_new {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ReservationTake {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: info.gfn.raw(),
                            },
                        );
                    }
                    if info.cost.fallback {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ReservationFallback {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: info.gfn.raw(),
                            },
                        );
                    }
                    if info.huge {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ThpCollapse {
                                pid: pid.0,
                                vpn: vpn.raw() & !(vmsim_types::PT_ENTRIES - 1),
                            },
                        );
                    }
                }
            }
            Some(pte) if is_write && pte.is_cow() => {
                // Whether a copy happened or write access was restored, the
                // page is now privately writable.
                write_ok = true;
                let (new_gfn, copied) = match self.vms[vm].guest.write_fault(pid, vpn) {
                    Ok(r) => r,
                    Err(MemError::OutOfMemory { .. }) if self.faults.is_some() => {
                        self.absorb_oom_and_retry(vm, pid, vpn, |g, p, v| g.write_fault(p, v))?
                    }
                    Err(e) => return Err(e),
                };
                out.cow_break = copied;
                out.cycles += self.cost.guest_fault_cycles;
                if copied {
                    out.cycles += self.cost.buddy_call_cycles;
                    let hvpn = self.hvpn_in(vm, new_gfn);
                    let (_hfn, host_faulted) = self.host.back_page(hvpn)?;
                    if host_faulted {
                        out.host_faults += 1;
                        out.cycles += self.cost.host_fault_cycles;
                    }
                    if let Some(tracer) = self.tracer.as_mut() {
                        let op = self.ops;
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::PageFault {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: new_gfn.raw(),
                                huge: false,
                            },
                        );
                    }
                }
                // The mapping changed: shoot down stale translations.
                for tlb in &mut self.tlbs {
                    tlb.invalidate(asid, vpn);
                }
            }
            Some(pte) => {
                write_ok = !pte.is_cow();
            }
        }
        if out.faulted || out.cow_break {
            self.fault_hist[core].record(out.cycles - cycles_before_fault);
        }
        if let Some(before) = buddy_before {
            let after = *self.vms[vm].guest.buddy().stats();
            let (splits, merges) = (after.splits - before.splits, after.merges - before.merges);
            let tracer = self.tracer.as_mut().expect("buddy_before implies tracer");
            if splits > 0 {
                tracer.emit(self.ops, vmsim_obs::EventKind::BuddySplit { count: splits });
            }
            if merges > 0 {
                tracer.emit(self.ops, vmsim_obs::EventKind::BuddyMerge { count: merges });
            }
        }
        if let Some(before) = injector_before {
            let after = self.vms[vm]
                .guest
                .buddy()
                .fault_injector()
                .expect("injector persists once installed")
                .stats();
            let chunk_denials = after.chunk_denials - before.chunk_denials;
            let oom_denials = after.oom_denials - before.oom_denials;
            if chunk_denials + oom_denials > 0 {
                let tracer = self
                    .tracer
                    .as_mut()
                    .expect("injector_before implies tracer");
                tracer.emit(
                    self.ops,
                    vmsim_obs::EventKind::FaultInjected {
                        chunk_denials,
                        oom_denials,
                    },
                );
            }
        }
        self.prof_cycles(Phase::Alloc, out.cycles - cycles_before_fault);
        self.prof_exit();

        // 2. Translate.
        self.prof_enter(Phase::TlbLookup);
        let looked_up = self.tlbs[core].lookup(asid, vpn);
        self.prof_exit();
        let hfn = match looked_up {
            Some(hfn) => {
                out.tlb_hit = true;
                hfn
            }
            None => {
                let (hfn, walk_cycles, host_faults) = self.nested_walk_in(vm, core, pid, vpn)?;
                out.cycles += walk_cycles;
                out.host_faults += host_faults;
                hfn
            }
        };

        // 3. Access the data itself. The base per-op work and the data
        // access are the workload's own execution, not translation.
        let data_hpa = HostPhysAddr::new((hfn.raw() << PAGE_SHIFT) + va.page_offset());
        let data_cycles = self.caches.access(core, data_hpa, AccessKind::Data).cycles;
        out.cycles += data_cycles;
        self.prof_cycles(
            Phase::Workload,
            self.cost.work_cycles_per_access + data_cycles,
        );
        Ok((out, write_ok, data_hpa))
    }

    /// Fires the installed plan's scheduled triggers due at the current op:
    /// fragmentation shocks, reclaim storms, host swap-outs, and the
    /// watermark-driven daemon pass. Everything here is a deterministic
    /// function of the op clock and guest state. Returns whether any
    /// trigger actually executed (the caller drops its memos if so).
    fn drive_fault_schedule(&mut self) -> bool {
        let Some(mut driver) = self.faults else {
            return false;
        };
        let op = self.ops;
        let due = |every: Option<u64>| matches!(every, Some(n) if n > 0 && op.is_multiple_of(n));
        let mut fired = false;

        if due(driver.plan.frag_shock_every) {
            let max_order = driver.plan.frag_shock_order;
            let splits = self.vms[0].guest.buddy_mut().shatter(max_order);
            driver.frag_shocks += 1;
            fired = true;
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(op, vmsim_obs::EventKind::FragShock { max_order, splits });
            }
        }
        if due(driver.plan.reclaim_storm_every) {
            let frames = self.vms[0]
                .guest
                .reclaim_reservations(driver.plan.reclaim_storm_frames);
            driver.reclaim_storms += 1;
            driver.reclaimed_frames += frames;
            fired = true;
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(op, vmsim_obs::EventKind::ReclaimStorm { frames });
            }
        }
        if due(driver.plan.swap_out_every) {
            // The host picks a reserved-unused frame (there is nothing to
            // swap out otherwise) and the §4.4 hook releases its covering
            // reservation.
            if let Some(gfn) = self.vms[0].guest.allocator().any_reserved_unused_frame() {
                let frames = self.vms[0].guest.swap_target(gfn);
                driver.swap_outs += 1;
                driver.reclaimed_frames += frames;
                fired = true;
                if let Some(tracer) = self.tracer.as_mut() {
                    tracer.emit(
                        op,
                        vmsim_obs::EventKind::SwapOut {
                            gfn: gfn.raw(),
                            frames,
                        },
                    );
                }
            }
        }
        if let Some(threshold) = driver.plan.daemon_threshold {
            if self.vms[0].guest.buddy().free_fraction() < threshold {
                // The §4.3 daemon: restore free memory to the high
                // watermark by draining reserved-unused frames.
                let restore_to = driver.plan.daemon_restore_to.unwrap_or(threshold);
                let total = self.vms[0].guest.buddy().total_frames();
                let have = self.vms[0].guest.buddy().free_frames();
                let want = (restore_to * total as f64) as u64;
                let target = want.saturating_sub(have);
                if target > 0 {
                    let freed = self.reclaim_reservations(target);
                    driver.daemon_passes += 1;
                    driver.reclaimed_frames += freed;
                    fired = true;
                }
            }
        }
        self.faults = Some(driver);
        fired
    }

    /// Graceful degradation for an out-of-memory fault under an installed
    /// plan: reclaim reserved-unused frames, then retry the faulting
    /// operation exactly once with injection suppressed, so an injected
    /// denial cannot re-deny its own recovery. A second failure (memory
    /// genuinely exhausted) propagates.
    fn absorb_oom_and_retry<T>(
        &mut self,
        vm: usize,
        pid: Pid,
        vpn: GuestVirtPage,
        retry: impl FnOnce(&mut GuestOs, Pid, GuestVirtPage) -> Result<T>,
    ) -> Result<T> {
        let reclaimed = self.vms[vm].guest.reclaim_reservations(GROUP_PAGES * 4);
        if let Some(driver) = self.faults.as_mut() {
            driver.oom_retries += 1;
            driver.reclaimed_frames += reclaimed;
        }
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(self.ops, vmsim_obs::EventKind::OomRetry { reclaimed });
        }
        if let Some(inj) = self.vms[vm].guest.buddy_mut().fault_injector_mut() {
            inj.push_suppress();
        }
        let result = retry(&mut self.vms[vm].guest, pid, vpn);
        if let Some(inj) = self.vms[vm].guest.buddy_mut().fault_injector_mut() {
            inj.pop_suppress();
        }
        result
    }

    /// Performs a nested (2D) page walk for (`pid`, `vpn`) on `core`,
    /// charging every PT access to the cache hierarchy. Returns the host
    /// frame, the cycles spent, and any host faults taken for PT-node
    /// backing.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if the guest translation does not
    /// exist (the caller must fault first).
    pub fn nested_walk(
        &mut self,
        core: usize,
        pid: Pid,
        vpn: GuestVirtPage,
    ) -> Result<(HostFrame, u64, u32)> {
        self.nested_walk_in(0, core, pid, vpn)
    }

    fn nested_walk_in(
        &mut self,
        vm: usize,
        core: usize,
        pid: Pid,
        vpn: GuestVirtPage,
    ) -> Result<(HostFrame, u64, u32)> {
        let asid = Self::asid_of(vm, pid);
        let mut cycles = 0u64;
        let mut host_faults = 0u32;

        let (path, data_gfn) = {
            let pt = &self.vms[vm].guest.process(pid)?.page_table;
            let (path, gfn) = pt.walk_translate(vpn);
            match gfn {
                Some(gfn) => (path, gfn),
                None => return Err(MemError::Unmapped { vpn: vpn.raw() }),
            }
        };
        self.prof_enter(Phase::GuestWalk);

        // The guest PWC may let us skip upper guest levels (and the host
        // walks needed to locate those nodes).
        self.prof_enter(Phase::Pwc);
        let guest_pwc_hit = self.pwcs[core].guest_lookup(asid, vpn);
        self.prof_exit();
        let start_level = match guest_pwc_hit {
            Some((level, _gfn, _hfn)) => level + 1,
            None => 0,
        };

        // A huge guest mapping produces a 3-step path (the PS entry is the
        // translation), a 4 KB mapping a 4-step path; iterate whatever the
        // table gave us. The path is an inline copy, so no allocation here.
        let levels_walked = path.len().saturating_sub(start_level) as u32;
        for i in start_level..path.len() {
            let step = path.steps()[i];
            // Locate this gPT node in host-physical memory (2nd dimension).
            let (node_hfn, hf) = self.host_frame_of(vm, core, step.node, &mut cycles)?;
            host_faults += hf;
            // Touch the gPT entry itself.
            let entry_hpa =
                HostPhysAddr::new((node_hfn.raw() << PAGE_SHIFT) + step.index * PTE_SIZE);
            let entry_cycles = self
                .caches
                .access(core, entry_hpa, AccessKind::guest_pt(step.level))
                .cycles;
            cycles += entry_cycles;
            self.prof_cycles(Phase::GuestWalk, entry_cycles);
            // Cache the walk prefix completed at this node.
            if step.level > 0 {
                self.pwcs[core].guest_insert(asid, vpn, step.level - 1, step.node, node_hfn);
            }
        }

        // Final host walk: translate the data page itself.
        let (data_hfn, hf) = self.host_frame_of(vm, core, data_gfn, &mut cycles)?;
        host_faults += hf;
        self.prof_enter(Phase::Fill);
        self.tlbs[core].insert(asid, vpn, data_hfn);
        self.walk_hist[core].record(cycles);
        self.prof_exit();
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(
                self.ops,
                vmsim_obs::EventKind::PtWalk {
                    levels: levels_walked,
                    cycles,
                    pwc_hits: start_level as u32,
                },
            );
        }
        self.prof_exit();
        Ok((data_hfn, cycles, host_faults))
    }

    /// Per-core nested-walk latency distribution (cycles per walk).
    pub fn walk_latency(&self, core: usize) -> &Histogram {
        &self.walk_hist[core]
    }

    /// Per-core fault-service latency distribution (cycles per guest fault
    /// or COW break, including host backing).
    pub fn fault_latency(&self, core: usize) -> &Histogram {
        &self.fault_hist[core]
    }

    /// Translates guest frame `gfn` to its backing host frame, walking the
    /// host page table (with cache charging) unless the nested TLB has it.
    /// Faults the backing in if the host has not yet populated it.
    fn host_frame_of(
        &mut self,
        vm: usize,
        core: usize,
        gfn: GuestFrame,
        cycles: &mut u64,
    ) -> Result<(HostFrame, u32)> {
        let nkey = self.nested_key(vm, gfn);
        self.prof_enter(Phase::Pwc);
        let nested_hit = self.pwcs[core].nested_lookup(nkey);
        self.prof_exit();
        if let Some(hfn) = nested_hit {
            return Ok((hfn, 0));
        }
        self.prof_enter(Phase::HostWalk);
        let hvpn = self.hvpn_in(vm, gfn);
        let mut host_faults = 0u32;
        let (path, hfn) = match self.host.walk_translate(hvpn) {
            (path, Some(hfn)) => (path, hfn),
            (_, None) => {
                self.host.fault_unchecked(hvpn)?;
                host_faults += 1;
                *cycles += self.cost.host_fault_cycles;
                self.prof_cycles(Phase::HostWalk, self.cost.host_fault_cycles);
                let (path, hfn) = self.host.walk_translate(hvpn);
                (path, hfn.expect("faulted in above"))
            }
        };
        debug_assert!(path.complete);
        self.prof_enter(Phase::Pwc);
        let host_pwc_hit = self.pwcs[core].host_lookup(hvpn);
        self.prof_exit();
        let start_level = match host_pwc_hit {
            Some((level, _node)) => level + 1,
            None => 0,
        };
        for level in start_level..PT_LEVELS {
            let step = path.steps()[level];
            // Host PT nodes live in host-physical frames, so the entry
            // address is directly host-physical.
            let hpa = HostPhysAddr::new(step.entry_addr_raw());
            let entry_cycles = self
                .caches
                .access(core, hpa, AccessKind::host_pt(level))
                .cycles;
            *cycles += entry_cycles;
            self.prof_cycles(Phase::HostWalk, entry_cycles);
            if level > 0 {
                self.pwcs[core].host_insert(hvpn, level - 1, step.node);
            }
        }
        self.pwcs[core].nested_insert(nkey, hfn);
        self.prof_exit();
        Ok((hfn, host_faults))
    }

    /// Unmaps a range, performing TLB shootdown on every core.
    ///
    /// # Errors
    ///
    /// Propagates [`GuestOs::munmap`] errors.
    pub fn munmap(&mut self, pid: Pid, start: GuestVirtPage, pages: u64) -> Result<()> {
        self.munmap_in(0, pid, start, pages)
    }

    /// [`Machine::munmap`] against VM `vm` of a multi-tenant host.
    ///
    /// # Errors
    ///
    /// As for [`Machine::munmap`].
    pub fn munmap_vm(
        &mut self,
        vm: usize,
        pid: Pid,
        start: GuestVirtPage,
        pages: u64,
    ) -> Result<()> {
        self.munmap_in(vm, pid, start, pages)
    }

    fn munmap_in(&mut self, vm: usize, pid: Pid, start: GuestVirtPage, pages: u64) -> Result<()> {
        let asid = Self::asid_of(vm, pid);
        let unmapped = self.vms[vm].guest.munmap(pid, start, pages)?;
        for vpn in unmapped {
            for tlb in &mut self.tlbs {
                tlb.invalidate(asid, vpn);
            }
        }
        Ok(())
    }

    /// Terminates a process, flushing its translations everywhere.
    ///
    /// # Errors
    ///
    /// Propagates [`GuestOs::exit`] errors.
    pub fn exit(&mut self, pid: Pid) -> Result<()> {
        self.exit_in(0, pid)
    }

    /// [`Machine::exit`] against VM `vm` of a multi-tenant host.
    ///
    /// # Errors
    ///
    /// As for [`Machine::exit`].
    pub fn exit_vm(&mut self, vm: usize, pid: Pid) -> Result<()> {
        self.exit_in(vm, pid)
    }

    fn exit_in(&mut self, vm: usize, pid: Pid) -> Result<()> {
        let asid = Self::asid_of(vm, pid);
        self.vms[vm].guest.exit(pid)?;
        for tlb in &mut self.tlbs {
            tlb.flush_asid(asid);
        }
        Ok(())
    }

    /// Computes the paper's host-PT fragmentation metric for `pid` (§3.2):
    /// the mean number of distinct cache lines holding the host PTEs that
    /// correspond to each fully/partially mapped aligned 8-page group.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn host_pt_fragmentation(&self, pid: Pid) -> Result<LineCensus> {
        self.host_pt_fragmentation_vm(0, pid)
    }

    /// [`Machine::host_pt_fragmentation`] for a process of VM `vm`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn host_pt_fragmentation_vm(&self, vm: usize, pid: Pid) -> Result<LineCensus> {
        let mut census = LineCensus::default();
        let proc = self.vms[vm].guest.process(pid)?;
        for vma in &proc.vmas {
            let first_group = vma.start.raw() / GROUP_PAGES;
            let last_group = (vma.end().raw() - 1) / GROUP_PAGES;
            for group in first_group..=last_group {
                let base = group * GROUP_PAGES;
                let addrs: Vec<u64> = (base..base + GROUP_PAGES)
                    .map(GuestVirtPage::new)
                    .filter(|p| vma.contains(*p))
                    .filter_map(|p| proc.page_table.translate(p))
                    .filter_map(|gfn| self.host.hpte_addr_raw(self.hvpn_in(vm, gfn)))
                    .collect();
                census.record_group(addrs);
            }
        }
        Ok(census)
    }

    /// The guest-PT analogue of [`Machine::host_pt_fragmentation`]. By
    /// construction this is 1.0 whenever anything is mapped: gPTEs of a group
    /// always share a line (paper Figure 3).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn guest_pt_fragmentation(&self, pid: Pid) -> Result<LineCensus> {
        self.guest_pt_fragmentation_vm(0, pid)
    }

    /// [`Machine::guest_pt_fragmentation`] for a process of VM `vm`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn guest_pt_fragmentation_vm(&self, vm: usize, pid: Pid) -> Result<LineCensus> {
        let mut census = LineCensus::default();
        let proc = self.vms[vm].guest.process(pid)?;
        for vma in &proc.vmas {
            let first_group = vma.start.raw() / GROUP_PAGES;
            let last_group = (vma.end().raw() - 1) / GROUP_PAGES;
            for group in first_group..=last_group {
                let base = group * GROUP_PAGES;
                let addrs: Vec<u64> = (base..base + GROUP_PAGES)
                    .map(GuestVirtPage::new)
                    .filter(|p| vma.contains(*p) && proc.page_table.lookup(*p).is_some())
                    .filter_map(|p| proc.page_table.pte_addr_raw(p))
                    .collect();
                census.record_group(addrs);
            }
        }
        Ok(census)
    }

    /// Releases up to `target_frames` of reserved-but-unused guest memory
    /// back to the buddy allocator (memory-pressure reclamation, §4.3),
    /// emitting a [`vmsim_obs::EventKind::ReservationReclaim`] event when a
    /// tracer is installed. Returns frames actually released.
    pub fn reclaim_reservations(&mut self, target_frames: u64) -> u64 {
        let freed = self.vms[0].guest.reclaim_reservations(target_frames);
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(
                self.ops,
                vmsim_obs::EventKind::ReservationReclaim { frames: freed },
            );
        }
        freed
    }

    /// Kills VM `vm`: every host frame backing its guest-physical slot is
    /// released back to the host pool (through the ref-count table), the
    /// balloon deflates, and the slot is marked stopped until the next
    /// [`Machine::boot_vm`]. All translation state is flushed — a VM
    /// teardown is a host-wide shootdown event. Returns the host frames
    /// released.
    ///
    /// # Panics
    ///
    /// Panics if the VM is not running.
    pub fn kill_vm(&mut self, vm: usize) -> u64 {
        assert!(self.vms[vm].running, "kill of a stopped VM");
        let base = self.vms[vm].base.raw();
        let mut released = 0u64;
        for gfn in 0..self.config.guest_frames {
            if self
                .host
                .unback_page(HostVirtPage::new(base + gfn))
                .is_some()
            {
                released += 1;
            }
        }
        self.vms[vm].ballooned.clear();
        self.vms[vm].running = false;
        self.flush_translation_state();
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(
                self.ops,
                vmsim_obs::EventKind::VmKill {
                    vm: vm as u32,
                    frames: released,
                },
            );
        }
        released
    }

    /// Boots (or reboots) VM slot `vm` with a fresh guest OS whose
    /// allocator comes from the machine's per-VM factory.
    ///
    /// # Panics
    ///
    /// Panics if the VM is already running or the machine was built
    /// without a factory ([`Machine::multi_tenant`] installs one).
    pub fn boot_vm(&mut self, vm: usize) {
        assert!(!self.vms[vm].running, "boot of a running VM");
        let allocator = {
            let factory = self
                .factory
                .as_ref()
                .expect("rebooting a VM needs the multi-tenant allocator factory");
            (factory.0)(vm)
        };
        self.vms[vm].guest = GuestOs::new(self.config.guest_frames, allocator);
        self.vms[vm].running = true;
        self.vms[vm].boots += 1;
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(
                self.ops,
                vmsim_obs::EventKind::VmBoot {
                    vm: vm as u32,
                    boot: self.vms[vm].boots,
                },
            );
        }
    }

    /// Inflates VM `vm`'s balloon by up to `frames` order-0 frames: each is
    /// allocated from the guest buddy (so the guest cannot use it) and its
    /// host backing, if any, is released to the host pool. Stops early if
    /// the guest pool runs dry. Returns the frames actually pinned.
    /// Translation state is flushed when any host backing was dropped (the
    /// hypervisor's unmap shootdown).
    pub fn balloon_vm(&mut self, vm: usize, frames: u64) -> u64 {
        let mut inflated = 0u64;
        let mut unbacked = false;
        while inflated < frames {
            let Ok(gfn) = self.vms[vm].guest.buddy_mut().alloc(0) else {
                break;
            };
            let hvpn = self.hvpn_in(vm, gfn);
            if self.host.unback_page(hvpn).is_some() {
                unbacked = true;
            }
            self.vms[vm].ballooned.push(gfn);
            inflated += 1;
        }
        if unbacked {
            self.flush_translation_state();
        }
        if inflated > 0 {
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(
                    self.ops,
                    vmsim_obs::EventKind::Balloon {
                        vm: vm as u32,
                        frames: inflated,
                        inflate: true,
                    },
                );
            }
        }
        inflated
    }

    /// Deflates VM `vm`'s balloon by up to `frames`, returning the frames
    /// to the guest buddy (their host backing is re-faulted lazily on next
    /// touch). Returns the frames actually released.
    pub fn deflate_vm(&mut self, vm: usize, frames: u64) -> u64 {
        let mut deflated = 0u64;
        while deflated < frames {
            let Some(gfn) = self.vms[vm].ballooned.pop() else {
                break;
            };
            self.vms[vm]
                .guest
                .buddy_mut()
                .free(gfn, 0)
                .expect("ballooned frames are live order-0 allocations");
            deflated += 1;
        }
        if deflated > 0 {
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(
                    self.ops,
                    vmsim_obs::EventKind::Balloon {
                        vm: vm as u32,
                        frames: deflated,
                        inflate: false,
                    },
                );
            }
        }
        deflated
    }

    /// Nested-walk latency distribution merged across every core.
    pub fn merged_walk_latency(&self) -> Histogram {
        let mut merged = Histogram::new();
        for h in &self.walk_hist {
            merged.merge(h);
        }
        merged
    }

    /// Fault-service latency distribution merged across every core.
    pub fn merged_fault_latency(&self) -> Histogram {
        let mut merged = Histogram::new();
        for h in &self.fault_hist {
            merged.merge(h);
        }
        merged
    }

    /// Captures one observability snapshot covering every stats struct in
    /// the machine: cache counters, guest/host kernel counters, both buddy
    /// allocators, both page tables (guest PTs merged across processes),
    /// TLB totals, latency histograms, and whatever the pluggable frame
    /// allocator contributes (PTEMagnet adds reservation + PaRT counters).
    pub fn metrics_snapshot(&self) -> vmsim_obs::Snapshot {
        let mut reg = vmsim_obs::Registry::new();
        reg.record(&self.caches.counters());
        reg.record(&self.vms[0].guest.stats());
        reg.record(&self.host.stats());
        reg.record_as("guest_buddy", self.vms[0].guest.buddy().stats());
        reg.record_as("host_buddy", self.host.buddy().stats());
        reg.record_as("host_pt", &self.host.host_pt().stats());
        let mut guest_pt = vmsim_pt::PtStats::default();
        for proc in self.vms[0].guest.processes() {
            guest_pt.merge(&proc.page_table.stats());
        }
        reg.record_as("guest_pt", &guest_pt);
        let (lookups, misses) = self
            .tlbs
            .iter()
            .fold((0, 0), |(l, m), t| (l + t.lookups(), m + t.misses()));
        reg.gauge_u64("tlb.lookups", lookups);
        reg.gauge_u64("tlb.misses", misses);
        reg.record_as("walk_latency", &self.merged_walk_latency());
        reg.record_as("fault_latency", &self.merged_fault_latency());
        reg.gauge_u64(
            "allocator.reserved_unused_frames",
            self.vms[0].guest.allocator().reserved_unused_frames(),
        );
        // The faults.* gauges are always present (all zero without a plan),
        // so installing a fault plan never changes the snapshot's key set.
        let injected = self.vms[0]
            .guest
            .buddy()
            .fault_injector()
            .map(|i| i.stats())
            .unwrap_or_default();
        let driver = self
            .faults
            .unwrap_or_else(|| FaultDriver::new(FaultPlan::default()));
        reg.gauge_u64("faults.injected", injected.injected());
        reg.gauge_u64("faults.chunk_denials", injected.chunk_denials);
        reg.gauge_u64("faults.oom_denials", injected.oom_denials);
        reg.gauge_u64("faults.frag_shocks", driver.frag_shocks);
        reg.gauge_u64("faults.reclaim_storms", driver.reclaim_storms);
        reg.gauge_u64("faults.swap_outs", driver.swap_outs);
        reg.gauge_u64("faults.daemon_passes", driver.daemon_passes);
        reg.gauge_u64("faults.oom_retries", driver.oom_retries);
        reg.gauge_u64("faults.reclaimed_frames", driver.reclaimed_frames);
        self.vms[0].guest.allocator().emit_metrics(&mut reg);
        // Multi-tenant hosts additionally expose host-pool pressure and
        // per-VM occupancy. Single-tenant machines emit nothing here, so
        // the historical snapshot key set is untouched. The VM count is
        // fixed for the machine's lifetime (kills mark slots stopped, they
        // never remove them), so the key set stays constant across a run.
        if self.vms.len() > 1 {
            reg.gauge_u64("host.free_frames", self.host.buddy().free_frames());
            reg.gauge_u64(
                "host.backed_frames",
                self.host.frame_refs().referenced_frames(),
            );
            reg.gauge_f64(
                "host.frag",
                FragmentationIndex::measure(self.host.buddy(), 3).unusable_fraction(),
            );
            reg.gauge_u64(
                "host.vms_running",
                self.vms.iter().filter(|v| v.running).count() as u64,
            );
            for (i, vm) in self.vms.iter().enumerate() {
                reg.gauge_u64(format!("vm.{i}.running"), u64::from(vm.running));
                reg.gauge_u64(format!("vm.{i}.boots"), vm.boots);
                reg.gauge_u64(
                    format!("vm.{i}.ballooned_frames"),
                    vm.ballooned.len() as u64,
                );
                reg.gauge_u64(
                    format!("vm.{i}.free_frames"),
                    vm.guest.buddy().free_frames(),
                );
                reg.gauge_u64(format!("vm.{i}.faults"), vm.guest.stats().faults);
                reg.gauge_u64(
                    format!("vm.{i}.rss_pages"),
                    vm.guest.processes().map(|p| p.rss_pages).sum::<u64>(),
                );
            }
        }
        // Multi-threaded guests additionally expose per-thread fault
        // attribution and PaRT-group contention. Serial guests (the
        // default) emit nothing here, so the historical snapshot key set —
        // and every `threads: 1` differential proof — is untouched. The
        // thread count is fixed per run, so the key set stays constant.
        if self.guest_threads > 1 {
            reg.gauge_u64("threads.count", u64::from(self.guest_threads));
            reg.gauge_u64(
                "threads.contended_group_faults",
                self.contended_group_faults,
            );
            for (t, faults) in self.thread_faults.iter().enumerate() {
                reg.gauge_u64(format!("threads.{t}.faults"), *faults);
            }
        }
        reg.snapshot(self.ops)
    }

    /// Flushes all translation state (TLBs, page-walk caches, nested TLBs)
    /// on every core, forcing subsequent accesses to re-walk. Models a
    /// full TLB shootdown / context-switch storm; also useful to observe
    /// cold-walk behaviour of an existing layout.
    pub fn flush_translation_state(&mut self) {
        for tlb in &mut self.tlbs {
            tlb.flush_all();
        }
        for pwc in &mut self.pwcs {
            pwc.flush();
        }
        // The TLB flush bumps every set epoch, which already invalidates all
        // memos; clearing keeps the tables from carrying dead entries.
        self.clear_memos();
    }

    /// Resets all hardware measurement counters (cache + TLB), preserving
    /// cache/TLB *contents*. Used to exclude a warm-up or allocation phase
    /// from measurement, like the paper's §3.3 methodology.
    pub fn reset_measurement(&mut self) {
        self.caches.reset_counters();
        for tlb in &mut self.tlbs {
            tlb.reset_counters();
        }
        for h in &mut self.walk_hist {
            *h = Histogram::new();
        }
        for h in &mut self.fault_hist {
            *h = Histogram::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small())
    }

    #[test]
    fn first_touch_faults_then_hits_tlb() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        let first = m.touch(0, pid, va, false).unwrap();
        assert!(first.faulted);
        assert!(!first.tlb_hit);
        assert!(first.host_faults >= 1);
        let second = m.touch(0, pid, va, false).unwrap();
        assert!(second.tlb_hit);
        assert!(!second.faulted);
        assert!(second.cycles < first.cycles);
    }

    #[test]
    fn serial_machines_emit_no_thread_gauges() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        m.touch(0, pid, va, true).unwrap();
        let snap = m.metrics_snapshot();
        assert!(snap.get("threads.count").is_none());
        assert!(snap.get("threads.0.faults").is_none());
        assert_eq!(m.guest_threads(), 1);
        assert_eq!(m.contended_group_faults(), 0);
    }

    #[test]
    fn multi_threaded_faults_attribute_and_detect_group_contention() {
        let mut m = machine();
        m.set_guest_threads(2);
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 16).unwrap();
        // Thread 0 faults page 0; thread 1 faults page 1 of the *same*
        // 8-page group (contended), then page 8 of the next group (not).
        m.touch(0, pid, va, false).unwrap();
        m.set_active_thread(1);
        m.touch(
            0,
            pid,
            GuestVirtAddr::new(va.raw() + (1 << PAGE_SHIFT)),
            false,
        )
        .unwrap();
        m.touch(
            0,
            pid,
            GuestVirtAddr::new(va.raw() + (8 << PAGE_SHIFT)),
            false,
        )
        .unwrap();
        assert_eq!(m.thread_faults(), &[1, 2]);
        assert_eq!(m.contended_group_faults(), 1);
        let snap = m.metrics_snapshot();
        assert_eq!(snap.get("threads.count").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(
            snap.get("threads.contended_group_faults")
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(
            snap.get("threads.1.faults").and_then(|v| v.as_u64()),
            Some(2)
        );
    }

    #[test]
    fn touch_outside_vma_fails() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        assert!(matches!(
            m.touch(0, pid, GuestVirtAddr::new(0x1000), false),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn nested_walk_charges_guest_and_host_pt_accesses() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        m.touch(0, pid, va, false).unwrap();
        let c = m.caches().counters();
        assert!(c.guest_pt.accesses >= 4, "full guest walk on cold caches");
        assert!(c.host_pt.accesses >= 4, "host walks for nodes + data");
        assert!(c.data.accesses == 1);
    }

    #[test]
    fn walk_of_unmapped_page_errors() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        m.guest_mut().mmap(pid, 4).unwrap();
        assert!(matches!(
            m.nested_walk(0, pid, GuestVirtPage::new(0)),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn isolated_process_has_low_host_pt_fragmentation() {
        // One process alone: the default allocator hands out mostly
        // contiguous frames, but page-table node allocations interleave with
        // data frames, so the metric sits a little above 1 — the paper
        // measures 2.8 in isolation (§3.3), not 1.0.
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 16).unwrap();
        for i in 0..16 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), false)
                .unwrap();
        }
        let frag = m.host_pt_fragmentation(pid).unwrap();
        assert_eq!(frag.groups, 2);
        assert!(frag.mean() >= 1.0);
        assert!(
            frag.mean() <= 3.0,
            "isolation stays low, got {}",
            frag.mean()
        );
        // Guest PTEs, indexed by virtual address, are always packed.
        let gfrag = m.guest_pt_fragmentation(pid).unwrap();
        assert!((gfrag.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interleaved_processes_fragment_host_pt() {
        // Two colocated processes faulting alternately: each one's host PTEs
        // scatter across lines while guest PTEs stay packed — the paper's
        // core observation.
        let mut m = machine();
        let a = m.guest_mut().spawn();
        let b = m.guest_mut().spawn();
        let va_a = m.guest_mut().mmap(a, 32).unwrap();
        let va_b = m.guest_mut().mmap(b, 32).unwrap();
        for i in 0..32 {
            m.touch(0, a, GuestVirtAddr::new(va_a.raw() + i * 4096), false)
                .unwrap();
            m.touch(1, b, GuestVirtAddr::new(va_b.raw() + i * 4096), false)
                .unwrap();
        }
        let frag_a = m.host_pt_fragmentation(a).unwrap();
        assert!(
            frag_a.mean() > 1.5,
            "interleaving must scatter hPTEs, got {}",
            frag_a.mean()
        );
        let guest_frag = m.guest_pt_fragmentation(a).unwrap();
        assert!((guest_frag.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn huge_mappings_walk_one_level_shorter() {
        use crate::guest::{AllocCost, AllocGrant, GuestBuddy, GuestFrameAllocator};

        #[derive(Debug)]
        struct AlwaysHuge;
        impl GuestFrameAllocator for AlwaysHuge {
            fn name(&self) -> &'static str {
                "always-huge"
            }
            fn allocate(
                &mut self,
                _pid: Pid,
                _vpn: GuestVirtPage,
                buddy: &mut GuestBuddy,
            ) -> Result<(vmsim_types::GuestFrame, AllocCost)> {
                Ok((buddy.alloc(0)?, AllocCost::default()))
            }
            fn allocate_grant(
                &mut self,
                pid: Pid,
                vpn: GuestVirtPage,
                huge_candidate: bool,
                buddy: &mut GuestBuddy,
            ) -> Result<(AllocGrant, AllocCost)> {
                if huge_candidate {
                    let chunk = buddy.alloc(9)?;
                    buddy.fragment_allocation(chunk, 9).unwrap();
                    return Ok((AllocGrant::Huge(chunk), AllocCost::default()));
                }
                let (g, c) = self.allocate(pid, vpn, buddy)?;
                Ok((AllocGrant::Small(g), c))
            }
            fn free(
                &mut self,
                _pid: Pid,
                _vpn: GuestVirtPage,
                gfn: vmsim_types::GuestFrame,
                buddy: &mut GuestBuddy,
            ) -> Result<()> {
                buddy.free(gfn, 0)
            }
        }

        let mut m = Machine::with_allocator(MachineConfig::small(), Box::new(AlwaysHuge));
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1024).unwrap();
        let out = m.touch(0, pid, va, true).unwrap();
        assert!(out.faulted);
        assert!(out.cycles >= m.config().cost.huge_fault_extra_cycles);
        // Cold walk of a huge mapping: exactly 3 guest-PT accesses.
        m.reset_measurement();
        m.flush_translation_state();
        let far = GuestVirtAddr::new(va.raw() + 100 * 4096);
        m.touch(0, pid, far, false).unwrap();
        let c = m.caches().counters();
        assert_eq!(c.guest_pt.accesses, 3, "huge walks stop at the PS entry");
        // And the data page translates to chunk base + offset.
        let again = m.touch(0, pid, far, false).unwrap();
        assert!(again.tlb_hit);
    }

    #[test]
    fn munmap_sheds_tlb_entries() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1).unwrap();
        m.touch(0, pid, va, false).unwrap();
        m.touch(0, pid, va, false).unwrap(); // in TLB now
        m.munmap(pid, va.page(), 1).unwrap();
        // Page gone: touching again is a segfault, not a stale TLB hit.
        assert!(m.touch(0, pid, va, false).is_err());
    }

    #[test]
    fn cow_write_via_touch() {
        let mut m = machine();
        let parent = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(parent, 1).unwrap();
        m.touch(0, parent, va, true).unwrap();
        let child = m.guest_mut().fork(parent).unwrap();
        let w = m.touch(0, child, va, true).unwrap();
        assert!(w.cow_break);
        // Parent's subsequent write breaks nothing (sole owner path).
        let w2 = m.touch(0, parent, va, true).unwrap();
        assert!(!w2.cow_break);
        let p_pte = m
            .guest()
            .process(parent)
            .unwrap()
            .page_table
            .lookup(va.page())
            .unwrap();
        assert!(p_pte.is_writable());
    }

    #[test]
    fn exit_flushes_process_state() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 2).unwrap();
        m.touch(0, pid, va, false).unwrap();
        m.exit(pid).unwrap();
        assert!(m.guest().process(pid).is_err());
        assert_eq!(
            m.guest().buddy().free_frames(),
            m.guest().buddy().total_frames()
        );
    }

    #[test]
    fn latency_histograms_record_walks_and_faults() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 8).unwrap();
        for i in 0..8 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                .unwrap();
        }
        assert_eq!(m.fault_latency(0).count(), 8);
        assert!(m.walk_latency(0).count() >= 1);
        assert!(m.fault_latency(0).mean() >= m.config().cost.guest_fault_cycles as f64);
        // Walk tail is bounded by a full cold 2D walk at DRAM latency plus
        // a handful of host faults backing fresh PT-node frames.
        assert!(m.walk_latency(0).max() < 24 * 250 + 5 * 6000);
        m.reset_measurement();
        assert_eq!(m.fault_latency(0).count(), 0);
        assert_eq!(m.walk_latency(0).count(), 0);
    }

    #[test]
    fn metrics_snapshot_covers_every_subsystem() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 8).unwrap();
        for i in 0..8 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                .unwrap();
        }
        let snap = m.metrics_snapshot();
        assert_eq!(snap.op, 8);
        for name in [
            "mem.data.accesses",
            "guest.faults",
            "host.faults",
            "guest_buddy.allocs",
            "host_buddy.allocs",
            "guest_pt.total_nodes",
            "host_pt.total_nodes",
            "tlb.lookups",
            "walk_latency.count",
            "fault_latency.count",
            "faults.injected",
            "faults.chunk_denials",
            "faults.oom_denials",
            "faults.frag_shocks",
            "faults.reclaim_storms",
            "faults.swap_outs",
            "faults.daemon_passes",
            "faults.oom_retries",
            "faults.reclaimed_frames",
        ] {
            assert!(snap.get(name).is_some(), "snapshot missing {name}");
        }
        assert_eq!(snap.get("guest.faults").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn tracer_records_fault_and_walk_events_without_changing_outcomes() {
        let run = |traced: bool| {
            let mut m = machine();
            if traced {
                m.install_tracer(vmsim_obs::Tracer::new());
            }
            let pid = m.guest_mut().spawn();
            let va = m.guest_mut().mmap(pid, 8).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..8 {
                outcomes.push(
                    m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                        .unwrap(),
                );
            }
            (outcomes, m.metrics_snapshot(), m.take_tracer())
        };
        let (plain_out, plain_snap, plain_tracer) = run(false);
        let (traced_out, traced_snap, traced_tracer) = run(true);
        // Tracing must not perturb the simulation.
        assert_eq!(plain_out, traced_out);
        assert_eq!(plain_snap, traced_snap);
        assert!(plain_tracer.is_none());
        let tracer = traced_tracer.expect("tracer was installed");
        assert_eq!(tracer.count_kind("page_fault"), 8);
        assert!(tracer.count_kind("pt_walk") >= 1);
        assert!(
            tracer.count_kind("buddy_split") >= 1,
            "cold pool must split"
        );
        assert!(tracer.events().all(|e| e.op >= 1 && e.op <= 8));
    }

    #[test]
    fn reclaim_wrapper_emits_reclaim_event() {
        let mut m = machine();
        m.install_tracer(vmsim_obs::Tracer::new());
        m.reclaim_reservations(64);
        let tracer = m.take_tracer().unwrap();
        assert_eq!(tracer.count_kind("reservation_reclaim"), 1);
    }

    #[test]
    fn zero_fault_plan_changes_nothing() {
        let run = |faulted: bool| {
            let mut m = machine();
            if faulted {
                m.install_faults(FaultPlan::default(), 42);
            }
            let pid = m.guest_mut().spawn();
            let va = m.guest_mut().mmap(pid, 8).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..8 {
                outcomes.push(
                    m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                        .unwrap(),
                );
            }
            (outcomes, m.metrics_snapshot())
        };
        let (plain_out, plain_snap) = run(false);
        let (faulted_out, faulted_snap) = run(true);
        assert_eq!(plain_out, faulted_out, "zero plan must be invisible");
        assert_eq!(plain_snap, faulted_snap, "same snapshot incl. key set");
    }

    #[test]
    fn injected_oom_is_absorbed_by_reclaim_and_retry() {
        let mut m = machine();
        m.install_tracer(vmsim_obs::Tracer::new());
        m.install_faults(
            FaultPlan {
                oom_rate: 1.0,
                ..FaultPlan::default()
            },
            0,
        );
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        for i in 0..4 {
            // Every data-frame allocation is denied once, absorbed, and
            // retried with injection suppressed — the touch still succeeds.
            let out = m
                .touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), false)
                .unwrap();
            assert!(out.faulted);
        }
        let snap = m.metrics_snapshot();
        assert!(snap.get("faults.oom_denials").unwrap().as_u64().unwrap() >= 4);
        assert!(snap.get("faults.oom_retries").unwrap().as_u64().unwrap() >= 4);
        let tracer = m.take_tracer().unwrap();
        assert!(tracer.count_kind("oom_retry") >= 4);
        assert!(tracer.count_kind("fault_injected") >= 4);
        assert_eq!(tracer.count_kind("page_fault"), 4);
    }

    #[test]
    fn frag_shock_fires_on_schedule_and_is_survivable() {
        let mut m = machine();
        m.install_tracer(vmsim_obs::Tracer::new());
        m.install_faults(
            FaultPlan {
                frag_shock_every: Some(2),
                frag_shock_order: 0,
                ..FaultPlan::default()
            },
            0,
        );
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 8).unwrap();
        for i in 0..8 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), false)
                .unwrap();
        }
        let snap = m.metrics_snapshot();
        assert_eq!(snap.get("faults.frag_shocks").unwrap().as_u64(), Some(4));
        let tracer = m.take_tracer().unwrap();
        assert_eq!(tracer.count_kind("frag_shock"), 4);
    }

    /// A little workload with warm re-touches, a fork, COW breaks, and an
    /// unmap — enough to exercise every memo validation clause.
    fn mixed_workload(m: &mut Machine) -> Vec<TouchOutcome> {
        let mut outcomes = Vec::new();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 8).unwrap();
        for round in 0..3 {
            for i in 0..8 {
                let a = GuestVirtAddr::new(va.raw() + i * 4096);
                outcomes.push(m.touch(0, pid, a, round == 2).unwrap());
                outcomes.push(m.touch(0, pid, a, false).unwrap());
            }
        }
        let child = m.guest_mut().fork(pid).unwrap();
        for i in 0..8 {
            let a = GuestVirtAddr::new(va.raw() + i * 4096);
            outcomes.push(m.touch(0, pid, a, false).unwrap());
            outcomes.push(m.touch(1, child, a, true).unwrap());
            outcomes.push(m.touch(1, child, a, true).unwrap());
        }
        m.munmap(pid, va.page(), 2).unwrap();
        for i in 2..8 {
            let a = GuestVirtAddr::new(va.raw() + i * 4096);
            outcomes.push(m.touch(0, pid, a, true).unwrap());
        }
        outcomes
    }

    #[test]
    fn memo_layer_is_bit_invisible() {
        let run = |memo: bool| {
            let mut m = machine();
            m.set_memo_enabled(memo);
            let outcomes = mixed_workload(&mut m);
            (outcomes, m.metrics_snapshot(), m.memo_stats())
        };
        let (naive_out, naive_snap, naive_stats) = run(false);
        let (memo_out, memo_snap, memo_stats) = run(true);
        assert_eq!(naive_out, memo_out, "outcomes must be bit-identical");
        assert_eq!(naive_snap, memo_snap, "snapshots must be bit-identical");
        assert_eq!(naive_stats.hits, 0, "disabled layer never replays");
        assert!(memo_stats.hits > 0, "warm re-touches must replay");
    }

    #[test]
    fn memo_layer_is_bit_invisible_under_tracing() {
        let run = |memo: bool| {
            let mut m = machine();
            m.set_memo_enabled(memo);
            m.install_tracer(vmsim_obs::Tracer::new());
            let outcomes = mixed_workload(&mut m);
            let tracer = m.take_tracer().unwrap();
            let events: Vec<String> = tracer
                .events()
                .map(|e| format!("{}:{:?}", e.op, e.kind))
                .collect();
            (outcomes, m.metrics_snapshot(), events)
        };
        let (naive_out, naive_snap, naive_events) = run(false);
        let (memo_out, memo_snap, memo_events) = run(true);
        assert_eq!(naive_out, memo_out);
        assert_eq!(naive_snap, memo_snap);
        assert_eq!(naive_events, memo_events, "trace streams must match");
    }

    #[test]
    fn profiler_is_bit_invisible_and_accounts_every_cycle() {
        use vmsim_obs::Phase;
        let run = |profile: bool| {
            let mut m = machine();
            if profile {
                m.install_profiler(vmsim_obs::Profiler::new());
            }
            let outcomes = mixed_workload(&mut m);
            let profile = m.take_profiler().map(|p| p.finish(0));
            (outcomes, m.metrics_snapshot(), profile)
        };
        let (plain_out, plain_snap, none) = run(false);
        let (prof_out, prof_snap, profile) = run(true);
        assert!(none.is_none());
        assert_eq!(plain_out, prof_out, "outcomes must be bit-identical");
        assert_eq!(plain_snap, prof_snap, "snapshots must be bit-identical");

        // The per-phase cycle ledger partitions the total cycle cost.
        let profile = profile.expect("profiler installed");
        let total_cycles: u64 = plain_out.iter().map(|o| o.cycles).sum();
        let attributed: u64 = profile.phases.iter().map(|p| p.cycles).sum();
        assert_eq!(attributed, total_cycles, "phase cycles must partition");
        // The workload faults, walks, memo-replays, and allocates.
        for phase in [
            Phase::MemoProbe,
            Phase::GuestWalk,
            Phase::HostWalk,
            Phase::Alloc,
            Phase::Workload,
        ] {
            assert!(
                profile.get(phase).cycles > 0,
                "phase {} accrued no cycles",
                phase.name()
            );
        }
        // Span accounting: every touch probes the TLB or replays a memo.
        assert!(profile.get(Phase::TlbLookup).enters > 0);
        assert!(profile.get(Phase::Fill).enters > 0);
    }

    #[test]
    fn profiled_touch_run_matches_profiled_per_op_touches() {
        // touch_run's streak fast path charges its cycles to memo_probe;
        // the equivalence with per-op stepping must hold for the
        // deterministic profile columns too.
        let mut m = machine();
        m.install_profiler(vmsim_obs::Profiler::new());
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        let run: Vec<(GuestVirtAddr, bool)> = (0..32)
            .map(|i| (GuestVirtAddr::new(va.raw() + (i / 8) * 4096), false))
            .collect();
        let batched_total = m.touch_run(0, pid, &run).unwrap();
        let batched: Vec<(u64, u64)> = m
            .take_profiler()
            .unwrap()
            .finish(0)
            .phases
            .iter()
            .map(|p| (p.cycles, p.enters))
            .collect();

        let mut m = machine();
        m.install_profiler(vmsim_obs::Profiler::new());
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        let mut per_op_total = 0;
        for i in 0..32u64 {
            per_op_total += m
                .touch(0, pid, GuestVirtAddr::new(va.raw() + (i / 8) * 4096), false)
                .unwrap()
                .cycles;
        }
        let per_op: Vec<(u64, u64)> = m
            .take_profiler()
            .unwrap()
            .finish(0)
            .phases
            .iter()
            .map(|p| (p.cycles, p.enters))
            .collect();
        assert_eq!(batched_total, per_op_total);
        let total = |v: &[(u64, u64)]| -> u64 { v.iter().map(|&(c, _)| c).sum() };
        assert_eq!(total(&batched), total(&per_op), "cycle ledgers agree");
    }

    #[test]
    fn touch_run_matches_per_op_touches() {
        let ops: Vec<(u64, bool)> = (0..64)
            .flat_map(|i| {
                let page = (i * 7) % 8;
                // Streaks of 3 touches per page, writes every other op.
                (0..3).map(move |j| (page, j % 2 == 0))
            })
            .collect();
        let per_op = {
            let mut m = machine();
            let pid = m.guest_mut().spawn();
            let va = m.guest_mut().mmap(pid, 8).unwrap();
            let mut total = 0u64;
            for &(page, w) in &ops {
                total += m
                    .touch(0, pid, GuestVirtAddr::new(va.raw() + page * 4096), w)
                    .unwrap()
                    .cycles;
            }
            (total, m.ops_executed(), m.metrics_snapshot())
        };
        let batched = {
            let mut m = machine();
            let pid = m.guest_mut().spawn();
            let va = m.guest_mut().mmap(pid, 8).unwrap();
            let run: Vec<(GuestVirtAddr, bool)> = ops
                .iter()
                .map(|&(page, w)| (GuestVirtAddr::new(va.raw() + page * 4096), w))
                .collect();
            let total = m.touch_run(0, pid, &run).unwrap();
            (total, m.ops_executed(), m.metrics_snapshot())
        };
        assert_eq!(per_op, batched, "batching must be bit-identical");
    }

    #[test]
    fn memo_invalidated_by_cow_and_unmap() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1).unwrap();
        m.touch(0, pid, va, false).unwrap();
        m.touch(0, pid, va, false).unwrap();
        assert!(m.memo_stats().hits >= 1, "warm read replays");
        // Fork downgrades the parent's PTE to COW: a memoized *write* must
        // not replay (it needs a COW break), and even reads revalidate.
        let child = m.guest_mut().fork(pid).unwrap();
        let hits_before = m.memo_stats().hits;
        let w = m.touch(0, pid, va, true).unwrap();
        assert!(w.cow_break || w.cycles > m.config().cost.work_cycles_per_access + 10);
        assert_eq!(m.memo_stats().hits, hits_before, "stale memo must miss");
        // Unmap in the child: its memoized touch goes slow and segfaults.
        m.touch(1, child, va, false).unwrap();
        m.munmap(child, va.page(), 1).unwrap();
        assert!(m.touch(1, child, va, false).is_err(), "no stale replay");
    }

    #[test]
    fn memo_cleared_by_fault_plan_triggers() {
        let mut m = machine();
        m.install_faults(
            FaultPlan {
                frag_shock_every: Some(4),
                frag_shock_order: 0,
                ..FaultPlan::default()
            },
            0,
        );
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1).unwrap();
        let clears_start = m.memo_stats().clears;
        for _ in 0..8 {
            m.touch(0, pid, va, false).unwrap();
        }
        assert!(
            m.memo_stats().clears >= clears_start + 2,
            "each fired shock clears the memo tables"
        );
    }

    #[test]
    fn reset_measurement_clears_counters_not_contents() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1).unwrap();
        m.touch(0, pid, va, false).unwrap();
        m.reset_measurement();
        assert_eq!(m.caches().counters().data.accesses, 0);
        assert_eq!(m.tlb(0).lookups(), 0);
        // TLB contents survived.
        let again = m.touch(0, pid, va, false).unwrap();
        assert!(again.tlb_hit);
    }

    /// A small colocated host: `vms` guests at 2x memory overcommit.
    fn tiny_multi_config(vms: u64) -> MachineConfig {
        let mut c = MachineConfig::small();
        c.guest_frames = 1 << 10;
        c.host_frames = vms * (1 << 9);
        c
    }

    fn multi(config: MachineConfig, vms: usize) -> Machine {
        Machine::multi_tenant(config, vms, |_| Box::new(DefaultAllocator::new()))
    }

    #[test]
    fn one_vm_multi_tenant_matches_single_tenant_bitwise() {
        let mut single = machine();
        let mut host = multi(MachineConfig::small(), 1);
        let single_out = mixed_workload(&mut single);
        let host_out = mixed_workload(&mut host);
        assert_eq!(single_out, host_out, "outcomes must be bit-identical");
        assert_eq!(
            single.metrics_snapshot(),
            host.metrics_snapshot(),
            "snapshots must be bit-identical"
        );
    }

    #[test]
    fn colocated_vms_never_share_host_frames() {
        let mut m = multi(tiny_multi_config(4), 4);
        for vm in 0..4 {
            let pid = m.vm_guest_mut(vm).spawn();
            let va = m.vm_guest_mut(vm).mmap(pid, 16).unwrap();
            for i in 0..16 {
                let a = GuestVirtAddr::new(va.raw() + i * 4096);
                m.touch_vm(vm, 0, pid, a, true).unwrap();
            }
        }
        let refs = m.host().frame_refs();
        assert!(refs.referenced_frames() >= 64, "each VM faulted 16 pages");
        assert_eq!(
            refs.total_refs(),
            refs.referenced_frames(),
            "no host frame may back two guest-physical pages"
        );
    }

    #[test]
    fn vm_kill_releases_host_frames_and_reboot_starts_fresh() {
        let mut m = multi(tiny_multi_config(2), 2);
        let p0 = m.vm_guest_mut(0).spawn();
        let va0 = m.vm_guest_mut(0).mmap(p0, 4).unwrap();
        m.touch_vm(0, 0, p0, va0, false).unwrap();
        let p1 = m.vm_guest_mut(1).spawn();
        let va1 = m.vm_guest_mut(1).mmap(p1, 8).unwrap();
        for i in 0..8 {
            let a = GuestVirtAddr::new(va1.raw() + i * 4096);
            m.touch_vm(1, 0, p1, a, false).unwrap();
        }
        let free_before = m.host_free_frames();
        let released = m.kill_vm(1);
        assert!(released >= 8, "data pages plus PT backing come home");
        assert_eq!(m.host_free_frames(), free_before + released);
        assert!(!m.vm_running(1));
        // The survivor keeps its guest mapping (no fault), but the
        // teardown shootdown forces a fresh walk.
        let out = m.touch_vm(0, 0, p0, va0, false).unwrap();
        assert!(!out.faulted);
        assert!(!out.tlb_hit);
        // The rebooted slot is a fresh guest: everything faults anew.
        m.boot_vm(1);
        assert!(m.vm_running(1));
        assert_eq!(m.vm_boots(1), 2);
        let p1 = m.vm_guest_mut(1).spawn();
        let va1 = m.vm_guest_mut(1).mmap(p1, 1).unwrap();
        assert!(m.touch_vm(1, 0, p1, va1, false).unwrap().faulted);
    }

    #[test]
    fn balloon_pins_guest_frames_and_deflate_returns_them() {
        let mut m = multi(tiny_multi_config(2), 2);
        let pid = m.vm_guest_mut(1).spawn();
        let va = m.vm_guest_mut(1).mmap(pid, 8).unwrap();
        for i in 0..8 {
            let a = GuestVirtAddr::new(va.raw() + i * 4096);
            m.touch_vm(1, 0, pid, a, false).unwrap();
        }
        let guest_free = m.vm_guest(1).buddy().free_frames();
        let host_free = m.host_free_frames();
        assert_eq!(m.balloon_vm(1, 64), 64);
        assert_eq!(m.vm_ballooned(1), 64);
        assert_eq!(m.vm_guest(1).buddy().free_frames(), guest_free - 64);
        assert!(
            m.host_free_frames() >= host_free,
            "inflation never consumes host memory"
        );
        assert_eq!(m.deflate_vm(1, 64), 64);
        assert_eq!(m.vm_ballooned(1), 0);
        assert_eq!(m.vm_guest(1).buddy().free_frames(), guest_free);
    }

    #[test]
    fn multi_tenant_snapshot_adds_host_and_vm_gauges() {
        let single = machine();
        let snap = single.metrics_snapshot();
        assert!(
            snap.get("host.free_frames").is_none(),
            "single-tenant key set must not change"
        );
        let m = multi(tiny_multi_config(2), 2);
        let snap = m.metrics_snapshot();
        assert!(snap.get("host.free_frames").is_some());
        assert!(snap.get("host.backed_frames").is_some());
        assert!(snap.get("host.frag").is_some());
        assert_eq!(snap.get("host.vms_running").unwrap().as_u64(), Some(2));
        for vm in 0..2 {
            assert_eq!(
                snap.get(&format!("vm.{vm}.running")).unwrap().as_u64(),
                Some(1)
            );
            assert!(snap.get(&format!("vm.{vm}.rss_pages")).is_some());
        }
    }

    #[test]
    fn lifecycle_events_are_traced() {
        let mut m = multi(tiny_multi_config(2), 2);
        m.install_tracer(vmsim_obs::Tracer::new());
        assert!(m.balloon_vm(1, 4) == 4);
        assert!(m.deflate_vm(1, 4) == 4);
        m.kill_vm(1);
        m.boot_vm(1);
        let t = m.take_tracer().unwrap();
        assert_eq!(t.count_kind("balloon"), 2);
        assert_eq!(t.count_kind("vm_kill"), 1);
        assert_eq!(t.count_kind("vm_boot"), 1);
    }
}
