//! The assembled virtual machine: guest OS + host OS + hardware models,
//! including the nested (2D) page-walk engine.
//!
//! [`Machine::touch`] is the simulator's inner loop: it plays one memory
//! access by one guest process on one core, serving guest/host page faults,
//! consulting the TLB, performing the nested walk on a miss (charging every
//! page-table access to the cache hierarchy), and finally accessing the data
//! line — returning the total cycle cost. The up-to-24-access structure of a
//! 2D walk (paper §2.5: 4 guest-PT accesses, each needing up to 4 host-PT
//! accesses, plus a final host walk for the data page) arises naturally;
//! page-walk caches and the nested TLB short-circuit most upper-level
//! accesses exactly as hardware does, leaving leaf PTE fetches dominant.

use serde::{Deserialize, Serialize};
use vmsim_cache::{
    AccessKind, CacheHierarchy, HierarchyConfig, Histogram, PageWalkCaches, PwcConfig, Tlb,
    TlbConfig,
};
use vmsim_pt::LineCensus;
use vmsim_types::{
    FaultInjector, FaultPlan, GuestFrame, GuestVirtAddr, GuestVirtPage, HostFrame, HostPhysAddr,
    HostVirtPage, MemError, Result, GROUP_PAGES, PAGE_SHIFT, PTE_SIZE, PT_LEVELS,
};

use crate::cost::CostModel;
use crate::guest::{DefaultAllocator, GuestFrameAllocator, GuestOs};
use crate::host::HostOs;
use crate::process::Pid;

/// Full machine configuration.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Guest-physical frames (VM RAM size in pages).
    pub guest_frames: u64,
    /// Host-physical frames (machine RAM size in pages).
    pub host_frames: u64,
    /// Host-virtual page where the VM's guest-physical range is mapped.
    pub vm_base: u64,
    /// Cache hierarchy geometry and latencies.
    pub hierarchy: HierarchyConfig,
    /// TLB geometry.
    pub tlb: TlbConfig,
    /// Page-walk-cache / nested-TLB geometry.
    pub pwc: PwcConfig,
    /// Software event costs.
    pub cost: CostModel,
}

impl MachineConfig {
    /// A small configuration for unit tests and examples: 64 MB guest RAM,
    /// tiny caches, 2 cores.
    pub fn small() -> Self {
        Self {
            guest_frames: 1 << 14,
            host_frames: 1 << 15,
            vm_base: 1 << 20,
            hierarchy: HierarchyConfig::tiny(2),
            tlb: TlbConfig::default(),
            pwc: PwcConfig::default(),
            cost: CostModel::default(),
        }
    }

    /// A scaled-down version of the paper's platform (Table 2): Broadwell
    /// cache geometry with `cores` cores and `guest_mb` of VM RAM (the
    /// evaluation scales the paper's 64 GB VM by keeping the ratio of
    /// workload footprint to LLC capacity in the same regime).
    pub fn paper(cores: usize, guest_mb: u64) -> Self {
        let guest_frames = guest_mb * 256; // 256 pages per MB
        Self {
            guest_frames,
            host_frames: guest_frames * 2,
            vm_base: 1 << 24,
            hierarchy: HierarchyConfig::broadwell(cores),
            tlb: TlbConfig::default(),
            pwc: PwcConfig::default(),
            cost: CostModel::default(),
        }
    }
}

/// Outcome of one [`Machine::touch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TouchOutcome {
    /// Total cycles charged for the access (software + hardware).
    pub cycles: u64,
    /// Whether the translation hit in the TLB.
    pub tlb_hit: bool,
    /// Whether a guest page fault was served.
    pub faulted: bool,
    /// Whether a COW break copied the page.
    pub cow_break: bool,
    /// Host faults served while backing frames for this access.
    pub host_faults: u32,
}

/// The assembled VM: guest, host, and hardware state.
#[derive(Debug)]
pub struct Machine {
    guest: GuestOs,
    host: HostOs,
    caches: CacheHierarchy,
    tlbs: Vec<Tlb>,
    pwcs: Vec<PageWalkCaches>,
    /// Per-core nested-walk latency distributions.
    walk_hist: Vec<Histogram>,
    /// Per-core fault-service latency distributions (guest fault + backing).
    fault_hist: Vec<Histogram>,
    cost: CostModel,
    config: MachineConfig,
    /// Monotonic count of [`Machine::touch`] calls — the sim-op clock that
    /// timestamps observability snapshots and trace events.
    ops: u64,
    /// Optional event tracer. `None` (the default) costs one branch per
    /// event site and keeps the simulation outcome bit-identical.
    tracer: Option<vmsim_obs::Tracer>,
    /// Optional fault-injection driver. `None` (the default) costs one
    /// branch per op; the probabilistic injector itself lives inside the
    /// guest buddy allocator.
    faults: Option<FaultDriver>,
}

/// Machine-level state of an installed [`vmsim_types::FaultPlan`]: the
/// scheduled triggers (fragmentation shocks, reclaim storms, swap-outs,
/// daemon passes) and their counters. Per-allocation denial rolls live in
/// the injector installed into the guest buddy allocator.
#[derive(Clone, Copy, Debug)]
struct FaultDriver {
    plan: FaultPlan,
    frag_shocks: u64,
    reclaim_storms: u64,
    swap_outs: u64,
    daemon_passes: u64,
    oom_retries: u64,
    /// Frames released by storms, daemon passes, swap-outs, and OOM-retry
    /// reclaims driven by the plan.
    reclaimed_frames: u64,
}

impl FaultDriver {
    fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            frag_shocks: 0,
            reclaim_storms: 0,
            swap_outs: 0,
            daemon_passes: 0,
            oom_retries: 0,
            reclaimed_frames: 0,
        }
    }
}

impl Machine {
    /// Builds a machine with the stock Linux-like allocator.
    pub fn new(config: MachineConfig) -> Self {
        Self::with_allocator(config, Box::new(DefaultAllocator::new()))
    }

    /// Builds a machine with a custom guest frame allocator (PTEMagnet plugs
    /// in here).
    pub fn with_allocator(config: MachineConfig, allocator: Box<dyn GuestFrameAllocator>) -> Self {
        let cores = config.hierarchy.cores;
        Self {
            guest: GuestOs::new(config.guest_frames, allocator),
            host: HostOs::new(config.host_frames, HostVirtPage::new(config.vm_base)),
            caches: CacheHierarchy::new(config.hierarchy),
            tlbs: (0..cores).map(|_| Tlb::new(config.tlb)).collect(),
            pwcs: (0..cores)
                .map(|_| PageWalkCaches::new(config.pwc))
                .collect(),
            walk_hist: (0..cores).map(|_| Histogram::new()).collect(),
            fault_hist: (0..cores).map(|_| Histogram::new()).collect(),
            cost: config.cost,
            config,
            ops: 0,
            tracer: None,
            faults: None,
        }
    }

    /// Number of [`Machine::touch`] calls played so far (the sim-op clock).
    pub fn ops_executed(&self) -> u64 {
        self.ops
    }

    /// Installs an event tracer; subsequent faults, walks, and reservation
    /// activity emit typed events into it.
    pub fn install_tracer(&mut self, tracer: vmsim_obs::Tracer) {
        self.tracer = Some(tracer);
    }

    /// Removes and returns the tracer (with every retained event), if one
    /// was installed.
    pub fn take_tracer(&mut self) -> Option<vmsim_obs::Tracer> {
        self.tracer.take()
    }

    /// The installed tracer, if any.
    pub fn tracer(&self) -> Option<&vmsim_obs::Tracer> {
        self.tracer.as_ref()
    }

    /// Installs a fault plan: a seeded injector goes into the guest buddy
    /// allocator (per-allocation denial rolls) and this machine drives the
    /// plan's scheduled triggers on every [`Machine::touch`]. The decision
    /// stream is a pure function of `(plan, run_seed)`, so faulted runs are
    /// bit-reproducible regardless of worker-pool width.
    pub fn install_faults(&mut self, plan: FaultPlan, run_seed: u64) {
        self.guest
            .buddy_mut()
            .set_fault_injector(FaultInjector::new(&plan, run_seed));
        self.faults = Some(FaultDriver::new(plan));
    }

    /// Whether a fault plan is installed.
    pub fn faults_installed(&self) -> bool {
        self.faults.is_some()
    }

    /// The guest OS.
    pub fn guest(&self) -> &GuestOs {
        &self.guest
    }

    /// Mutable access to the guest OS (spawn processes, mmap, …).
    pub fn guest_mut(&mut self) -> &mut GuestOs {
        &mut self.guest
    }

    /// The host OS.
    pub fn host(&self) -> &HostOs {
        &self.host
    }

    /// The cache hierarchy (for counters).
    pub fn caches(&self) -> &CacheHierarchy {
        &self.caches
    }

    /// The TLB of `core`.
    pub fn tlb(&self, core: usize) -> &Tlb {
        &self.tlbs[core]
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Plays one memory access: (`core`, `pid`) touches guest-virtual `va`.
    ///
    /// Serves guest/host faults as needed, models the TLB lookup, the nested
    /// walk on a miss, and the data access itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use vmsim_os::{Machine, MachineConfig};
    ///
    /// # fn main() -> Result<(), vmsim_types::MemError> {
    /// let mut m = Machine::new(MachineConfig::small());
    /// let pid = m.guest_mut().spawn();
    /// let va = m.guest_mut().mmap(pid, 1)?;
    /// let cold = m.touch(0, pid, va, true)?; // faults, walks, fills caches
    /// let warm = m.touch(0, pid, va, false)?; // pure TLB + L1 hit
    /// assert!(cold.faulted && warm.tlb_hit);
    /// assert!(warm.cycles < cold.cycles / 10);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] for addresses outside every VMA and
    /// [`MemError::OutOfMemory`] when a fault cannot be served.
    pub fn touch(
        &mut self,
        core: usize,
        pid: Pid,
        va: GuestVirtAddr,
        is_write: bool,
    ) -> Result<TouchOutcome> {
        let vpn = va.page();
        self.ops += 1;
        // Scheduled fault triggers fire before the access is served, so a
        // fragmentation shock can deny this very op's reservation chunk.
        if self.faults.is_some() {
            self.drive_fault_schedule();
        }
        let mut out = TouchOutcome {
            cycles: self.cost.work_cycles_per_access,
            ..TouchOutcome::default()
        };
        // Buddy counters before the fault section, so tracing can report
        // split/merge activity caused by this access. Read only when a
        // tracer is installed — the disabled path stays a single branch.
        let buddy_before = self.tracer.as_ref().map(|_| *self.guest.buddy().stats());
        let injector_before = if self.tracer.is_some() {
            self.guest.buddy().fault_injector().map(|i| i.stats())
        } else {
            None
        };

        // 1. Ensure the page is mapped (guest fault) and writable if needed
        //    (COW break).
        let cycles_before_fault = out.cycles;
        let pte = self.guest.process(pid)?.page_table.lookup(vpn);
        match pte {
            None => {
                let info = match self.guest.page_fault(pid, vpn) {
                    Ok(info) => info,
                    Err(MemError::OutOfMemory { .. }) if self.faults.is_some() => {
                        self.absorb_oom_and_retry(pid, vpn, |g, p, v| g.page_fault(p, v))?
                    }
                    Err(e) => return Err(e),
                };
                out.faulted = true;
                out.cycles += self.cost.guest_fault_cycles
                    + u64::from(info.cost.buddy_calls + info.pt_node_allocs)
                        * self.cost.buddy_call_cycles
                    + u64::from(info.cost.part_lookups) * self.cost.part_lookup_cycles;
                if info.huge {
                    // Zeroing a 2 MB chunk on first touch.
                    out.cycles += self.cost.huge_fault_extra_cycles;
                }
                // The faulting instruction touches the page immediately, so
                // the host backs the data frame right away.
                let (_hfn, host_faulted) = self.host.back_guest_frame(info.gfn)?;
                if host_faulted {
                    out.host_faults += 1;
                    out.cycles += self.cost.host_fault_cycles;
                }
                if let Some(tracer) = self.tracer.as_mut() {
                    let op = self.ops;
                    tracer.emit(
                        op,
                        vmsim_obs::EventKind::PageFault {
                            pid: pid.0,
                            vpn: vpn.raw(),
                            gfn: info.gfn.raw(),
                            huge: info.huge,
                        },
                    );
                    if info.cost.reservation_hit {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ReservationHit {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: info.gfn.raw(),
                            },
                        );
                    }
                    if info.cost.reservation_new {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ReservationTake {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: info.gfn.raw(),
                            },
                        );
                    }
                    if info.cost.fallback {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ReservationFallback {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: info.gfn.raw(),
                            },
                        );
                    }
                    if info.huge {
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::ThpCollapse {
                                pid: pid.0,
                                vpn: vpn.raw() & !(vmsim_types::PT_ENTRIES - 1),
                            },
                        );
                    }
                }
            }
            Some(pte) if is_write && pte.is_cow() => {
                let (new_gfn, copied) = match self.guest.write_fault(pid, vpn) {
                    Ok(r) => r,
                    Err(MemError::OutOfMemory { .. }) if self.faults.is_some() => {
                        self.absorb_oom_and_retry(pid, vpn, |g, p, v| g.write_fault(p, v))?
                    }
                    Err(e) => return Err(e),
                };
                out.cow_break = copied;
                out.cycles += self.cost.guest_fault_cycles;
                if copied {
                    out.cycles += self.cost.buddy_call_cycles;
                    let (_hfn, host_faulted) = self.host.back_guest_frame(new_gfn)?;
                    if host_faulted {
                        out.host_faults += 1;
                        out.cycles += self.cost.host_fault_cycles;
                    }
                    if let Some(tracer) = self.tracer.as_mut() {
                        let op = self.ops;
                        tracer.emit(
                            op,
                            vmsim_obs::EventKind::PageFault {
                                pid: pid.0,
                                vpn: vpn.raw(),
                                gfn: new_gfn.raw(),
                                huge: false,
                            },
                        );
                    }
                }
                // The mapping changed: shoot down stale translations.
                for tlb in &mut self.tlbs {
                    tlb.invalidate(pid.0, vpn);
                }
            }
            Some(_) => {}
        }
        if out.faulted || out.cow_break {
            self.fault_hist[core].record(out.cycles - cycles_before_fault);
        }
        if let Some(before) = buddy_before {
            let after = *self.guest.buddy().stats();
            let (splits, merges) = (after.splits - before.splits, after.merges - before.merges);
            let tracer = self.tracer.as_mut().expect("buddy_before implies tracer");
            if splits > 0 {
                tracer.emit(self.ops, vmsim_obs::EventKind::BuddySplit { count: splits });
            }
            if merges > 0 {
                tracer.emit(self.ops, vmsim_obs::EventKind::BuddyMerge { count: merges });
            }
        }
        if let Some(before) = injector_before {
            let after = self
                .guest
                .buddy()
                .fault_injector()
                .expect("injector persists once installed")
                .stats();
            let chunk_denials = after.chunk_denials - before.chunk_denials;
            let oom_denials = after.oom_denials - before.oom_denials;
            if chunk_denials + oom_denials > 0 {
                let tracer = self
                    .tracer
                    .as_mut()
                    .expect("injector_before implies tracer");
                tracer.emit(
                    self.ops,
                    vmsim_obs::EventKind::FaultInjected {
                        chunk_denials,
                        oom_denials,
                    },
                );
            }
        }

        // 2. Translate.
        let hfn = match self.tlbs[core].lookup(pid.0, vpn) {
            Some(hfn) => {
                out.tlb_hit = true;
                hfn
            }
            None => {
                let (hfn, walk_cycles, host_faults) = self.nested_walk(core, pid, vpn)?;
                out.cycles += walk_cycles;
                out.host_faults += host_faults;
                hfn
            }
        };

        // 3. Access the data itself.
        let data_hpa = HostPhysAddr::new((hfn.raw() << PAGE_SHIFT) + va.page_offset());
        out.cycles += self.caches.access(core, data_hpa, AccessKind::Data).cycles;
        Ok(out)
    }

    /// Fires the installed plan's scheduled triggers due at the current op:
    /// fragmentation shocks, reclaim storms, host swap-outs, and the
    /// watermark-driven daemon pass. Everything here is a deterministic
    /// function of the op clock and guest state.
    fn drive_fault_schedule(&mut self) {
        let Some(mut driver) = self.faults else {
            return;
        };
        let op = self.ops;
        let due = |every: Option<u64>| matches!(every, Some(n) if n > 0 && op.is_multiple_of(n));

        if due(driver.plan.frag_shock_every) {
            let max_order = driver.plan.frag_shock_order;
            let splits = self.guest.buddy_mut().shatter(max_order);
            driver.frag_shocks += 1;
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(op, vmsim_obs::EventKind::FragShock { max_order, splits });
            }
        }
        if due(driver.plan.reclaim_storm_every) {
            let frames = self
                .guest
                .reclaim_reservations(driver.plan.reclaim_storm_frames);
            driver.reclaim_storms += 1;
            driver.reclaimed_frames += frames;
            if let Some(tracer) = self.tracer.as_mut() {
                tracer.emit(op, vmsim_obs::EventKind::ReclaimStorm { frames });
            }
        }
        if due(driver.plan.swap_out_every) {
            // The host picks a reserved-unused frame (there is nothing to
            // swap out otherwise) and the §4.4 hook releases its covering
            // reservation.
            if let Some(gfn) = self.guest.allocator().any_reserved_unused_frame() {
                let frames = self.guest.swap_target(gfn);
                driver.swap_outs += 1;
                driver.reclaimed_frames += frames;
                if let Some(tracer) = self.tracer.as_mut() {
                    tracer.emit(
                        op,
                        vmsim_obs::EventKind::SwapOut {
                            gfn: gfn.raw(),
                            frames,
                        },
                    );
                }
            }
        }
        if let Some(threshold) = driver.plan.daemon_threshold {
            if self.guest.buddy().free_fraction() < threshold {
                // The §4.3 daemon: restore free memory to the high
                // watermark by draining reserved-unused frames.
                let restore_to = driver.plan.daemon_restore_to.unwrap_or(threshold);
                let total = self.guest.buddy().total_frames();
                let have = self.guest.buddy().free_frames();
                let want = (restore_to * total as f64) as u64;
                let target = want.saturating_sub(have);
                if target > 0 {
                    let freed = self.reclaim_reservations(target);
                    driver.daemon_passes += 1;
                    driver.reclaimed_frames += freed;
                }
            }
        }
        self.faults = Some(driver);
    }

    /// Graceful degradation for an out-of-memory fault under an installed
    /// plan: reclaim reserved-unused frames, then retry the faulting
    /// operation exactly once with injection suppressed, so an injected
    /// denial cannot re-deny its own recovery. A second failure (memory
    /// genuinely exhausted) propagates.
    fn absorb_oom_and_retry<T>(
        &mut self,
        pid: Pid,
        vpn: GuestVirtPage,
        retry: impl FnOnce(&mut GuestOs, Pid, GuestVirtPage) -> Result<T>,
    ) -> Result<T> {
        let reclaimed = self.guest.reclaim_reservations(GROUP_PAGES * 4);
        if let Some(driver) = self.faults.as_mut() {
            driver.oom_retries += 1;
            driver.reclaimed_frames += reclaimed;
        }
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(self.ops, vmsim_obs::EventKind::OomRetry { reclaimed });
        }
        if let Some(inj) = self.guest.buddy_mut().fault_injector_mut() {
            inj.push_suppress();
        }
        let result = retry(&mut self.guest, pid, vpn);
        if let Some(inj) = self.guest.buddy_mut().fault_injector_mut() {
            inj.pop_suppress();
        }
        result
    }

    /// Performs a nested (2D) page walk for (`pid`, `vpn`) on `core`,
    /// charging every PT access to the cache hierarchy. Returns the host
    /// frame, the cycles spent, and any host faults taken for PT-node
    /// backing.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Unmapped`] if the guest translation does not
    /// exist (the caller must fault first).
    pub fn nested_walk(
        &mut self,
        core: usize,
        pid: Pid,
        vpn: GuestVirtPage,
    ) -> Result<(HostFrame, u64, u32)> {
        let asid = pid.0;
        let mut cycles = 0u64;
        let mut host_faults = 0u32;

        let (path, data_gfn) = {
            let pt = &self.guest.process(pid)?.page_table;
            let path = pt.walk_path(vpn);
            if !path.complete {
                return Err(MemError::Unmapped { vpn: vpn.raw() });
            }
            let gfn = pt.translate(vpn).expect("complete walk has a leaf");
            (path, gfn)
        };

        // The guest PWC may let us skip upper guest levels (and the host
        // walks needed to locate those nodes).
        let start_level = match self.pwcs[core].guest_lookup(asid, vpn) {
            Some((level, _gfn, _hfn)) => level + 1,
            None => 0,
        };

        // A huge guest mapping produces a 3-step path (the PS entry is the
        // translation), a 4 KB mapping a 4-step path; iterate whatever the
        // table gave us.
        let steps: Vec<_> = path.steps.iter().skip(start_level).copied().collect();
        let levels_walked = steps.len() as u32;
        for step in steps {
            // Locate this gPT node in host-physical memory (2nd dimension).
            let (node_hfn, hf) = self.host_frame_of(core, step.node, &mut cycles)?;
            host_faults += hf;
            // Touch the gPT entry itself.
            let entry_hpa =
                HostPhysAddr::new((node_hfn.raw() << PAGE_SHIFT) + step.index * PTE_SIZE);
            cycles += self
                .caches
                .access(core, entry_hpa, AccessKind::guest_pt(step.level))
                .cycles;
            // Cache the walk prefix completed at this node.
            if step.level > 0 {
                self.pwcs[core].guest_insert(asid, vpn, step.level - 1, step.node, node_hfn);
            }
        }

        // Final host walk: translate the data page itself.
        let (data_hfn, hf) = self.host_frame_of(core, data_gfn, &mut cycles)?;
        host_faults += hf;
        self.tlbs[core].insert(asid, vpn, data_hfn);
        self.walk_hist[core].record(cycles);
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(
                self.ops,
                vmsim_obs::EventKind::PtWalk {
                    levels: levels_walked,
                    cycles,
                    pwc_hits: start_level as u32,
                },
            );
        }
        Ok((data_hfn, cycles, host_faults))
    }

    /// Per-core nested-walk latency distribution (cycles per walk).
    pub fn walk_latency(&self, core: usize) -> &Histogram {
        &self.walk_hist[core]
    }

    /// Per-core fault-service latency distribution (cycles per guest fault
    /// or COW break, including host backing).
    pub fn fault_latency(&self, core: usize) -> &Histogram {
        &self.fault_hist[core]
    }

    /// Translates guest frame `gfn` to its backing host frame, walking the
    /// host page table (with cache charging) unless the nested TLB has it.
    /// Faults the backing in if the host has not yet populated it.
    fn host_frame_of(
        &mut self,
        core: usize,
        gfn: GuestFrame,
        cycles: &mut u64,
    ) -> Result<(HostFrame, u32)> {
        if let Some(hfn) = self.pwcs[core].nested_lookup(gfn) {
            return Ok((hfn, 0));
        }
        let hvpn = self.host.hvpn_of(gfn);
        let mut host_faults = 0u32;
        if self.host.translate(hvpn).is_none() {
            self.host.fault(hvpn)?;
            host_faults += 1;
            *cycles += self.cost.host_fault_cycles;
        }
        let path = self.host.walk_path(hvpn);
        debug_assert!(path.complete);
        let start_level = match self.pwcs[core].host_lookup(hvpn) {
            Some((level, _node)) => level + 1,
            None => 0,
        };
        for level in start_level..PT_LEVELS {
            let step = &path.steps[level];
            // Host PT nodes live in host-physical frames, so the entry
            // address is directly host-physical.
            let hpa = HostPhysAddr::new(step.entry_addr_raw());
            *cycles += self
                .caches
                .access(core, hpa, AccessKind::host_pt(level))
                .cycles;
            if level > 0 {
                self.pwcs[core].host_insert(hvpn, level - 1, step.node);
            }
        }
        let hfn = self.host.translate(hvpn).expect("faulted in above");
        self.pwcs[core].nested_insert(gfn, hfn);
        Ok((hfn, host_faults))
    }

    /// Unmaps a range, performing TLB shootdown on every core.
    ///
    /// # Errors
    ///
    /// Propagates [`GuestOs::munmap`] errors.
    pub fn munmap(&mut self, pid: Pid, start: GuestVirtPage, pages: u64) -> Result<()> {
        let unmapped = self.guest.munmap(pid, start, pages)?;
        for vpn in unmapped {
            for tlb in &mut self.tlbs {
                tlb.invalidate(pid.0, vpn);
            }
        }
        Ok(())
    }

    /// Terminates a process, flushing its translations everywhere.
    ///
    /// # Errors
    ///
    /// Propagates [`GuestOs::exit`] errors.
    pub fn exit(&mut self, pid: Pid) -> Result<()> {
        self.guest.exit(pid)?;
        for tlb in &mut self.tlbs {
            tlb.flush_asid(pid.0);
        }
        Ok(())
    }

    /// Computes the paper's host-PT fragmentation metric for `pid` (§3.2):
    /// the mean number of distinct cache lines holding the host PTEs that
    /// correspond to each fully/partially mapped aligned 8-page group.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn host_pt_fragmentation(&self, pid: Pid) -> Result<LineCensus> {
        let mut census = LineCensus::default();
        let proc = self.guest.process(pid)?;
        for vma in &proc.vmas {
            let first_group = vma.start.raw() / GROUP_PAGES;
            let last_group = (vma.end().raw() - 1) / GROUP_PAGES;
            for group in first_group..=last_group {
                let base = group * GROUP_PAGES;
                let addrs: Vec<u64> = (base..base + GROUP_PAGES)
                    .map(GuestVirtPage::new)
                    .filter(|p| vma.contains(*p))
                    .filter_map(|p| proc.page_table.translate(p))
                    .filter_map(|gfn| self.host.hpte_addr_raw(self.host.hvpn_of(gfn)))
                    .collect();
                census.record_group(addrs);
            }
        }
        Ok(census)
    }

    /// The guest-PT analogue of [`Machine::host_pt_fragmentation`]. By
    /// construction this is 1.0 whenever anything is mapped: gPTEs of a group
    /// always share a line (paper Figure 3).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NoSuchProcess`] for unknown pids.
    pub fn guest_pt_fragmentation(&self, pid: Pid) -> Result<LineCensus> {
        let mut census = LineCensus::default();
        let proc = self.guest.process(pid)?;
        for vma in &proc.vmas {
            let first_group = vma.start.raw() / GROUP_PAGES;
            let last_group = (vma.end().raw() - 1) / GROUP_PAGES;
            for group in first_group..=last_group {
                let base = group * GROUP_PAGES;
                let addrs: Vec<u64> = (base..base + GROUP_PAGES)
                    .map(GuestVirtPage::new)
                    .filter(|p| vma.contains(*p) && proc.page_table.lookup(*p).is_some())
                    .filter_map(|p| proc.page_table.pte_addr_raw(p))
                    .collect();
                census.record_group(addrs);
            }
        }
        Ok(census)
    }

    /// Releases up to `target_frames` of reserved-but-unused guest memory
    /// back to the buddy allocator (memory-pressure reclamation, §4.3),
    /// emitting a [`vmsim_obs::EventKind::ReservationReclaim`] event when a
    /// tracer is installed. Returns frames actually released.
    pub fn reclaim_reservations(&mut self, target_frames: u64) -> u64 {
        let freed = self.guest.reclaim_reservations(target_frames);
        if let Some(tracer) = self.tracer.as_mut() {
            tracer.emit(
                self.ops,
                vmsim_obs::EventKind::ReservationReclaim { frames: freed },
            );
        }
        freed
    }

    /// Nested-walk latency distribution merged across every core.
    pub fn merged_walk_latency(&self) -> Histogram {
        let mut merged = Histogram::new();
        for h in &self.walk_hist {
            merged.merge(h);
        }
        merged
    }

    /// Fault-service latency distribution merged across every core.
    pub fn merged_fault_latency(&self) -> Histogram {
        let mut merged = Histogram::new();
        for h in &self.fault_hist {
            merged.merge(h);
        }
        merged
    }

    /// Captures one observability snapshot covering every stats struct in
    /// the machine: cache counters, guest/host kernel counters, both buddy
    /// allocators, both page tables (guest PTs merged across processes),
    /// TLB totals, latency histograms, and whatever the pluggable frame
    /// allocator contributes (PTEMagnet adds reservation + PaRT counters).
    pub fn metrics_snapshot(&self) -> vmsim_obs::Snapshot {
        let mut reg = vmsim_obs::Registry::new();
        reg.record(&self.caches.counters());
        reg.record(&self.guest.stats());
        reg.record(&self.host.stats());
        reg.record_as("guest_buddy", self.guest.buddy().stats());
        reg.record_as("host_buddy", self.host.buddy().stats());
        reg.record_as("host_pt", &self.host.host_pt().stats());
        let mut guest_pt = vmsim_pt::PtStats::default();
        for proc in self.guest.processes() {
            guest_pt.merge(&proc.page_table.stats());
        }
        reg.record_as("guest_pt", &guest_pt);
        let (lookups, misses) = self
            .tlbs
            .iter()
            .fold((0, 0), |(l, m), t| (l + t.lookups(), m + t.misses()));
        reg.gauge_u64("tlb.lookups", lookups);
        reg.gauge_u64("tlb.misses", misses);
        reg.record_as("walk_latency", &self.merged_walk_latency());
        reg.record_as("fault_latency", &self.merged_fault_latency());
        reg.gauge_u64(
            "allocator.reserved_unused_frames",
            self.guest.allocator().reserved_unused_frames(),
        );
        // The faults.* gauges are always present (all zero without a plan),
        // so installing a fault plan never changes the snapshot's key set.
        let injected = self
            .guest
            .buddy()
            .fault_injector()
            .map(|i| i.stats())
            .unwrap_or_default();
        let driver = self
            .faults
            .unwrap_or_else(|| FaultDriver::new(FaultPlan::default()));
        reg.gauge_u64("faults.injected", injected.injected());
        reg.gauge_u64("faults.chunk_denials", injected.chunk_denials);
        reg.gauge_u64("faults.oom_denials", injected.oom_denials);
        reg.gauge_u64("faults.frag_shocks", driver.frag_shocks);
        reg.gauge_u64("faults.reclaim_storms", driver.reclaim_storms);
        reg.gauge_u64("faults.swap_outs", driver.swap_outs);
        reg.gauge_u64("faults.daemon_passes", driver.daemon_passes);
        reg.gauge_u64("faults.oom_retries", driver.oom_retries);
        reg.gauge_u64("faults.reclaimed_frames", driver.reclaimed_frames);
        self.guest.allocator().emit_metrics(&mut reg);
        reg.snapshot(self.ops)
    }

    /// Flushes all translation state (TLBs, page-walk caches, nested TLBs)
    /// on every core, forcing subsequent accesses to re-walk. Models a
    /// full TLB shootdown / context-switch storm; also useful to observe
    /// cold-walk behaviour of an existing layout.
    pub fn flush_translation_state(&mut self) {
        for tlb in &mut self.tlbs {
            tlb.flush_all();
        }
        for pwc in &mut self.pwcs {
            pwc.flush();
        }
    }

    /// Resets all hardware measurement counters (cache + TLB), preserving
    /// cache/TLB *contents*. Used to exclude a warm-up or allocation phase
    /// from measurement, like the paper's §3.3 methodology.
    pub fn reset_measurement(&mut self) {
        self.caches.reset_counters();
        for tlb in &mut self.tlbs {
            tlb.reset_counters();
        }
        for h in &mut self.walk_hist {
            *h = Histogram::new();
        }
        for h in &mut self.fault_hist {
            *h = Histogram::new();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small())
    }

    #[test]
    fn first_touch_faults_then_hits_tlb() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        let first = m.touch(0, pid, va, false).unwrap();
        assert!(first.faulted);
        assert!(!first.tlb_hit);
        assert!(first.host_faults >= 1);
        let second = m.touch(0, pid, va, false).unwrap();
        assert!(second.tlb_hit);
        assert!(!second.faulted);
        assert!(second.cycles < first.cycles);
    }

    #[test]
    fn touch_outside_vma_fails() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        assert!(matches!(
            m.touch(0, pid, GuestVirtAddr::new(0x1000), false),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn nested_walk_charges_guest_and_host_pt_accesses() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        m.touch(0, pid, va, false).unwrap();
        let c = m.caches().counters();
        assert!(c.guest_pt.accesses >= 4, "full guest walk on cold caches");
        assert!(c.host_pt.accesses >= 4, "host walks for nodes + data");
        assert!(c.data.accesses == 1);
    }

    #[test]
    fn walk_of_unmapped_page_errors() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        m.guest_mut().mmap(pid, 4).unwrap();
        assert!(matches!(
            m.nested_walk(0, pid, GuestVirtPage::new(0)),
            Err(MemError::Unmapped { .. })
        ));
    }

    #[test]
    fn isolated_process_has_low_host_pt_fragmentation() {
        // One process alone: the default allocator hands out mostly
        // contiguous frames, but page-table node allocations interleave with
        // data frames, so the metric sits a little above 1 — the paper
        // measures 2.8 in isolation (§3.3), not 1.0.
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 16).unwrap();
        for i in 0..16 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), false)
                .unwrap();
        }
        let frag = m.host_pt_fragmentation(pid).unwrap();
        assert_eq!(frag.groups, 2);
        assert!(frag.mean() >= 1.0);
        assert!(
            frag.mean() <= 3.0,
            "isolation stays low, got {}",
            frag.mean()
        );
        // Guest PTEs, indexed by virtual address, are always packed.
        let gfrag = m.guest_pt_fragmentation(pid).unwrap();
        assert!((gfrag.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn interleaved_processes_fragment_host_pt() {
        // Two colocated processes faulting alternately: each one's host PTEs
        // scatter across lines while guest PTEs stay packed — the paper's
        // core observation.
        let mut m = machine();
        let a = m.guest_mut().spawn();
        let b = m.guest_mut().spawn();
        let va_a = m.guest_mut().mmap(a, 32).unwrap();
        let va_b = m.guest_mut().mmap(b, 32).unwrap();
        for i in 0..32 {
            m.touch(0, a, GuestVirtAddr::new(va_a.raw() + i * 4096), false)
                .unwrap();
            m.touch(1, b, GuestVirtAddr::new(va_b.raw() + i * 4096), false)
                .unwrap();
        }
        let frag_a = m.host_pt_fragmentation(a).unwrap();
        assert!(
            frag_a.mean() > 1.5,
            "interleaving must scatter hPTEs, got {}",
            frag_a.mean()
        );
        let guest_frag = m.guest_pt_fragmentation(a).unwrap();
        assert!((guest_frag.mean() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn huge_mappings_walk_one_level_shorter() {
        use crate::guest::{AllocCost, AllocGrant, GuestBuddy, GuestFrameAllocator};

        #[derive(Debug)]
        struct AlwaysHuge;
        impl GuestFrameAllocator for AlwaysHuge {
            fn name(&self) -> &'static str {
                "always-huge"
            }
            fn allocate(
                &mut self,
                _pid: Pid,
                _vpn: GuestVirtPage,
                buddy: &mut GuestBuddy,
            ) -> Result<(vmsim_types::GuestFrame, AllocCost)> {
                Ok((buddy.alloc(0)?, AllocCost::default()))
            }
            fn allocate_grant(
                &mut self,
                pid: Pid,
                vpn: GuestVirtPage,
                huge_candidate: bool,
                buddy: &mut GuestBuddy,
            ) -> Result<(AllocGrant, AllocCost)> {
                if huge_candidate {
                    let chunk = buddy.alloc(9)?;
                    buddy.fragment_allocation(chunk, 9).unwrap();
                    return Ok((AllocGrant::Huge(chunk), AllocCost::default()));
                }
                let (g, c) = self.allocate(pid, vpn, buddy)?;
                Ok((AllocGrant::Small(g), c))
            }
            fn free(
                &mut self,
                _pid: Pid,
                _vpn: GuestVirtPage,
                gfn: vmsim_types::GuestFrame,
                buddy: &mut GuestBuddy,
            ) -> Result<()> {
                buddy.free(gfn, 0)
            }
        }

        let mut m = Machine::with_allocator(MachineConfig::small(), Box::new(AlwaysHuge));
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1024).unwrap();
        let out = m.touch(0, pid, va, true).unwrap();
        assert!(out.faulted);
        assert!(out.cycles >= m.config().cost.huge_fault_extra_cycles);
        // Cold walk of a huge mapping: exactly 3 guest-PT accesses.
        m.reset_measurement();
        m.flush_translation_state();
        let far = GuestVirtAddr::new(va.raw() + 100 * 4096);
        m.touch(0, pid, far, false).unwrap();
        let c = m.caches().counters();
        assert_eq!(c.guest_pt.accesses, 3, "huge walks stop at the PS entry");
        // And the data page translates to chunk base + offset.
        let again = m.touch(0, pid, far, false).unwrap();
        assert!(again.tlb_hit);
    }

    #[test]
    fn munmap_sheds_tlb_entries() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1).unwrap();
        m.touch(0, pid, va, false).unwrap();
        m.touch(0, pid, va, false).unwrap(); // in TLB now
        m.munmap(pid, va.page(), 1).unwrap();
        // Page gone: touching again is a segfault, not a stale TLB hit.
        assert!(m.touch(0, pid, va, false).is_err());
    }

    #[test]
    fn cow_write_via_touch() {
        let mut m = machine();
        let parent = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(parent, 1).unwrap();
        m.touch(0, parent, va, true).unwrap();
        let child = m.guest_mut().fork(parent).unwrap();
        let w = m.touch(0, child, va, true).unwrap();
        assert!(w.cow_break);
        // Parent's subsequent write breaks nothing (sole owner path).
        let w2 = m.touch(0, parent, va, true).unwrap();
        assert!(!w2.cow_break);
        let p_pte = m
            .guest()
            .process(parent)
            .unwrap()
            .page_table
            .lookup(va.page())
            .unwrap();
        assert!(p_pte.is_writable());
    }

    #[test]
    fn exit_flushes_process_state() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 2).unwrap();
        m.touch(0, pid, va, false).unwrap();
        m.exit(pid).unwrap();
        assert!(m.guest().process(pid).is_err());
        assert_eq!(
            m.guest().buddy().free_frames(),
            m.guest().buddy().total_frames()
        );
    }

    #[test]
    fn latency_histograms_record_walks_and_faults() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 8).unwrap();
        for i in 0..8 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                .unwrap();
        }
        assert_eq!(m.fault_latency(0).count(), 8);
        assert!(m.walk_latency(0).count() >= 1);
        assert!(m.fault_latency(0).mean() >= m.config().cost.guest_fault_cycles as f64);
        // Walk tail is bounded by a full cold 2D walk at DRAM latency plus
        // a handful of host faults backing fresh PT-node frames.
        assert!(m.walk_latency(0).max() < 24 * 250 + 5 * 6000);
        m.reset_measurement();
        assert_eq!(m.fault_latency(0).count(), 0);
        assert_eq!(m.walk_latency(0).count(), 0);
    }

    #[test]
    fn metrics_snapshot_covers_every_subsystem() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 8).unwrap();
        for i in 0..8 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                .unwrap();
        }
        let snap = m.metrics_snapshot();
        assert_eq!(snap.op, 8);
        for name in [
            "mem.data.accesses",
            "guest.faults",
            "host.faults",
            "guest_buddy.allocs",
            "host_buddy.allocs",
            "guest_pt.total_nodes",
            "host_pt.total_nodes",
            "tlb.lookups",
            "walk_latency.count",
            "fault_latency.count",
            "faults.injected",
            "faults.chunk_denials",
            "faults.oom_denials",
            "faults.frag_shocks",
            "faults.reclaim_storms",
            "faults.swap_outs",
            "faults.daemon_passes",
            "faults.oom_retries",
            "faults.reclaimed_frames",
        ] {
            assert!(snap.get(name).is_some(), "snapshot missing {name}");
        }
        assert_eq!(snap.get("guest.faults").unwrap().as_u64(), Some(8));
    }

    #[test]
    fn tracer_records_fault_and_walk_events_without_changing_outcomes() {
        let run = |traced: bool| {
            let mut m = machine();
            if traced {
                m.install_tracer(vmsim_obs::Tracer::new());
            }
            let pid = m.guest_mut().spawn();
            let va = m.guest_mut().mmap(pid, 8).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..8 {
                outcomes.push(
                    m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                        .unwrap(),
                );
            }
            (outcomes, m.metrics_snapshot(), m.take_tracer())
        };
        let (plain_out, plain_snap, plain_tracer) = run(false);
        let (traced_out, traced_snap, traced_tracer) = run(true);
        // Tracing must not perturb the simulation.
        assert_eq!(plain_out, traced_out);
        assert_eq!(plain_snap, traced_snap);
        assert!(plain_tracer.is_none());
        let tracer = traced_tracer.expect("tracer was installed");
        assert_eq!(tracer.count_kind("page_fault"), 8);
        assert!(tracer.count_kind("pt_walk") >= 1);
        assert!(
            tracer.count_kind("buddy_split") >= 1,
            "cold pool must split"
        );
        assert!(tracer.events().all(|e| e.op >= 1 && e.op <= 8));
    }

    #[test]
    fn reclaim_wrapper_emits_reclaim_event() {
        let mut m = machine();
        m.install_tracer(vmsim_obs::Tracer::new());
        m.reclaim_reservations(64);
        let tracer = m.take_tracer().unwrap();
        assert_eq!(tracer.count_kind("reservation_reclaim"), 1);
    }

    #[test]
    fn zero_fault_plan_changes_nothing() {
        let run = |faulted: bool| {
            let mut m = machine();
            if faulted {
                m.install_faults(FaultPlan::default(), 42);
            }
            let pid = m.guest_mut().spawn();
            let va = m.guest_mut().mmap(pid, 8).unwrap();
            let mut outcomes = Vec::new();
            for i in 0..8 {
                outcomes.push(
                    m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), true)
                        .unwrap(),
                );
            }
            (outcomes, m.metrics_snapshot())
        };
        let (plain_out, plain_snap) = run(false);
        let (faulted_out, faulted_snap) = run(true);
        assert_eq!(plain_out, faulted_out, "zero plan must be invisible");
        assert_eq!(plain_snap, faulted_snap, "same snapshot incl. key set");
    }

    #[test]
    fn injected_oom_is_absorbed_by_reclaim_and_retry() {
        let mut m = machine();
        m.install_tracer(vmsim_obs::Tracer::new());
        m.install_faults(
            FaultPlan {
                oom_rate: 1.0,
                ..FaultPlan::default()
            },
            0,
        );
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 4).unwrap();
        for i in 0..4 {
            // Every data-frame allocation is denied once, absorbed, and
            // retried with injection suppressed — the touch still succeeds.
            let out = m
                .touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), false)
                .unwrap();
            assert!(out.faulted);
        }
        let snap = m.metrics_snapshot();
        assert!(snap.get("faults.oom_denials").unwrap().as_u64().unwrap() >= 4);
        assert!(snap.get("faults.oom_retries").unwrap().as_u64().unwrap() >= 4);
        let tracer = m.take_tracer().unwrap();
        assert!(tracer.count_kind("oom_retry") >= 4);
        assert!(tracer.count_kind("fault_injected") >= 4);
        assert_eq!(tracer.count_kind("page_fault"), 4);
    }

    #[test]
    fn frag_shock_fires_on_schedule_and_is_survivable() {
        let mut m = machine();
        m.install_tracer(vmsim_obs::Tracer::new());
        m.install_faults(
            FaultPlan {
                frag_shock_every: Some(2),
                frag_shock_order: 0,
                ..FaultPlan::default()
            },
            0,
        );
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 8).unwrap();
        for i in 0..8 {
            m.touch(0, pid, GuestVirtAddr::new(va.raw() + i * 4096), false)
                .unwrap();
        }
        let snap = m.metrics_snapshot();
        assert_eq!(snap.get("faults.frag_shocks").unwrap().as_u64(), Some(4));
        let tracer = m.take_tracer().unwrap();
        assert_eq!(tracer.count_kind("frag_shock"), 4);
    }

    #[test]
    fn reset_measurement_clears_counters_not_contents() {
        let mut m = machine();
        let pid = m.guest_mut().spawn();
        let va = m.guest_mut().mmap(pid, 1).unwrap();
        m.touch(0, pid, va, false).unwrap();
        m.reset_measurement();
        assert_eq!(m.caches().counters().data.accesses, 0);
        assert_eq!(m.tlb(0).lookups(), 0);
        // TLB contents survived.
        let again = m.touch(0, pid, va, false).unwrap();
        assert!(again.tlb_hit);
    }
}
