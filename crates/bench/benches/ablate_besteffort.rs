//! Ablation: **eager reservation vs best-effort contiguity** (the paper's
//! §7 argument against CA-paging-style approaches). Sweeps co-runner churn
//! pressure and prints host-PT fragmentation for the default allocator, the
//! CA-paging-like best-effort allocator, and PTEMagnet. Expected shape:
//! best-effort degrades as churn rises; PTEMagnet stays at 1.0.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{AllocatorKind, Scenario};
use vmsim_workloads::{BenchId, CoId};

fn bench_besteffort(c: &mut Criterion) {
    let ops = measure_ops_from_env(15_000);
    println!("Ablation: best-effort contiguity vs eager reservation (pagerank + objdet)");
    println!(
        "{:<14} {:>9} {:>12} {:>10}",
        "churn-weight", "default", "ca-paging", "ptemagnet"
    );
    for weight in [1u32, 2, 4, 8] {
        let frag = |kind: AllocatorKind| {
            Scenario::new(BenchId::Pagerank)
                .corunners(&[CoId::Objdet])
                .corunner_weight(weight)
                .allocator(kind)
                .measure_ops(ops)
                .run()
                .host_frag
        };
        println!(
            "{:<14} {:>9.2} {:>12.2} {:>10.2}",
            weight,
            frag(AllocatorKind::Default),
            frag(AllocatorKind::CaPagingLike),
            frag(AllocatorKind::PteMagnet),
        );
    }

    // Criterion part: allocation cost of the three policies under churn.
    let mut group = c.benchmark_group("besteffort_alloc_path");
    for kind in [
        AllocatorKind::Default,
        AllocatorKind::CaPagingLike,
        AllocatorKind::PteMagnet,
    ] {
        group.bench_function(kind.name(), |b| {
            use vmsim_os::{GuestBuddy, Pid};
            use vmsim_types::GuestVirtPage;
            b.iter_batched(
                || (kind.build(), GuestBuddy::new(1 << 14)),
                |(mut a, mut buddy)| {
                    for vpn in 0..1024u64 {
                        black_box(
                            a.allocate(Pid(1), GuestVirtPage::new(vpn), &mut buddy)
                                .expect("alloc"),
                        );
                        // Interleave a churner to contest neighbour frames.
                        black_box(
                            a.allocate(Pid(2), GuestVirtPage::new(1 << 20 | vpn), &mut buddy)
                                .expect("alloc"),
                        );
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_besteffort
}
criterion_main!(benches);
