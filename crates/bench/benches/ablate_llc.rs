//! Ablation: **LLC capacity** (artifact appendix A.3.2). Prints the
//! improvement-vs-LLC-size sweep, then criterion-benches the hierarchy's
//! access path at two capacities.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_bench::measure_ops_from_env;
use vmsim_cache::{AccessKind, CacheConfig, CacheHierarchy, HierarchyConfig};
use vmsim_sim::llc_sensitivity;
use vmsim_types::HostPhysAddr;

fn bench_llc(c: &mut Criterion) {
    let ops = measure_ops_from_env(20_000);
    println!("LLC sensitivity (reduced scale):");
    for (mb, imp) in llc_sensitivity(0, ops, &[4, 16]) {
        println!("  {mb:>2} MB: {:+.1}%", imp * 100.0);
    }

    let mut group = c.benchmark_group("llc_access_path");
    for mb in [4u64, 32] {
        let mut config = HierarchyConfig::broadwell(1);
        config.llc = CacheConfig::from_capacity(mb * 1024 * 1024, 16);
        let mut h = CacheHierarchy::new(config);
        let mut i = 0u64;
        group.bench_function(format!("llc_{mb}mb"), |b| {
            b.iter(|| {
                i = i.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let line = i % (1 << 18);
                black_box(h.access(0, HostPhysAddr::new(line * 64), AccessKind::Data))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_llc
}
criterion_main!(benches);
