//! Micro-benchmarks of the substrate data structures: buddy allocator,
//! page table, TLB, and cache hierarchy. These establish the simulator's
//! own performance envelope (simulated accesses per second).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_buddy::BuddyAllocator;
use vmsim_cache::{AccessKind, CacheHierarchy, HierarchyConfig, Tlb, TlbConfig};
use vmsim_pt::PageTable;
use vmsim_types::{GuestFrame, GuestVirtPage, HostFrame, HostPhysAddr};

fn bench_buddy(c: &mut Criterion) {
    let mut group = c.benchmark_group("buddy");
    group.bench_function("alloc_free_order0", |b| {
        let mut buddy = BuddyAllocator::<GuestFrame>::new(1 << 16);
        b.iter(|| {
            let f = buddy.alloc(0).expect("space");
            black_box(f);
            buddy.free(f, 0).expect("valid");
        })
    });
    group.bench_function("alloc_free_order3", |b| {
        let mut buddy = BuddyAllocator::<GuestFrame>::new(1 << 16);
        b.iter(|| {
            let f = buddy.alloc(3).expect("space");
            black_box(f);
            buddy.free(f, 3).expect("valid");
        })
    });
    group.finish();
}

fn bench_pt(c: &mut Criterion) {
    let mut group = c.benchmark_group("page_table");
    let mut next = 1_000_000u64;
    let mut alloc = move || {
        next += 1;
        Ok(GuestFrame::new(next - 1))
    };
    let mut pt: PageTable<GuestVirtPage, GuestFrame> = PageTable::new(&mut alloc).unwrap();
    for vpn in 0..4096u64 {
        pt.map(GuestVirtPage::new(vpn), GuestFrame::new(vpn), &mut alloc)
            .unwrap();
    }
    let mut i = 0u64;
    group.bench_function("translate", |b| {
        b.iter(|| {
            i = (i + 1237) % 4096;
            black_box(pt.translate(GuestVirtPage::new(i)))
        })
    });
    group.bench_function("walk_path", |b| {
        b.iter(|| {
            i = (i + 1237) % 4096;
            black_box(pt.walk_path(GuestVirtPage::new(i)))
        })
    });
    group.finish();
}

fn bench_tlb_and_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("hardware_models");
    let mut tlb = Tlb::new(TlbConfig::default());
    for vpn in 0..1024u64 {
        tlb.insert(1, GuestVirtPage::new(vpn), HostFrame::new(vpn));
    }
    let mut i = 0u64;
    group.bench_function("tlb_lookup", |b| {
        b.iter(|| {
            i = (i + 619) % 1024;
            black_box(tlb.lookup(1, GuestVirtPage::new(i)))
        })
    });
    let mut h = CacheHierarchy::new(HierarchyConfig::broadwell(1));
    group.bench_function("cache_access", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e37_79b9);
            black_box(h.access(0, HostPhysAddr::new((i % (1 << 20)) * 64), AccessKind::Data))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_buddy, bench_pt, bench_tlb_and_cache
}
criterion_main!(benches);
