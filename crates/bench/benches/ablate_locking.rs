//! Ablation: **PaRT locking granularity** (§4.2 requires fine-grained
//! per-node locks for concurrently faulting threads). Prints multithreaded
//! fault throughput of the per-node-locked PaRT vs a globally locked
//! variant, then criterion-benches the single-threaded hot path of both.

use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::{GlobalLockPart, PaRt};
use vmsim_types::GuestFrame;

/// Runs `threads` workers doing `per_thread` take/release pairs against the
/// given closures; returns operations per second.
fn throughput(threads: u64, per_thread: u64, take: impl Fn(u64, u64) + Sync) -> f64 {
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let take = &take;
            s.spawn(move || {
                for i in 0..per_thread {
                    // Each thread works its own group space: contention is
                    // on the tree structure, not on individual groups.
                    take(t * per_thread + i, t % 8);
                }
            });
        }
    });
    (threads * per_thread) as f64 / start.elapsed().as_secs_f64()
}

fn bench_locking(c: &mut Criterion) {
    let chunk = Arc::new(AtomicU64::new(0));
    println!("Ablation: PaRT locking (ops/s, take_or_install across threads)");
    println!("{:<9} {:>14} {:>14}", "threads", "per-node", "global-lock");
    for threads in [1u64, 2, 4, 8] {
        let per_thread = 40_000u64;
        let part = PaRt::new();
        let chunk_a = Arc::clone(&chunk);
        let fine = throughput(threads, per_thread, |g, off| {
            part.take_or_install(g, off, || {
                Some(GuestFrame::new(chunk_a.fetch_add(8, Ordering::Relaxed)))
            });
        });
        let global = GlobalLockPart::new();
        let chunk_b = Arc::clone(&chunk);
        let coarse = throughput(threads, per_thread, |g, off| {
            global.take_or_install(g, off, || {
                Some(GuestFrame::new(chunk_b.fetch_add(8, Ordering::Relaxed)))
            });
        });
        println!("{threads:<9} {fine:>14.0} {coarse:>14.0}");
    }

    let mut group = c.benchmark_group("part_single_thread");
    group.bench_function("per_node_locks", |b| {
        let part = PaRt::new();
        let mut g = 0u64;
        b.iter(|| {
            g += 1;
            black_box(part.take_or_install(g, 0, || Some(GuestFrame::new(g * 8))))
        })
    });
    group.bench_function("global_lock", |b| {
        let part = GlobalLockPart::new();
        let mut g = 0u64;
        b.iter(|| {
            g += 1;
            black_box(part.take_or_install(g, 0, || Some(GuestFrame::new(g * 8))))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_locking
}
criterion_main!(benches);
