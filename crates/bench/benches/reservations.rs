//! Bench for the **§6.2** study: prints the reserved-unused incidence rows
//! at reduced scale, then measures the PaRT hot paths (install, hit,
//! release) that the incidence depends on.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::PaRt;
use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{report, sec62};
use vmsim_types::GuestFrame;

fn bench_reservations(c: &mut Criterion) {
    let ops = measure_ops_from_env(25_000);
    let rows = sec62(0, ops);
    println!("{}", report::format_sec62(&rows));

    let mut group = c.benchmark_group("part_hot_paths");
    group.bench_function("install_then_retire_group", |b| {
        let part = PaRt::new();
        let mut group_id = 0u64;
        b.iter(|| {
            group_id += 1;
            let base = GuestFrame::new((group_id % 1_000_000) * 8);
            for off in 0..8 {
                black_box(part.take_or_install(group_id, off, || Some(base)));
            }
        })
    });
    group.bench_function("reservation_hit", |b| {
        let part = PaRt::new();
        // One live entry with page 0 granted; hit page 1 then release it,
        // keeping the entry alive forever.
        part.take_or_install(42, 0, || Some(GuestFrame::new(0)));
        b.iter(|| {
            black_box(part.take_or_install(42, 1, || unreachable!("entry exists")));
            black_box(part.release(42, 1));
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_reservations
}
criterion_main!(benches);
