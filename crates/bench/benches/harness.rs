//! Bench for the **experiment harness**: scenario-level parallel speedup
//! (serial vs worker pool over an 8-seed replication) and the simulator's
//! inner-loop hot paths (TLB lookup with the L0 fast path, flat `SetAssoc`
//! churn, and whole engine rounds).
//!
//! The replication comparison is only meaningful on a multi-core host; on a
//! single core the pooled variant should roughly match serial (the pool adds
//! no per-job overhead beyond thread startup).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_bench::measure_ops_from_env;
use vmsim_cache::{SetAssoc, Tlb, TlbConfig};
use vmsim_os::{Machine, MachineConfig};
use vmsim_sim::{Colocation, Parallelism, Replication, Scenario};
use vmsim_types::{GuestVirtPage, HostFrame};
use vmsim_workloads::BenchId;

fn replicate(parallelism: Parallelism, ops: u64) -> Replication {
    Replication::across_with(parallelism, 0..8, |seed| {
        Scenario::new(BenchId::Gcc)
            .machine(MachineConfig::paper(1, 128))
            .measure_ops(ops)
            .seed(seed)
            .run()
    })
}

fn bench_replication(c: &mut Criterion) {
    let ops = measure_ops_from_env(5_000);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut group = c.benchmark_group("replication_8seed");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(replicate(Parallelism::Serial, ops)))
    });
    group.bench_function(format!("threads_{cores}"), |b| {
        b.iter(|| black_box(replicate(Parallelism::Auto, ops)))
    });
    group.finish();
}

fn bench_inner_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");

    // Repeated same-page hits: the L0 "last translation" fast path.
    let mut tlb = Tlb::new(TlbConfig::default());
    let vpn = GuestVirtPage::new(0x1234);
    tlb.insert(1, vpn, HostFrame::new(7));
    group.bench_function("tlb_lookup_hot", |b| {
        b.iter(|| black_box(tlb.lookup(1, vpn)))
    });

    // Striding over a resident working set: the flat set scan.
    let mut tlb = Tlb::new(TlbConfig::default());
    for p in 0..64u64 {
        tlb.insert(1, GuestVirtPage::new(p), HostFrame::new(p));
    }
    let mut p = 0u64;
    group.bench_function("tlb_lookup_stride", |b| {
        b.iter(|| {
            p = (p + 7) % 64;
            black_box(tlb.lookup(1, GuestVirtPage::new(p)))
        })
    });

    // Mixed get/insert churn on the storage engine itself.
    let mut sa: SetAssoc<u64> = SetAssoc::new(64, 4);
    let mut k = 0u64;
    group.bench_function("set_assoc_churn", |b| {
        b.iter(|| {
            k = k.wrapping_add(17);
            let key = k % 512;
            if key.is_multiple_of(3) {
                black_box(sa.insert(key, key).is_some())
            } else {
                black_box(sa.get(key).is_some())
            }
        })
    });

    // Whole engine rounds: region table + TLB + caches + walks together.
    let mut colo = Colocation::new(Machine::new(MachineConfig::small()));
    let app = colo.add_app(Box::new(vmsim_workloads::benchmark(BenchId::Gcc, 0)), 1);
    colo.run_until_steady(app).expect("init");
    group.bench_function("colocation_round", |b| {
        b.iter(|| colo.round().expect("round"))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_replication, bench_inner_loop
}
criterion_main!(benches);
