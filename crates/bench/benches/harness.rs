//! Bench for the **experiment harness**: scenario-level parallel speedup
//! (serial vs worker pool over an 8-seed replication) and the simulator's
//! inner-loop hot paths (TLB lookup with the L0 fast path, flat `SetAssoc`
//! churn, and whole engine rounds).
//!
//! The replication comparison is only meaningful on a multi-core host; on a
//! single core the pooled variant should roughly match serial (the pool adds
//! no per-job overhead beyond thread startup).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_bench::measure_ops_from_env;
use vmsim_cache::{SetAssoc, Tlb, TlbConfig};
use vmsim_os::{Machine, MachineConfig};
use vmsim_sim::{Colocation, Parallelism, Replication, Scenario};
use vmsim_types::{GuestVirtAddr, GuestVirtPage, HostFrame};
use vmsim_workloads::BenchId;

fn replicate(parallelism: Parallelism, ops: u64) -> Replication {
    Replication::across_with(parallelism, 0..8, |seed| {
        Scenario::new(BenchId::Gcc)
            .machine(MachineConfig::paper(1, 128))
            .measure_ops(ops)
            .seed(seed)
            .run()
    })
}

fn bench_replication(c: &mut Criterion) {
    let ops = measure_ops_from_env(5_000);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let mut group = c.benchmark_group("replication_8seed");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| black_box(replicate(Parallelism::Serial, ops)))
    });
    group.bench_function(format!("threads_{cores}"), |b| {
        b.iter(|| black_box(replicate(Parallelism::Auto, ops)))
    });
    group.finish();
}

fn bench_inner_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("hot_path");

    // Repeated same-page hits: the L0 "last translation" fast path.
    let mut tlb = Tlb::new(TlbConfig::default());
    let vpn = GuestVirtPage::new(0x1234);
    tlb.insert(1, vpn, HostFrame::new(7));
    group.bench_function("tlb_lookup_hot", |b| {
        b.iter(|| black_box(tlb.lookup(1, vpn)))
    });

    // Striding over a resident working set: the flat set scan.
    let mut tlb = Tlb::new(TlbConfig::default());
    for p in 0..64u64 {
        tlb.insert(1, GuestVirtPage::new(p), HostFrame::new(p));
    }
    let mut p = 0u64;
    group.bench_function("tlb_lookup_stride", |b| {
        b.iter(|| {
            p = (p + 7) % 64;
            black_box(tlb.lookup(1, GuestVirtPage::new(p)))
        })
    });

    // Mixed get/insert churn on the storage engine itself.
    let mut sa: SetAssoc<u64> = SetAssoc::new(64, 4);
    let mut k = 0u64;
    group.bench_function("set_assoc_churn", |b| {
        b.iter(|| {
            k = k.wrapping_add(17);
            let key = k % 512;
            if key.is_multiple_of(3) {
                black_box(sa.insert(key, key).is_some())
            } else {
                black_box(sa.get(key).is_some())
            }
        })
    });

    // Whole engine rounds: region table + TLB + caches + walks together.
    let mut colo = Colocation::new(Machine::new(MachineConfig::small()));
    let app = colo.add_app(Box::new(vmsim_workloads::benchmark(BenchId::Gcc, 0)), 1);
    colo.run_until_steady(app).expect("init");
    group.bench_function("colocation_round", |b| {
        b.iter(|| colo.round().expect("round"))
    });

    group.finish();
}

/// The memoizing, batching translation core: a cold TLB-missing walk every
/// iteration, a memo-table replay of a warm walk, and a batched VMA run
/// through `touch_run`. Mirrors the kernels `bench-core` snapshots into
/// `BENCH_core.json`.
fn bench_translation_core(c: &mut Criterion) {
    let mut group = c.benchmark_group("translation_core");

    // Cold full walks: stride co-prime with the page count defeats the TLB
    // and the memo table, so every touch pays the naive nested walk.
    let mut m = Machine::new(MachineConfig::paper(1, 256));
    m.set_memo_enabled(false);
    let pid = m.guest_mut().spawn();
    let pages = 4096u64;
    let base = m.guest_mut().mmap(pid, pages).expect("mmap");
    for p in 0..pages {
        m.touch(0, pid, GuestVirtAddr::new(base.raw() + p * 4096), false)
            .expect("prefault");
    }
    let mut p = 0u64;
    group.bench_function("full_walk_cold", |b| {
        b.iter(|| {
            p = (p + 257) % pages;
            black_box(
                m.touch(0, pid, GuestVirtAddr::new(base.raw() + p * 4096), false)
                    .expect("touch"),
            )
        })
    });

    // Memo replay: the same warm page over and over — after the first
    // touch every iteration is a signature hit.
    let mut m = Machine::new(MachineConfig::paper(1, 256));
    m.set_memo_enabled(true);
    let pid = m.guest_mut().spawn();
    let va = m.guest_mut().mmap(pid, 1).expect("mmap");
    m.touch(0, pid, va, false).expect("warm");
    group.bench_function("full_walk_memo_hit", |b| {
        b.iter(|| black_box(m.touch(0, pid, va, false).expect("touch")))
    });

    // Batched VMA run: one write + three reads per page over a 128-page
    // region, submitted as a single `touch_run` like the engine's batcher.
    let mut m = Machine::new(MachineConfig::paper(1, 256));
    m.set_memo_enabled(true);
    let pid = m.guest_mut().spawn();
    let run_pages = 128u64;
    let base = m.guest_mut().mmap(pid, run_pages).expect("mmap");
    let run: Vec<(GuestVirtAddr, bool)> = (0..run_pages)
        .flat_map(|pg| {
            let va = GuestVirtAddr::new(base.raw() + pg * 4096);
            [(va, true), (va, false), (va, false), (va, false)]
        })
        .collect();
    m.touch_run(0, pid, &run).expect("warm");
    group.bench_function("batched_vma_run", |b| {
        b.iter(|| black_box(m.touch_run(0, pid, &run).expect("run")))
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_replication, bench_inner_loop, bench_translation_core
}
criterion_main!(benches);
