//! Bench for **Figure 7**: prints the combination-colocation improvement
//! series at reduced scale, then measures scheduler rounds with the full
//! co-runner combination live.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_bench::measure_ops_from_env;
use vmsim_os::{Machine, MachineConfig};
use vmsim_sim::{fig7, report, AllocatorKind, Colocation};
use vmsim_workloads::{benchmark, corunner, BenchId, CoId};

fn bench_fig7(c: &mut Criterion) {
    let ops = measure_ops_from_env(25_000);
    let s = fig7(0, ops);
    println!("{}", report::format_improvement_figure(&s, "Figure 7"));

    let mut group = c.benchmark_group("fig7_combination_round");
    group.sample_size(10);
    for kind in [AllocatorKind::Default, AllocatorKind::PteMagnet] {
        let machine = Machine::with_allocator(MachineConfig::paper(8, 512), kind.build());
        let mut colo = Colocation::new(machine);
        let primary = colo.add_app(Box::new(benchmark(BenchId::Mcf, 0)), 1);
        for (i, co) in CoId::COMBINATION.iter().enumerate() {
            colo.add_app(corunner(*co, i as u64 + 1), 1);
        }
        colo.run_until_steady(primary).expect("init");
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                colo.round().expect("round");
                black_box(())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
}
criterion_main!(benches);
