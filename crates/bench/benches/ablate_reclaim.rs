//! Ablation: **reclamation threshold** (§4.3). Sweeps the daemon's
//! free-memory threshold under an adversarial sparse-touch workload and
//! prints frames reclaimed plus the post-reclaim external fragmentation of
//! the freed memory (the §4.4 "fragmentation by reclamation" discussion).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::{ReclaimDaemon, ReservationAllocator};
use vmsim_buddy::FragmentationIndex;
use vmsim_os::GuestOs;
use vmsim_types::GuestVirtPage;

/// Builds a guest under heavy reservation pressure: an app touching every
/// eighth page, so most reserved frames are unused.
fn pressured_guest() -> GuestOs {
    let mut guest = GuestOs::new(4096, Box::new(ReservationAllocator::new()));
    let pid = guest.spawn();
    let va = guest.mmap(pid, 3840).expect("mmap");
    for g in 0..480u64 {
        guest
            .page_fault(pid, GuestVirtPage::new(va.page().raw() + g * 8))
            .expect("fault");
    }
    guest
}

fn bench_reclaim(c: &mut Criterion) {
    println!("Ablation: reclamation threshold (every-8th-page adversary, 4096-frame VM)");
    println!(
        "{:<10} {:>10} {:>11} {:>22}",
        "threshold", "reclaimed", "free-after", "reclaimed-mem-frag"
    );
    for threshold in [0.05f64, 0.10, 0.25, 0.50, 0.90] {
        let mut guest = pressured_guest();
        let daemon = ReclaimDaemon::new(threshold);
        let reclaimed = daemon.run(&mut guest);
        let frag = FragmentationIndex::measure(guest.buddy(), 3);
        println!(
            "{:<10.2} {:>10} {:>11.3} {:>21.1}%",
            threshold,
            reclaimed,
            guest.buddy().free_fraction(),
            frag.unusable_fraction() * 100.0
        );
    }

    let mut group = c.benchmark_group("reclaim_pass");
    group.bench_function("daemon_run", |b| {
        b.iter_batched(
            pressured_guest,
            |mut guest| black_box(ReclaimDaemon::new(0.5).run(&mut guest)),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reclaim
}
criterion_main!(benches);
