//! Bench for the **THP study** (§2.3): prints the study at reduced scale,
//! then measures huge vs small fault costs and walk latency over huge vs
//! 4 KB mappings.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::ThpAllocator;
use vmsim_bench::measure_ops_from_env;
use vmsim_os::{Machine, MachineConfig};
use vmsim_sim::{report, thp_study};
use vmsim_types::{GuestVirtAddr, GuestVirtPage, PAGE_SIZE};

fn bench_thp(c: &mut Criterion) {
    let ops = measure_ops_from_env(20_000);
    let s = thp_study(0, ops);
    println!("{}", report::format_thp(&s));

    // Walk latency over a huge mapping vs a 4 KB mapping of the same span.
    let mut group = c.benchmark_group("thp_nested_walk");
    let build = |thp: bool| {
        let mut m = if thp {
            Machine::with_allocator(MachineConfig::paper(1, 64), Box::new(ThpAllocator::new()))
        } else {
            Machine::new(MachineConfig::paper(1, 64))
        };
        let pid = m.guest_mut().spawn();
        let base = m.guest_mut().mmap(pid, 1024).expect("mmap");
        for i in 0..1024u64 {
            m.touch(0, pid, GuestVirtAddr::new(base.raw() + i * PAGE_SIZE), true)
                .expect("touch");
        }
        (m, pid, base.page().raw())
    };
    for (label, thp) in [("small_pages", false), ("huge_pages", true)] {
        let (mut m, pid, first) = build(thp);
        let mut i = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                let vpn = GuestVirtPage::new(first + (i % 1024));
                i += 17;
                black_box(m.nested_walk(0, pid, vpn).expect("mapped"))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_thp
}
criterion_main!(benches);
