//! Bench for the **§6.4** microbenchmark: prints the allocate-and-touch
//! result, then wall-clock-measures the guest fault path with each
//! allocator (the real-code analogue of the paper's cycle claim).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::ReservationAllocator;
use vmsim_os::{DefaultAllocator, GuestFrameAllocator, GuestOs};
use vmsim_sim::{report, sec64};
use vmsim_types::GuestVirtPage;

fn bench_alloc_latency(c: &mut Criterion) {
    let r = sec64(16_384);
    println!("{}", report::format_sec64(&r));

    let mut group = c.benchmark_group("fault_path_wallclock");
    type AllocFactory = fn() -> Box<dyn GuestFrameAllocator>;
    let cases: Vec<(&str, AllocFactory)> = vec![
        ("default", || Box::new(DefaultAllocator::new())),
        ("ptemagnet", || Box::new(ReservationAllocator::new())),
    ];
    for (label, mk) in cases {
        group.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut g = GuestOs::new(1 << 16, mk());
                    let pid = g.spawn();
                    let va = g.mmap(pid, 4096).expect("mmap");
                    (g, pid, va.page().raw())
                },
                |(mut g, pid, base)| {
                    for i in 0..4096u64 {
                        black_box(
                            g.page_fault(pid, GuestVirtPage::new(base + i))
                                .expect("fault"),
                        );
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_alloc_latency
}
criterion_main!(benches);
