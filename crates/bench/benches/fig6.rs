//! Bench for **Figure 6**: prints the per-benchmark improvement series at
//! reduced scale, then measures end-to-end steady-state execution (cycles
//! per op as wall-clock of the simulator's inner loop) for pagerank with
//! both allocators.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_bench::measure_ops_from_env;
use vmsim_os::{Machine, MachineConfig};
use vmsim_sim::{fig5_fig6, report, AllocatorKind, Colocation};
use vmsim_workloads::{benchmark, corunner, BenchId, CoId};

fn bench_fig6(c: &mut Criterion) {
    let ops = measure_ops_from_env(25_000);
    let s = fig5_fig6(0, ops);
    println!("{}", report::format_improvement_figure(&s, "Figure 6"));

    let mut group = c.benchmark_group("fig6_steady_state");
    group.sample_size(10);
    for kind in [AllocatorKind::Default, AllocatorKind::PteMagnet] {
        // Build a colocated machine at reduced scale and run it to steady
        // state once; the bench then measures scheduler rounds.
        let machine = Machine::with_allocator(MachineConfig::paper(2, 256), kind.build());
        let mut colo = Colocation::new(machine);
        let primary = colo.add_app(Box::new(benchmark(BenchId::Pagerank, 0)), 1);
        colo.add_app(corunner(CoId::Objdet, 1), 1);
        colo.run_until_steady(primary).expect("init");
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                colo.round().expect("round");
                black_box(())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
