//! Bench for **Table 4**: prints the paper's rows at reduced scale, then
//! measures steady-state touch latency on colocated machines built with the
//! default allocator vs PTEMagnet.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::ReservationAllocator;
use vmsim_bench::{layout_fixture, measure_ops_from_env};
use vmsim_os::{DefaultAllocator, GuestFrameAllocator};
use vmsim_sim::{report, table4};
use vmsim_types::{GuestVirtAddr, PAGE_SIZE};

fn bench_table4(c: &mut Criterion) {
    let ops = measure_ops_from_env(40_000);
    let t = table4(0, ops);
    println!("{}", report::format_table4(&t));

    let mut group = c.benchmark_group("table4_touch");
    let allocators: Vec<(&str, Box<dyn GuestFrameAllocator>)> = vec![
        ("default", Box::new(DefaultAllocator::new())),
        ("ptemagnet", Box::new(ReservationAllocator::new())),
    ];
    for (label, allocator) in allocators {
        let (mut m, pid, base) = layout_fixture(allocator, 512, true);
        let mut i = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                let va = GuestVirtAddr::new(base.raw() + (i % 512) * PAGE_SIZE);
                i += 13;
                black_box(m.touch(0, pid, va, false).expect("mapped"))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table4
}
criterion_main!(benches);
