//! Bench for **Table 1**: prints the paper's rows at reduced scale, then
//! measures the mechanism behind them — nested page-walk latency over a
//! contiguous vs a fragmented layout.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use vmsim_bench::{layout_fixture, measure_ops_from_env};
use vmsim_os::DefaultAllocator;
use vmsim_sim::{report, table1};
use vmsim_types::GuestVirtPage;

fn bench_table1(c: &mut Criterion) {
    let ops = measure_ops_from_env(40_000);
    let t = table1(0, ops);
    println!("{}", report::format_table1(&t));

    let mut group = c.benchmark_group("table1_nested_walk");
    for (label, interleave) in [("contiguous", false), ("fragmented", true)] {
        let (mut m, pid, base) = layout_fixture(Box::new(DefaultAllocator::new()), 512, interleave);
        let first = base.page().raw();
        let mut i = 0u64;
        group.bench_function(label, |b| {
            b.iter(|| {
                let vpn = GuestVirtPage::new(first + (i % 512));
                i += 7; // stride through groups
                black_box(m.nested_walk(0, pid, vpn).expect("mapped"))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_table1
}
criterion_main!(benches);
