//! Bench for **Figure 5**: prints the host-PT fragmentation series at
//! reduced scale, then measures the fragmentation-census computation over
//! fragmented and PTEMagnet layouts.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::ReservationAllocator;
use vmsim_bench::{layout_fixture, measure_ops_from_env};
use vmsim_os::DefaultAllocator;
use vmsim_sim::{fig5_fig6, report};

fn bench_fig5(c: &mut Criterion) {
    let ops = measure_ops_from_env(25_000);
    let s = fig5_fig6(0, ops);
    println!("{}", report::format_fig5(&s));

    let mut group = c.benchmark_group("fig5_fragmentation_census");
    let (frag, pid_f, _) = layout_fixture(Box::new(DefaultAllocator::new()), 2048, true);
    group.bench_function("fragmented_layout", |b| {
        b.iter(|| black_box(frag.host_pt_fragmentation(pid_f).expect("census")))
    });
    let (pm, pid_p, _) = layout_fixture(Box::new(ReservationAllocator::new()), 2048, true);
    group.bench_function("ptemagnet_layout", |b| {
        b.iter(|| black_box(pm.host_pt_fragmentation(pid_p).expect("census")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fig5
}
criterion_main!(benches);
