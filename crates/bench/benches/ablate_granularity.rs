//! Ablation: **reservation granularity** (§4.1 fixes 8 pages = one cache
//! line of PTEs). Sweeps 1/2/4/8/16-page groups and prints host-PT
//! fragmentation, memory overhead, and improvement. Expected shape: the
//! walk benefit saturates at 8 pages (one 64-byte line holds only 8 PTEs)
//! while reserved-unused overhead keeps growing past it.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};
use ptemagnet::GranularReservationAllocator;
use vmsim_bench::measure_ops_from_env;
use vmsim_sim::Scenario;
use vmsim_workloads::{BenchId, CoId};

fn bench_granularity(c: &mut Criterion) {
    let ops = measure_ops_from_env(25_000);
    let baseline = Scenario::new(BenchId::Pagerank)
        .corunners(&[CoId::Objdet])
        .corunner_weight(4)
        .measure_ops(ops)
        .run();
    println!("Ablation: reservation granularity (pagerank + objdet)");
    println!(
        "{:<8} {:>9} {:>12} {:>12}",
        "pages", "hostfrag", "improvement", "unused-peak"
    );
    println!(
        "{:<8} {:>9.2} {:>11.1}% {:>12}",
        "none", baseline.host_frag, 0.0, baseline.reserved_unused_peak
    );
    for order in 0..=4u32 {
        let m = Scenario::new(BenchId::Pagerank)
            .corunners(&[CoId::Objdet])
            .corunner_weight(4)
            .custom_allocator(Box::new(GranularReservationAllocator::new(order)))
            .measure_ops(ops)
            .run();
        println!(
            "{:<8} {:>9.2} {:>11.1}% {:>12}",
            1u64 << order,
            m.host_frag,
            m.improvement_over(&baseline) * 100.0,
            m.reserved_unused_peak
        );
    }

    // Criterion part: allocator fault-path cost by granularity.
    let mut group = c.benchmark_group("granularity_fault_path");
    for order in [0u32, 3, 4] {
        group.bench_function(format!("order{order}"), |b| {
            use vmsim_os::{GuestBuddy, GuestFrameAllocator, Pid};
            use vmsim_types::GuestVirtPage;
            b.iter_batched(
                || {
                    (
                        GranularReservationAllocator::new(order),
                        GuestBuddy::new(1 << 14),
                    )
                },
                |(mut a, mut buddy)| {
                    for vpn in 0..2048u64 {
                        black_box(
                            a.allocate(Pid(1), GuestVirtPage::new(vpn), &mut buddy)
                                .expect("alloc"),
                        );
                    }
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_granularity
}
criterion_main!(benches);
