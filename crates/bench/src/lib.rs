//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has (a) an `exp-*` binary in
//! `src/bin/` that regenerates the paper's rows/series at full scale, and
//! (b) a Criterion bench in `benches/` that measures the mechanism behind
//! the experiment and prints a reduced-scale version of the same rows.
//!
//! Scale control: the `VMSIM_OPS` environment variable (deprecated alias
//! `PTEMAGNET_OPS`) sets the number of measured steady-state operations per
//! run (default [`vmsim_sim::DEFAULT_MEASURE_OPS`] for binaries, a reduced
//! count for benches).

use vmsim_config::ExperimentManifest;
use vmsim_os::{Machine, MachineConfig};
use vmsim_sim::driver::ManifestRun;
use vmsim_types::{GuestVirtAddr, PAGE_SIZE};

/// Reads the measured-op count from `VMSIM_OPS` (or the deprecated
/// `PTEMAGNET_OPS` alias), with a fallback. Delegates to
/// `vmsim_config::env`, the single environment-parsing point.
pub fn measure_ops_from_env(default: u64) -> u64 {
    vmsim_config::env::measure_ops_or(default)
}

/// Parses a manifest baked into an `exp-*` binary with `include_str!`.
///
/// # Panics
///
/// Panics if the manifest does not parse — checked-in manifests are
/// validated in CI (`vmsim validate manifests/*.json`), so this is a build
/// defect, not a user error.
pub fn parse_embedded(json: &str) -> ExperimentManifest {
    ExperimentManifest::from_json(json).expect("checked-in manifest must parse")
}

/// Runs a manifest with the `VMSIM_OPS` override applied — the shared body
/// of every `exp-*` binary.
///
/// # Panics
///
/// Panics if the manifest fails validation or names an unknown policy.
pub fn run_manifest(mut manifest: ExperimentManifest) -> ManifestRun {
    manifest.measure_ops = measure_ops_from_env(manifest.measure_ops);
    vmsim_sim::driver::run_manifest(&manifest)
        .unwrap_or_else(|e| panic!("manifest '{}': {e}", manifest.name))
}

/// The whole `main` of a typical `exp-*` binary: parse the embedded
/// manifest, apply the `VMSIM_OPS` override, run, print the paper report.
///
/// # Panics
///
/// Panics if the manifest does not parse or fails to run.
pub fn run_embedded_manifest(json: &str) {
    print!("{}", run_manifest(parse_embedded(json)).report());
}

/// Builds a small machine with `pages` of one process's memory mapped and
/// touched, interleaved with a second process when `interleave` is set —
/// the minimal fixture for fragmented-vs-contiguous layout benches.
///
/// Returns the machine and the primary process's base address.
///
/// # Panics
///
/// Panics if the fixture cannot be constructed (sized machine too small).
pub fn layout_fixture(
    allocator: Box<dyn vmsim_os::GuestFrameAllocator>,
    pages: u64,
    interleave: bool,
) -> (Machine, vmsim_os::Pid, GuestVirtAddr) {
    let mut m = Machine::with_allocator(MachineConfig::paper(2, 256), allocator);
    let pid = m.guest_mut().spawn();
    let other = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, pages).expect("fixture mmap");
    let other_base = m.guest_mut().mmap(other, pages).expect("fixture mmap");
    for i in 0..pages {
        m.touch(0, pid, GuestVirtAddr::new(base.raw() + i * PAGE_SIZE), true)
            .expect("fixture touch");
        if interleave {
            m.touch(
                1,
                other,
                GuestVirtAddr::new(other_base.raw() + i * PAGE_SIZE),
                true,
            )
            .expect("fixture touch");
        }
    }
    (m, pid, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_os::DefaultAllocator;

    #[test]
    fn env_override_parses() {
        // Not setting either variable: default wins.
        std::env::remove_var("VMSIM_OPS");
        std::env::remove_var("PTEMAGNET_OPS");
        assert_eq!(measure_ops_from_env(123), 123);
    }

    #[test]
    fn fixture_layouts_differ_in_fragmentation() {
        let (contig, pid_c, _) = layout_fixture(Box::new(DefaultAllocator::new()), 64, false);
        let (frag, pid_f, _) = layout_fixture(Box::new(DefaultAllocator::new()), 64, true);
        let c = contig.host_pt_fragmentation(pid_c).unwrap().mean();
        let f = frag.host_pt_fragmentation(pid_f).unwrap().mean();
        assert!(f > c, "interleaved fixture must fragment more: {f} vs {c}");
    }
}
