//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has (a) an `exp-*` binary in
//! `src/bin/` that regenerates the paper's rows/series at full scale, and
//! (b) a Criterion bench in `benches/` that measures the mechanism behind
//! the experiment and prints a reduced-scale version of the same rows.
//!
//! Scale control: the `PTEMAGNET_OPS` environment variable sets the number
//! of measured steady-state operations per run (default
//! [`vmsim_sim::DEFAULT_MEASURE_OPS`] for binaries, a reduced count for
//! benches).

use vmsim_os::{Machine, MachineConfig};
use vmsim_types::{GuestVirtAddr, PAGE_SIZE};

/// Reads the measured-op count from `PTEMAGNET_OPS`, with a fallback.
pub fn measure_ops_from_env(default: u64) -> u64 {
    std::env::var("PTEMAGNET_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Builds a small machine with `pages` of one process's memory mapped and
/// touched, interleaved with a second process when `interleave` is set —
/// the minimal fixture for fragmented-vs-contiguous layout benches.
///
/// Returns the machine and the primary process's base address.
///
/// # Panics
///
/// Panics if the fixture cannot be constructed (sized machine too small).
pub fn layout_fixture(
    allocator: Box<dyn vmsim_os::GuestFrameAllocator>,
    pages: u64,
    interleave: bool,
) -> (Machine, vmsim_os::Pid, GuestVirtAddr) {
    let mut m = Machine::with_allocator(MachineConfig::paper(2, 256), allocator);
    let pid = m.guest_mut().spawn();
    let other = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, pages).expect("fixture mmap");
    let other_base = m.guest_mut().mmap(other, pages).expect("fixture mmap");
    for i in 0..pages {
        m.touch(0, pid, GuestVirtAddr::new(base.raw() + i * PAGE_SIZE), true)
            .expect("fixture touch");
        if interleave {
            m.touch(
                1,
                other,
                GuestVirtAddr::new(other_base.raw() + i * PAGE_SIZE),
                true,
            )
            .expect("fixture touch");
        }
    }
    (m, pid, base)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_os::DefaultAllocator;

    #[test]
    fn env_override_parses() {
        // Not setting the variable: default wins.
        std::env::remove_var("PTEMAGNET_OPS");
        assert_eq!(measure_ops_from_env(123), 123);
    }

    #[test]
    fn fixture_layouts_differ_in_fragmentation() {
        let (contig, pid_c, _) = layout_fixture(Box::new(DefaultAllocator::new()), 64, false);
        let (frag, pid_f, _) = layout_fixture(Box::new(DefaultAllocator::new()), 64, true);
        let c = contig.host_pt_fragmentation(pid_c).unwrap().mean();
        let f = frag.host_pt_fragmentation(pid_f).unwrap().mean();
        assert!(f > c, "interleaved fixture must fragment more: {f} vs {c}");
    }
}
