//! Regenerates the artifact appendix A.3.2 **LLC-capacity sensitivity**.
//! The paper predicts larger LLCs boost PTEMagnet's speedup (packed PT
//! lines stay resident longer); in this model the full curve is U-shaped:
//! at *scarce* LLC capacity the scattered baseline misses all the way to
//! DRAM (improvement spikes), it bottoms out in the mid range, and grows
//! again as capacity retains the packed lines — the paper's branch.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-llc`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::llc_sensitivity;

fn main() {
    let ops = measure_ops_from_env(150_000);
    println!("LLC sensitivity: pagerank + objdet, PTEMagnet improvement by LLC size");
    println!("{:<8} {:>12}", "LLC", "improvement");
    for (mb, imp) in llc_sensitivity(0, ops, &[1, 2, 4, 16, 64]) {
        println!("{:<8} {:>+11.1}%", format!("{mb} MB"), imp * 100.0);
    }
}
