//! Regenerates the artifact appendix A.3.2 **LLC-capacity sensitivity**.
//! The paper predicts larger LLCs boost PTEMagnet's speedup (packed PT
//! lines stay resident longer); in this model the full curve is U-shaped:
//! at *scarce* LLC capacity the scattered baseline misses all the way to
//! DRAM (improvement spikes), it bottoms out in the mid range, and grows
//! again as capacity retains the packed lines — the paper's branch.
//!
//! Thin wrapper over `manifests/llc.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-llc`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/llc.json"));
}
