//! Regenerates **Figure 6** (§6.1): per-benchmark performance improvement
//! of PTEMagnet under colocation with objdet (paper: 4 % average, 9 % max).
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-fig6`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{fig5_fig6, report, DEFAULT_MEASURE_OPS};

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let s = fig5_fig6(0, ops);
    print!("{}", report::format_improvement_figure(&s, "Figure 6"));
    println!();
    print!("{}", report::figure_as_bars(&s));
}
