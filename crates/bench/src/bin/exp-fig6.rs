//! Regenerates **Figure 6** (§6.1): per-benchmark performance improvement
//! of PTEMagnet under colocation with objdet (paper: 4 % average, 9 % max).
//!
//! Thin wrapper over `manifests/fig6.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-fig6`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/fig6.json"));
}
