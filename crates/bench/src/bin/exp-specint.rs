//! Regenerates the §6.1 **zero-overhead check**: PTEMagnet on the remaining
//! SPEC'17 Integer benchmarks (low TLB pressure). Paper: improvements in
//! the 0–1 % range and, critically, *no benchmark ever slows down*.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-specint`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::specint_zero_overhead;

fn main() {
    let ops = measure_ops_from_env(150_000);
    println!("Zero-overhead check: low-TLB-pressure SPECint + objdet");
    println!("{:<12} {:>12}", "benchmark", "improvement");
    let rows = specint_zero_overhead(0, ops);
    let mut worst = f64::INFINITY;
    for (name, imp) in &rows {
        println!("{name:<12} {:>+11.2}%", imp * 100.0);
        worst = worst.min(*imp);
    }
    println!(
        "\nWorst case: {:+.2}% — {}",
        worst * 100.0,
        if worst > -0.01 {
            "PTEMagnet never slows anything down (paper's claim holds)"
        } else {
            "REGRESSION: the zero-overhead claim failed"
        }
    );
}
