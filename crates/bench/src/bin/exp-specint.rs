//! Regenerates the §6.1 **zero-overhead check**: PTEMagnet on the remaining
//! SPEC'17 Integer benchmarks (low TLB pressure). Paper: improvements in
//! the 0–1 % range and, critically, *no benchmark ever slows down*.
//!
//! Thin wrapper over `manifests/specint.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-specint`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/specint.json"));
}
