//! Regenerates **Figure 7** (§6.1): per-benchmark performance improvement
//! of PTEMagnet under colocation with the full co-runner combination
//! (paper: 3 % average, 5 % max).
//!
//! Thin wrapper over `manifests/fig7.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-fig7`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/fig7.json"));
}
