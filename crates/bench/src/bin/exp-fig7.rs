//! Regenerates **Figure 7** (§6.1): per-benchmark performance improvement
//! of PTEMagnet under colocation with the full co-runner combination
//! (paper: 3 % average, 5 % max).
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-fig7`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{fig7, report, DEFAULT_MEASURE_OPS};

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let s = fig7(0, ops);
    print!("{}", report::format_improvement_figure(&s, "Figure 7"));
    println!();
    print!("{}", report::figure_as_bars(&s));
}
