//! Runs the complete evaluation — every table, figure, and study — like
//! the original artifact's `launch_all_exps` script, writing a full
//! transcript to stdout (tee it into `results/`).
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-all`
//! (set `VMSIM_OPS` to trade fidelity for speed).
//!
//! Each section is also available as its own manifest under `manifests/`
//! (`vmsim run manifests/table4.json`); this binary goes through the same
//! driver but shares the Figure 5/6 sweep between both sections.

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{report, DEFAULT_MEASURE_OPS};

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let t0 = std::time::Instant::now();

    println!("== Table 1 ==");
    print!("{}", report::format_table1(&vmsim_sim::table1(0, ops)));

    let sweep6 = vmsim_sim::fig5_fig6(0, ops);
    println!("\n== Figure 5 ==");
    print!("{}", report::format_fig5(&sweep6));
    println!("\n== Figure 6 ==");
    print!("{}", report::format_improvement_figure(&sweep6, "Figure 6"));

    println!("\n== Figure 7 ==");
    print!(
        "{}",
        report::format_improvement_figure(&vmsim_sim::fig7(0, ops), "Figure 7")
    );

    println!("\n== Table 4 ==");
    print!("{}", report::format_table4(&vmsim_sim::table4(0, ops)));

    println!("\n== Sec 6.2 ==");
    print!("{}", report::format_sec62(&vmsim_sim::sec62(0, ops)));

    println!("\n== Sec 6.4 ==");
    print!("{}", report::format_sec64(&vmsim_sim::sec64(65_536)));

    println!("\n== THP study ==");
    print!("{}", report::format_thp(&vmsim_sim::thp_study(0, ops / 2)));

    println!("\n== SPECint zero-overhead ==");
    for (name, imp) in vmsim_sim::specint_zero_overhead(0, ops / 2) {
        println!("{name:<12} {:>+11.2}%", imp * 100.0);
    }

    println!("\n== LLC sensitivity ==");
    for (mb, imp) in vmsim_sim::llc_sensitivity(0, ops / 2, &[1, 2, 4, 16, 64]) {
        println!("{:<8} {:>+11.1}%", format!("{mb} MB"), imp * 100.0);
    }

    println!("\nTotal wall-clock: {:.1}s", t0.elapsed().as_secs_f64());
}
