//! Regenerates **Table 1** (§3.3): pagerank colocated with stress-ng vs
//! standalone, default kernel, co-runner stopped after the allocation phase.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-table1`
//! (set `PTEMAGNET_OPS` to change the measured-op count).

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{report, table1, DEFAULT_MEASURE_OPS};

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let t = table1(0, ops);
    print!("{}", report::format_table1(&t));
}
