//! Regenerates **Table 1** (§3.3): pagerank colocated with stress-ng vs
//! standalone, default kernel, co-runner stopped after the allocation phase.
//!
//! Thin wrapper over `manifests/table1.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-table1`
//! (set `VMSIM_OPS` to change the measured-op count).

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/table1.json"));
}
