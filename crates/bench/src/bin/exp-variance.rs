//! Reproduces the paper's §6.1 run-to-run variance claim: "the standard
//! deviation of the execution time calculated over 40 runs ... does not
//! exceed 2%". Seeds stand in for runs (the simulator is deterministic per
//! seed).
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-variance [seeds]`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{AllocatorKind, Replication, Scenario};
use vmsim_workloads::{BenchId, CoId};

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let ops = measure_ops_from_env(150_000);
    println!("Variance study: pagerank + objdet across {seeds} seeds, {ops} ops each");
    println!(
        "{:<11} {:>10} {:>22}",
        "allocator", "cv", "improvement (mean±sd)"
    );

    let replicate = |kind: AllocatorKind| {
        Replication::across(0..seeds, |seed| {
            Scenario::new(BenchId::Pagerank)
                .corunners(&[CoId::Objdet])
                .corunner_weight(4)
                .allocator(kind)
                .measure_ops(ops)
                .seed(seed)
                .run()
        })
    };
    let base = replicate(AllocatorKind::Default);
    let pm = replicate(AllocatorKind::PteMagnet);
    println!(
        "{:<11} {:>9.2}% {:>22}",
        "default",
        base.cycles().cv() * 100.0,
        "-"
    );
    let imp = pm.improvement_over(&base);
    println!(
        "{:<11} {:>9.2}% {:>14.1}% ± {:.1}%",
        "ptemagnet",
        pm.cycles().cv() * 100.0,
        imp.mean * 100.0,
        imp.stddev * 100.0
    );
    println!(
        "\nPaper: execution-time stddev over 40 runs <= 2%. Measured cv: {:.2}% / {:.2}%.",
        base.cycles().cv() * 100.0,
        pm.cycles().cv() * 100.0
    );
}
