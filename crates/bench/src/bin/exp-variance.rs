//! Reproduces the paper's §6.1 run-to-run variance claim: "the standard
//! deviation of the execution time calculated over 40 runs ... does not
//! exceed 2%". Seeds stand in for runs (the simulator is deterministic per
//! seed).
//!
//! Thin wrapper over `manifests/variance.json`; the optional argument
//! overrides the manifest's seed list with `0..seeds`.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-variance [seeds]`

fn main() {
    let mut manifest =
        vmsim_bench::parse_embedded(include_str!("../../../../manifests/variance.json"));
    if let Some(seeds) = std::env::args().nth(1).and_then(|s| s.parse::<u64>().ok()) {
        manifest.seeds = (0..seeds.max(2)).collect();
    }
    print!("{}", vmsim_bench::run_manifest(manifest).report());
}
