//! Regenerates the **hardware-sensitivity study**: how PTEMagnet's benefit
//! scales with STLB reach and nested-TLB capacity (the artifact appendix's
//! A.3.2 discussion generalized: the improvement tracks how much host-PT
//! traffic the walks actually generate).
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-hw`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::hw_sensitivity;

fn main() {
    let ops = measure_ops_from_env(120_000);
    println!(
        "Hardware sensitivity (stlb knob: omnetpp + objdet; nested-tlb knob: pagerank + objdet):"
    );
    println!(
        "{:<12} {:>8} {:>10} {:>12}",
        "knob", "entries", "tlb-miss", "improvement"
    );
    for row in hw_sensitivity(0, ops) {
        println!(
            "{:<12} {:>8} {:>9.1}% {:>+11.1}%",
            row.knob,
            row.value,
            row.tlb_miss_ratio * 100.0,
            row.improvement * 100.0
        );
    }
}
