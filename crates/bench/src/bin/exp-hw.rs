//! Regenerates the **hardware-sensitivity study**: how PTEMagnet's benefit
//! scales with STLB reach and nested-TLB capacity (the artifact appendix's
//! A.3.2 discussion generalized: the improvement tracks how much host-PT
//! traffic the walks actually generate).
//!
//! Thin wrapper over `manifests/hw.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-hw`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/hw.json"));
}
