//! Regenerates the paper's motivating **walk-source analysis** (§1, §3.2):
//! for each level of the guest and host page tables, where were its
//! accesses served from during nested walks?
//!
//! Expected shape (paper §1): guest-PT accesses are served near the core at
//! every level; host-PT *leaf* accesses are the ones fragmentation pushes
//! out to LLC/DRAM — "page walks within the host PT incur 4.4x more cache
//! misses than within the guest PT" — and PTEMagnet pulls them back in.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-breakdown`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{report, walk_breakdown};

fn main() {
    let ops = measure_ops_from_env(150_000);
    for (allocator, counters) in walk_breakdown(0, ops) {
        print!("{}", report::format_breakdown(&allocator, &counters));
        let ratio = if counters.guest_pt.memory == 0 {
            f64::INFINITY
        } else {
            counters.host_pt.memory as f64 / counters.guest_pt.memory as f64
        };
        println!(
            "-> host-PT DRAM accesses are {ratio:.1}x the guest-PT's (paper: 4.4x under colocation)\n"
        );
    }
}
