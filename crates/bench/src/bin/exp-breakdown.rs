//! Regenerates the paper's motivating **walk-source analysis** (§1, §3.2):
//! for each level of the guest and host page tables, where were its
//! accesses served from during nested walks?
//!
//! Expected shape (paper §1): guest-PT accesses are served near the core at
//! every level; host-PT *leaf* accesses are the ones fragmentation pushes
//! out to LLC/DRAM — "page walks within the host PT incur 4.4x more cache
//! misses than within the guest PT" — and PTEMagnet pulls them back in.
//!
//! Thin wrapper over `manifests/breakdown.json` — edit the manifest or run
//! it through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-breakdown`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/breakdown.json"));
}
