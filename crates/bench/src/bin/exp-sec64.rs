//! Regenerates the **§6.4** microbenchmark: allocate a large array and
//! touch every page once, default kernel vs PTEMagnet (paper: PTEMagnet is
//! ≈0.5 % *faster* — the reservation mechanism is overhead-free).
//!
//! Thin wrapper over `manifests/sec64.json`; the optional argument
//! overrides the manifest's page count.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-sec64 [pages]`

use vmsim_config::ExperimentSpec;

fn main() {
    let mut manifest =
        vmsim_bench::parse_embedded(include_str!("../../../../manifests/sec64.json"));
    // The paper's array is 60 GB; the manifest defaults to a scaled 256 MB
    // (65536 pages).
    if let Some(pages) = std::env::args().nth(1).and_then(|s| s.parse::<u64>().ok()) {
        manifest.experiment = ExperimentSpec::AllocLatency { pages };
    }
    print!("{}", vmsim_bench::run_manifest(manifest).report());
}
