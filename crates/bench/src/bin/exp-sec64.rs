//! Regenerates the **§6.4** microbenchmark: allocate a large array and
//! touch every page once, default kernel vs PTEMagnet (paper: PTEMagnet is
//! ≈0.5 % *faster* — the reservation mechanism is overhead-free).
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-sec64 [pages]`

use vmsim_sim::{report, sec64};

fn main() {
    // The paper's array is 60 GB; default to a scaled 256 MB (65536 pages).
    let pages: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(65_536);
    let r = sec64(pages);
    print!("{}", report::format_sec64(&r));
}
