//! Regenerates `BENCH_core.json`: the checked-in performance baseline for
//! the memoizing/batching translation core.
//!
//! The measurement logic lives in [`vmsim_sim::perf`] (shared with the
//! `vmsim perf` trajectory subcommand); this binary is a thin CLI wrapper
//! kept for the classic baseline workflow:
//!
//! ```text
//! bench-core                  # print the bench-core-v1 JSON to stdout
//! bench-core --out FILE      # write the JSON to FILE (regen baseline)
//! bench-core --check FILE    # run, compare against FILE, exit 1 on
//!                             #   >5% naive-walk regression in any cell
//! ```
//!
//! Regenerate with `scripts/regen-bench-core.sh` (or directly:
//! `cargo run --release -p vmsim-bench --bin bench-core -- --out BENCH_core.json`).
//! For the append-only performance history, use `vmsim perf` instead.

use std::process::ExitCode;

use vmsim_sim::perf;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().cloned(),
            "--check" => check = it.next().cloned(),
            other => {
                eprintln!("bench-core: unknown argument: {other}");
                eprintln!("usage: bench-core [--out FILE | --check FILE]");
                return ExitCode::from(2);
            }
        }
    }

    let cells = perf::run_cells();
    eprintln!("running microkernels ...");
    let kernels = perf::run_kernels();
    let json = perf::baseline_json(&cells, &kernels);

    if let Some(path) = check {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("bench-core: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let failed = perf::check_baseline(&cells, &baseline);
        if failed > 0 {
            eprintln!("bench-core check FAILED: {failed} cell(s) regressed over 5%");
            return ExitCode::FAILURE;
        }
        eprintln!("bench-core check passed");
        return ExitCode::SUCCESS;
    }

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("bench-core: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}
