//! Regenerates `BENCH_core.json`: the checked-in performance baseline for
//! the memoizing/batching translation core.
//!
//! Two kinds of numbers per tracked cell:
//!
//! * **deterministic** — cost-model counters (cycles, TLB traffic) and memo
//!   counters ([`vmsim_os::MemoStats`]): identical on every machine and
//!   every run. The CI gate compares these; `naive_walks` (touches that had
//!   to take the full translation path instead of a memo replay) is the
//!   regression signal — more naive walks means the memo layer stopped
//!   covering the workload.
//! * **informational** — wall-clock timings (whole-cell milliseconds and
//!   microkernel medians). Machine-dependent; recorded for trend-watching,
//!   never gated.
//!
//! Usage:
//!
//! ```text
//! bench-core                  # print the JSON to stdout
//! bench-core --out FILE      # write the JSON to FILE (regen baseline)
//! bench-core --check FILE    # run, compare against FILE, exit 1 on
//!                             #   >5% naive-walk regression in any cell
//! ```
//!
//! Regenerate with `scripts/regen-bench-core.sh` (or directly:
//! `cargo run --release -p vmsim-bench --bin bench-core -- --out BENCH_core.json`).

use std::time::Instant;

use vmsim_os::{Machine, MachineConfig, MemoStats};
use vmsim_sim::Colocation;
use vmsim_types::{GuestVirtAddr, PAGE_SIZE};
use vmsim_workloads::{benchmark, corunner, BenchId, CoId};

/// Measured steady-state ops per cell. Deliberately small: the baseline must
/// regenerate in seconds, and the deterministic counters it gates on are
/// exact at any scale.
const CELL_OPS: u64 = 20_000;

/// The tracked cells: the fig6 protocol (objdet co-runner at weight 4) for
/// one low-TLB-pressure benchmark (gcc) and one walk-heavy one (mcf), under
/// both allocators.
const CELLS: [(BenchId, &str); 4] = [
    (BenchId::Gcc, "default"),
    (BenchId::Gcc, "ptemagnet"),
    (BenchId::Mcf, "default"),
    (BenchId::Mcf, "ptemagnet"),
];

struct CellResult {
    benchmark: &'static str,
    allocator: &'static str,
    cycles: u64,
    tlb_lookups: u64,
    tlb_misses: u64,
    memo: MemoStats,
    wall_ms: f64,
}

fn run_cell(bench: BenchId, alloc: &'static str) -> CellResult {
    let allocator = ptemagnet::registry::resolve(alloc).expect("tracked allocators are registered");
    let mut machine = Machine::with_allocator(MachineConfig::paper(2, 1024), allocator);
    machine.set_memo_enabled(vmsim_config::env::memo_enabled_or_default());
    let mut colo = Colocation::new(machine);
    let primary = colo.add_app(Box::new(benchmark(bench, 0)), 1);
    // Seed matches the scenario layer: seed.wrapping_mul(31).wrapping_add(1).
    colo.add_app(corunner(CoId::Objdet, 1), 4);
    colo.run_until_steady(primary).expect("init");
    colo.machine_mut().reset_measurement();
    let memo_before = colo.machine().memo_stats();
    let cycles_before = colo.cycles(primary);
    let start = Instant::now();
    colo.run_ops(primary, CELL_OPS, |_| {})
        .expect("measured phase");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let memo_after = colo.machine().memo_stats();
    let core = colo.core(primary);
    let tlb = colo.machine().tlb(core);
    CellResult {
        benchmark: bench.name(),
        allocator: alloc,
        cycles: colo.cycles(primary) - cycles_before,
        tlb_lookups: tlb.lookups(),
        tlb_misses: tlb.misses(),
        memo: MemoStats {
            hits: memo_after.hits - memo_before.hits,
            streak_hits: memo_after.streak_hits - memo_before.streak_hits,
            fills: memo_after.fills - memo_before.fills,
            naive_walks: memo_after.naive_walks - memo_before.naive_walks,
            clears: memo_after.clears - memo_before.clears,
        },
        wall_ms,
    }
}

/// Median nanoseconds per op of `op` over `iters` calls, sampled three
/// times (the same shape as the Criterion benches in `benches/harness.rs`,
/// scaled down so the baseline regenerates in seconds).
fn median_ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[1]
}

struct KernelResult {
    name: &'static str,
    ns_per_op: f64,
}

/// The three microkernels mirroring the `harness.rs` Criterion benches:
/// cold full walks, memo-hit replays, and a batched VMA run.
fn run_kernels() -> Vec<KernelResult> {
    let pages = 4096u64;
    let mut out = Vec::new();

    // full_walk_cold: stride far beyond TLB and memo reach, memo disabled.
    let mut m = Machine::new(MachineConfig::paper(1, 1024));
    m.set_memo_enabled(false);
    let pid = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, pages).expect("mmap");
    for i in 0..pages {
        m.touch(0, pid, GuestVirtAddr::new(base.raw() + i * PAGE_SIZE), true)
            .expect("prefault");
    }
    let mut i = 0u64;
    out.push(KernelResult {
        name: "full_walk_cold",
        ns_per_op: median_ns_per_op(20_000, || {
            // Large prime stride defeats TLB and cache locality.
            i = (i + 257) % pages;
            m.touch(
                0,
                pid,
                GuestVirtAddr::new(base.raw() + i * PAGE_SIZE),
                false,
            )
            .expect("touch");
        }),
    });

    // full_walk_memo_hit: one warm page replayed from its memo slot.
    let mut m = Machine::new(MachineConfig::paper(1, 1024));
    let pid = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, 8).expect("mmap");
    m.touch(0, pid, base, true).expect("warm");
    m.touch(0, pid, base, false).expect("fill memo");
    out.push(KernelResult {
        name: "full_walk_memo_hit",
        ns_per_op: median_ns_per_op(200_000, || {
            m.touch(0, pid, base, false).expect("replay");
        }),
    });

    // batched_vma_run: 128 pages x 4 touches each through touch_run.
    let mut m = Machine::new(MachineConfig::paper(1, 1024));
    let pid = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, 128).expect("mmap");
    let run: Vec<(GuestVirtAddr, bool)> = (0..128u64)
        .flat_map(|p| {
            let va = GuestVirtAddr::new(base.raw() + p * PAGE_SIZE);
            [(va, true), (va, false), (va, false), (va, false)]
        })
        .collect();
    m.touch_run(0, pid, &run).expect("warm run");
    out.push(KernelResult {
        name: "batched_vma_run",
        ns_per_op: median_ns_per_op(500, || {
            m.touch_run(0, pid, &run).expect("run");
        }),
    });

    out
}

fn render_json(cells: &[CellResult], kernels: &[KernelResult]) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"bench-core-v1\",");
    let _ = writeln!(s, "  \"measure_ops\": {CELL_OPS},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"benchmark\": \"{}\",", c.benchmark);
        let _ = writeln!(s, "      \"allocator\": \"{}\",", c.allocator);
        let _ = writeln!(s, "      \"deterministic\": {{");
        let _ = writeln!(s, "        \"cycles\": {},", c.cycles);
        let _ = writeln!(s, "        \"tlb_lookups\": {},", c.tlb_lookups);
        let _ = writeln!(s, "        \"tlb_misses\": {},", c.tlb_misses);
        let _ = writeln!(s, "        \"memo_hits\": {},", c.memo.hits);
        let _ = writeln!(s, "        \"memo_streak_hits\": {},", c.memo.streak_hits);
        let _ = writeln!(s, "        \"memo_fills\": {},", c.memo.fills);
        let _ = writeln!(s, "        \"naive_walks\": {},", c.memo.naive_walks);
        let _ = writeln!(s, "        \"memo_clears\": {}", c.memo.clears);
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"informational\": {{");
        let _ = writeln!(s, "        \"wall_ms\": {:.1}", c.wall_ms);
        let _ = writeln!(s, "      }}");
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"name\": \"{}\", \"informational_ns_per_op\": {:.1} }}{comma}",
            k.name, k.ns_per_op
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Pulls `(benchmark, allocator) -> naive_walks` out of a baseline file.
/// The format is our own (written by `render_json` above), so a line scan
/// is enough — no JSON parser dependency needed.
fn parse_baseline_naive_walks(text: &str) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    let (mut bench, mut alloc) = (None::<String>, None::<String>);
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"benchmark\": \"") {
            bench = rest.split('"').next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"allocator\": \"") {
            alloc = rest.split('"').next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"naive_walks\": ") {
            let n: u64 = rest
                .trim_end_matches(',')
                .parse()
                .expect("baseline naive_walks must be an integer");
            if let (Some(b), Some(a)) = (bench.take(), alloc.take()) {
                out.push((b, a, n));
            }
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = None;
    let mut check_path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            "--check" => check_path = Some(it.next().expect("--check needs a path").clone()),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench-core [--out FILE | --check FILE]");
                std::process::exit(2);
            }
        }
    }

    let cells: Vec<CellResult> = CELLS
        .iter()
        .map(|&(bench, alloc)| {
            eprintln!("running {} x {alloc} ...", bench.name());
            run_cell(bench, alloc)
        })
        .collect();
    eprintln!("running microkernels ...");
    let kernels = run_kernels();
    let json = render_json(&cells, &kernels);

    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let expected = parse_baseline_naive_walks(&baseline);
        assert!(
            !expected.is_empty(),
            "baseline {path} contains no cells — regenerate it"
        );
        let mut failed = false;
        for (bench, alloc, base_walks) in expected {
            let Some(cell) = cells
                .iter()
                .find(|c| c.benchmark == bench && c.allocator == alloc)
            else {
                eprintln!("MISSING: baseline cell {bench} x {alloc} not tracked anymore");
                failed = true;
                continue;
            };
            let walks = cell.memo.naive_walks;
            // The gate: >5% more naive-path walks than the baseline means
            // memo coverage regressed. Fewer walks is an improvement —
            // regenerate the baseline to lock it in.
            let limit = base_walks + base_walks / 20;
            let verdict = if walks > limit { "FAIL" } else { "ok" };
            eprintln!(
                "{verdict}: {bench} x {alloc}: naive_walks {walks} (baseline {base_walks}, limit {limit})"
            );
            failed |= walks > limit;
        }
        if failed {
            eprintln!("bench-core check FAILED: naive-walk regression over 5%");
            std::process::exit(1);
        }
        eprintln!("bench-core check passed");
        return;
    }

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
}
