//! Regenerates the **THP study** (paper §2.3 discussion): transparent huge
//! pages vs PTEMagnet under fresh and externally fragmented memory, plus
//! THP's sparse-touch internal-fragmentation penalty.
//!
//! Expected shape: with fresh memory THP competes with PTEMagnet (both
//! create contiguity); with fragmented memory every order-9 THP allocation
//! fails and its benefit evaporates, while PTEMagnet's order-3 reservations
//! still succeed — the paper's argument for fine-grained reservation.
//!
//! Thin wrapper over `manifests/thp.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-thp`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/thp.json"));
}
