//! Regenerates the **THP study** (paper §2.3 discussion): transparent huge
//! pages vs PTEMagnet under fresh and externally fragmented memory, plus
//! THP's sparse-touch internal-fragmentation penalty.
//!
//! Expected shape: with fresh memory THP competes with PTEMagnet (both
//! create contiguity); with fragmented memory every order-9 THP allocation
//! fails and its benefit evaporates, while PTEMagnet's order-3 reservations
//! still succeed — the paper's argument for fine-grained reservation.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-thp`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{report, thp_study};

fn main() {
    let ops = measure_ops_from_env(150_000);
    let s = thp_study(0, ops);
    print!("{}", report::format_thp(&s));
}
