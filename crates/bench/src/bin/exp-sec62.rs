//! Regenerates the **§6.2** study: incidence of non-allocated pages within
//! reservations (paper: never exceeds 0.2 % of the footprint), plus the
//! adversarial every-eighth-page pattern discussed there.
//!
//! Thin wrapper over `manifests/sec62.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment. The adversarial case is
//! part of the sec62 report.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-sec62`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/sec62.json"));
}
