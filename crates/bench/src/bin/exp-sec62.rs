//! Regenerates the **§6.2** study: incidence of non-allocated pages within
//! reservations (paper: never exceeds 0.2 % of the footprint), plus the
//! adversarial every-eighth-page pattern discussed there.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-sec62`

use ptemagnet::ReservationAllocator;
use vmsim_bench::measure_ops_from_env;
use vmsim_os::GuestOs;
use vmsim_sim::{report, sec62, DEFAULT_MEASURE_OPS};
use vmsim_types::GuestVirtPage;

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let rows = sec62(0, ops);
    print!("{}", report::format_sec62(&rows));

    // The §6.2 adversarial case: an application touching only every eighth
    // page reserves 7× its footprint.
    let mut guest = GuestOs::new(1 << 16, Box::new(ReservationAllocator::new()));
    let pid = guest.spawn();
    let va = guest.mmap(pid, 4096).expect("mmap");
    for g in 0..512u64 {
        guest
            .page_fault(pid, GuestVirtPage::new(va.page().raw() + g * 8))
            .expect("fault");
    }
    let unused = guest.allocator().reserved_unused_frames();
    println!(
        "\nAdversarial every-8th-page app: footprint 512 pages, reserved-unused {} pages ({}x)",
        unused,
        unused / 512
    );
}
