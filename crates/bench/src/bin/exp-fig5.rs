//! Regenerates **Figure 5** (§6.1): host-PT fragmentation per benchmark in
//! colocation with objdet, with and without PTEMagnet (lower is better).
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-fig5`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{fig5_fig6, report, DEFAULT_MEASURE_OPS};

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let s = fig5_fig6(0, ops);
    print!("{}", report::format_fig5(&s));
}
