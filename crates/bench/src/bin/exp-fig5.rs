//! Regenerates **Figure 5** (§6.1): host-PT fragmentation per benchmark in
//! colocation with objdet, with and without PTEMagnet (lower is better).
//!
//! Thin wrapper over `manifests/fig5.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-fig5`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/fig5.json"));
}
