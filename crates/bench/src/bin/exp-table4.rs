//! Regenerates **Table 4** (§6.3): pagerank + objdet, PTEMagnet vs the
//! default kernel, with the co-runner running throughout.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-table4`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{report, table4, DEFAULT_MEASURE_OPS};

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let t = table4(0, ops);
    print!("{}", report::format_table4(&t));
}
