//! Regenerates **Table 4** (§6.3): pagerank + objdet, PTEMagnet vs the
//! default kernel, with the co-runner running throughout.
//!
//! Thin wrapper over `manifests/table4.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-table4`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/table4.json"));
}
