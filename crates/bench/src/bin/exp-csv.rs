//! Dumps the Figure 5/6 sweep (every benchmark × {default, PTEMagnet} with
//! objdet) as CSV on stdout, for plotting outside the simulator.
//!
//! Thin wrapper over `manifests/csv.json` — edit the manifest or run it
//! through `vmsim run` to change the experiment.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-csv > fig6.csv`

fn main() {
    vmsim_bench::run_embedded_manifest(include_str!("../../../../manifests/csv.json"));
}
