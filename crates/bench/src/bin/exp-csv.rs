//! Dumps the Figure 5/6 sweep (every benchmark × {default, PTEMagnet} with
//! objdet) as CSV on stdout, for plotting outside the simulator.
//!
//! Usage: `cargo run --release -p vmsim-bench --bin exp-csv > fig6.csv`

use vmsim_bench::measure_ops_from_env;
use vmsim_sim::{fig5_fig6, report, DEFAULT_MEASURE_OPS};

fn main() {
    let ops = measure_ops_from_env(DEFAULT_MEASURE_OPS);
    let sweep = fig5_fig6(0, ops);
    let mut runs = Vec::new();
    for pair in sweep.pairs {
        runs.push(pair.default);
        runs.push(pair.ptemagnet);
    }
    print!("{}", report::runs_to_csv(&runs));
}
