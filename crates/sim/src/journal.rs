//! Crash-safe run journaling for supervised manifest execution.
//!
//! `vmsim run` appends one JSON line per completed matrix cell as it
//! finishes, keyed by a content hash of (canonical manifest JSON, cell
//! index, seed). `vmsim run --resume <journal>` replays completed cells
//! from the journal and only executes the missing ones; because the
//! journal stores each cell's [`RunMetrics`] plus its trace/series
//! artifact text verbatim, the merged output of a resumed run is
//! byte-identical to an uninterrupted one.
//!
//! File format (JSON Lines):
//!
//! ```text
//! {"journal": 2, "name": "<manifest name>", "manifest_hash": "<16 hex>"}
//! {"key": "<16 hex>", "cell": N, "attempts": N, "truncated": B,
//!  "run": {<run object, exactly as results JSON emits it>},
//!  "events": "<trace JSONL>", "series": "<epoch CSV>", "crc": "<16 hex>"}
//! ```
//!
//! A process killed mid-append leaves a partial last line; [`Journal::resume`]
//! keeps every parseable entry, drops the corrupt tail, and rewrites the
//! file so subsequent appends never extend a truncated line. Every entry
//! line carries a trailing FNV-1a checksum over its own payload (format
//! version 2): a *parseable but tampered* line — a flipped digit inside a
//! metric, say — fails the checksum and is dropped with the tail rather
//! than replayed into wrong artifact bytes. The dropped cells simply
//! re-execute, and determinism makes the merged output byte-identical to
//! an uninterrupted run either way. Only *successful* cells are journaled —
//! quarantined cells are retried on the next run. Numbers ride through the
//! shared `vmsim_obs::json` parser (f64-backed), so metric values must
//! stay below 2^53; every simulator counter does by a wide margin.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use vmsim_config::ExperimentManifest;
use vmsim_obs::json::{self, Json};
use vmsim_types::RunError;

use crate::obs::ObservedRun;
use crate::scenario::RunMetrics;

/// Journal format version (the header's `"journal"` field). Version 2
/// added the per-entry `"crc"` checksum; version-1 journals are rejected
/// on resume (their entries carry no integrity proof).
pub const JOURNAL_VERSION: u64 = 2;

/// FNV-1a 64-bit hash, the journal's content-hash primitive.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content hash identifying a manifest: FNV-1a over its canonical JSON.
/// Environment overrides are applied before hashing, so a journal cannot
/// be resumed under a different `VMSIM_OPS` without noticing.
#[must_use]
pub fn manifest_hash(manifest: &ExperimentManifest) -> u64 {
    fnv1a(manifest.to_json().as_bytes())
}

/// Journal key for one matrix cell: the manifest hash folded with the
/// cell's matrix index and base seed.
#[must_use]
pub fn cell_key(manifest_hash: u64, index: u64, seed: u64) -> u64 {
    let mut h = manifest_hash;
    for word in [index, seed] {
        for byte in word.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// One journaled cell: everything needed to replay it without re-running.
#[derive(Clone, Debug)]
pub struct JournalEntry {
    /// Attempts the cell took when it originally ran (1 = no retry).
    pub attempts: u32,
    /// Whether a budget truncated the cell's measured phase.
    pub truncated: bool,
    /// The cell's end-of-run aggregates.
    pub metrics: RunMetrics,
    /// The cell's trace artifact text (empty when tracing was off).
    pub events_jsonl: String,
    /// The cell's epoch-series CSV artifact text.
    pub series_csv: String,
}

#[derive(Debug)]
struct Sink {
    file: Option<File>,
    error: Option<String>,
}

/// An append-only run journal bound to one manifest.
///
/// `lookup` serves completed cells to the driver; `record` appends newly
/// completed ones. Appends happen from pool workers (the whole point is
/// surviving a kill mid-matrix), so the file handle sits behind a mutex;
/// I/O errors are latched and surfaced once via [`Journal::io_error`]
/// rather than failing the run.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    hash: u64,
    entries: HashMap<u64, JournalEntry>,
    sink: Mutex<Sink>,
}

impl Journal {
    /// Starts a fresh journal at `path` (truncating any previous file) for
    /// `manifest`.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ArtifactIo`] if the file cannot be created.
    pub fn create(path: &Path, manifest: &ExperimentManifest) -> Result<Journal, RunError> {
        let hash = manifest_hash(manifest);
        let mut file = File::create(path).map_err(|e| artifact(path, &e.to_string()))?;
        file.write_all(header(&manifest.name, hash).as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| artifact(path, &e.to_string()))?;
        Ok(Journal {
            path: path.to_path_buf(),
            hash,
            entries: HashMap::new(),
            sink: Mutex::new(Sink {
                file: Some(file),
                error: None,
            }),
        })
    }

    /// Reopens the journal at `path`, replaying every valid entry and
    /// dropping a corrupt tail (the signature of a `SIGKILL` mid-append).
    /// The file is rewritten without the dropped tail so later appends
    /// start on a clean line.
    ///
    /// # Errors
    ///
    /// Returns [`RunError::ArtifactIo`] if the file is unreadable, is not
    /// a journal, or was written for a different manifest (content-hash
    /// mismatch).
    pub fn resume(path: &Path, manifest: &ExperimentManifest) -> Result<Journal, RunError> {
        let hash = manifest_hash(manifest);
        let text = std::fs::read_to_string(path).map_err(|e| artifact(path, &e.to_string()))?;
        let mut lines = text.lines();
        let head = lines
            .next()
            .and_then(|line| json::parse(line).ok())
            .ok_or_else(|| artifact(path, "not a run journal (missing header line)"))?;
        if head.get("journal").and_then(Json::as_u64) != Some(JOURNAL_VERSION) {
            return Err(artifact(path, "not a run journal (bad version field)"));
        }
        let recorded = head
            .get("manifest_hash")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or_else(|| artifact(path, "not a run journal (bad manifest_hash)"))?;
        if recorded != hash {
            return Err(artifact(
                path,
                &format!(
                    "journal was written for a different manifest \
                     (hash {recorded:016x}, this manifest is {hash:016x})"
                ),
            ));
        }

        // Keep the raw text of every checksummed, parseable entry; stop at
        // the first malformed or tampered line (a killed writer's partial
        // tail, or on-disk corruption).
        let mut entries = HashMap::new();
        let mut kept = header(&manifest.name, hash);
        let mut dropped = false;
        for line in lines {
            let valid = if entry_crc_valid(line) {
                json::parse(line).ok().and_then(|doc| parse_entry(&doc))
            } else {
                None
            };
            match valid {
                Some((key, entry)) => {
                    entries.insert(key, entry);
                    kept.push_str(line);
                    kept.push('\n');
                }
                None => {
                    dropped = true;
                    break;
                }
            }
        }
        if dropped {
            eprintln!(
                "vmsim: {}: dropping corrupt journal tail (interrupted append)",
                path.display()
            );
        }
        let mut file = File::create(path).map_err(|e| artifact(path, &e.to_string()))?;
        file.write_all(kept.as_bytes())
            .and_then(|()| file.flush())
            .map_err(|e| artifact(path, &e.to_string()))?;
        Ok(Journal {
            path: path.to_path_buf(),
            hash,
            entries,
            sink: Mutex::new(Sink {
                file: Some(file),
                error: None,
            }),
        })
    }

    /// The manifest content hash this journal is bound to.
    #[must_use]
    pub fn manifest_hash(&self) -> u64 {
        self.hash
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Completed cells replayable from this journal.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.entries.len()
    }

    /// The entry for `key` (see [`cell_key`]), if the cell already ran.
    #[must_use]
    pub fn lookup(&self, key: u64) -> Option<&JournalEntry> {
        self.entries.get(&key)
    }

    /// Appends a completed cell. Called from pool workers; the first I/O
    /// error closes the sink and is reported by [`Journal::io_error`].
    pub fn record(
        &self,
        index: u64,
        workload: &str,
        policy: &str,
        seed: u64,
        attempts: u32,
        run: &ObservedRun,
    ) {
        let key = cell_key(self.hash, index, seed);
        let mut line = String::with_capacity(512);
        let _ = write!(
            line,
            "{{\"key\": \"{key:016x}\", \"cell\": {index}, \"attempts\": {attempts}, \
             \"truncated\": {}, \"run\": ",
            run.truncated
        );
        crate::driver::run_json(&mut line, workload, policy, seed, &run.metrics);
        line.push_str(", \"events\": ");
        json::write_str(&mut line, &run.events_jsonl());
        line.push_str(", \"series\": ");
        json::write_str(&mut line, &run.series.to_csv());
        // Seal the entry with a checksum over everything before the crc
        // field, so resume can tell a tampered-but-parseable line from a
        // genuine one.
        let crc = fnv1a(line.as_bytes());
        let _ = write!(line, ", \"crc\": \"{crc:016x}\"}}");
        line.push('\n');

        let mut sink = self.sink.lock().expect("journal sink poisoned");
        if sink.error.is_some() {
            return;
        }
        let result = match sink.file.as_mut() {
            Some(file) => file.write_all(line.as_bytes()).and_then(|()| file.flush()),
            None => return,
        };
        if let Err(e) = result {
            sink.error = Some(format!("{}: {e}", self.path.display()));
            sink.file = None;
        }
    }

    /// The latched append error, if any write failed during the run.
    #[must_use]
    pub fn io_error(&self) -> Option<String> {
        self.sink
            .lock()
            .expect("journal sink poisoned")
            .error
            .clone()
    }
}

fn header(name: &str, hash: u64) -> String {
    let mut out = String::from("{\"journal\": ");
    let _ = write!(out, "{JOURNAL_VERSION}, \"name\": ");
    json::write_str(&mut out, name);
    let _ = writeln!(out, ", \"manifest_hash\": \"{hash:016x}\"}}");
    out
}

/// Verifies an entry line's trailing checksum. [`Journal::record`] always
/// writes the crc field last in the fixed form `, "crc": "<16 hex>"}`, so
/// validation is a suffix strip plus an FNV-1a over the rest — no JSON
/// canonicalization needed.
fn entry_crc_valid(line: &str) -> bool {
    // `, "crc": "` + 16 hex digits + `"}` = 28 bytes.
    const TAIL: usize = 28;
    const MARKER: &str = ", \"crc\": \"";
    if line.len() < TAIL || !line.ends_with("\"}") {
        return false;
    }
    let split = line.len() - TAIL;
    if !line.is_char_boundary(split) || !line[split..].starts_with(MARKER) {
        return false;
    }
    let hex = &line[split + MARKER.len()..line.len() - 2];
    match u64::from_str_radix(hex, 16) {
        Ok(recorded) => recorded == fnv1a(&line.as_bytes()[..split]),
        Err(_) => false,
    }
}

fn artifact(path: &Path, message: &str) -> RunError {
    RunError::ArtifactIo {
        path: path.display().to_string(),
        message: message.to_string(),
    }
}

fn parse_entry(doc: &Json) -> Option<(u64, JournalEntry)> {
    let key = u64::from_str_radix(doc.get("key")?.as_str()?, 16).ok()?;
    let attempts = u32::try_from(doc.get("attempts")?.as_u64()?).ok()?;
    let truncated = doc.get("truncated")?.as_bool()?;
    let metrics = metrics_from_json(doc.get("run")?)?;
    let events_jsonl = doc.get("events")?.as_str()?.to_string();
    let series_csv = doc.get("series")?.as_str()?.to_string();
    Some((
        key,
        JournalEntry {
            attempts,
            truncated,
            metrics,
            events_jsonl,
            series_csv,
        },
    ))
}

/// Rebuilds [`RunMetrics`] from a results-JSON run object. Exact because
/// both sides of the round trip go through `vmsim_obs::json` (shortest
/// round-trip f64 formatting, `str::parse::<f64>` reading).
fn metrics_from_json(run: &Json) -> Option<RunMetrics> {
    let u = |k: &str| run.get(k).and_then(Json::as_u64);
    let f = |k: &str| run.get(k).and_then(Json::as_f64);
    Some(RunMetrics {
        benchmark: run.get("benchmark")?.as_str()?.to_string(),
        allocator: run.get("allocator")?.as_str()?.to_string(),
        measure_ops: u("measure_ops")?,
        cycles: u("cycles")?,
        tlb_lookups: u("tlb_lookups")?,
        tlb_misses: u("tlb_misses")?,
        data_accesses: u("data_accesses")?,
        data_misses: u("data_misses")?,
        page_walk_cycles: u("page_walk_cycles")?,
        host_pt_cycles: u("host_pt_cycles")?,
        guest_pt_accesses: u("guest_pt_accesses")?,
        guest_pt_memory: u("guest_pt_memory")?,
        host_pt_accesses: u("host_pt_accesses")?,
        host_pt_memory: u("host_pt_memory")?,
        host_frag: f("host_frag")?,
        guest_frag: f("guest_frag")?,
        init_cycles: u("init_cycles")?,
        footprint_pages: u("footprint_pages")?,
        reserved_unused_peak: u("reserved_unused_peak")?,
        reserved_unused_mean: f("reserved_unused_mean")?,
        total_faults: u("total_faults")?,
        reservation_fallbacks: u("reservation_fallbacks")?,
        reclaimed_frames: u("reclaimed_frames")?,
        faults_injected: u("faults_injected")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_config::builtin;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vmsim-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn smoke_cell() -> ObservedRun {
        let manifest = builtin::smoke();
        crate::driver::build_scenario(
            &manifest,
            match &manifest.experiment {
                vmsim_config::ExperimentSpec::Matrix(m) => &m.workloads[0],
                _ => unreachable!("smoke is a matrix"),
            },
            match &manifest.experiment {
                vmsim_config::ExperimentSpec::Matrix(m) => &m.policies[0],
                _ => unreachable!("smoke is a matrix"),
            },
            manifest.seeds[0],
        )
        .expect("smoke scenario")
        .try_run_observed(manifest.obs)
        .expect("smoke run")
    }

    #[test]
    fn record_then_resume_replays_the_entry_exactly() {
        let dir = scratch("roundtrip");
        let path = dir.join("j.jsonl");
        let manifest = builtin::smoke();
        let run = smoke_cell();

        let journal = Journal::create(&path, &manifest).expect("create");
        journal.record(0, "gcc", "buddy", manifest.seeds[0], 2, &run);
        assert!(journal.io_error().is_none());
        drop(journal);

        let resumed = Journal::resume(&path, &manifest).expect("resume");
        assert_eq!(resumed.completed(), 1);
        let key = cell_key(manifest_hash(&manifest), 0, manifest.seeds[0]);
        let entry = resumed.lookup(key).expect("entry present");
        assert_eq!(entry.attempts, 2);
        assert_eq!(entry.truncated, run.truncated);
        assert_eq!(entry.metrics, run.metrics);
        assert_eq!(entry.events_jsonl, run.events_jsonl());
        assert_eq!(entry.series_csv, run.series.to_csv());
    }

    #[test]
    fn corrupt_tail_is_dropped_and_file_rewritten() {
        let dir = scratch("tail");
        let path = dir.join("j.jsonl");
        let manifest = builtin::smoke();
        let run = smoke_cell();

        let journal = Journal::create(&path, &manifest).expect("create");
        journal.record(0, "gcc", "buddy", manifest.seeds[0], 1, &run);
        drop(journal);
        // Simulate a SIGKILL mid-append: a partial second entry.
        let mut text = std::fs::read_to_string(&path).expect("read");
        text.push_str("{\"key\": \"0000");
        std::fs::write(&path, &text).expect("write");

        let resumed = Journal::resume(&path, &manifest).expect("resume");
        assert_eq!(resumed.completed(), 1);
        drop(resumed);
        let rewritten = std::fs::read_to_string(&path).expect("reread");
        assert!(
            !rewritten.contains("\"0000"),
            "tail not dropped:\n{rewritten}"
        );
        assert!(rewritten.ends_with('\n'));
    }

    #[test]
    fn tampered_entry_fails_its_checksum_and_is_dropped() {
        let dir = scratch("tamper");
        let path = dir.join("j.jsonl");
        let manifest = builtin::smoke();
        let run = smoke_cell();

        let journal = Journal::create(&path, &manifest).expect("create");
        journal.record(0, "gcc", "buddy", manifest.seeds[0], 1, &run);
        drop(journal);

        // Flip one digit inside the entry's metrics: the line still parses
        // as JSON, but replaying it would emit wrong artifact bytes.
        let text = std::fs::read_to_string(&path).expect("read");
        let idx = text.find("\"cycles\": ").expect("cycles field") + "\"cycles\": ".len();
        let mut bytes = text.into_bytes();
        bytes[idx] = if bytes[idx] == b'9' { b'1' } else { b'9' };
        std::fs::write(&path, &bytes).expect("write tampered");

        let resumed = Journal::resume(&path, &manifest).expect("resume");
        assert_eq!(
            resumed.completed(),
            0,
            "a tampered entry must never be replayed"
        );
    }

    #[test]
    fn resume_rejects_a_journal_for_a_different_manifest() {
        let dir = scratch("mismatch");
        let path = dir.join("j.jsonl");
        Journal::create(&path, &builtin::smoke()).expect("create");
        let err = Journal::resume(&path, &builtin::table4(0, 1000)).expect_err("hash mismatch");
        assert_eq!(err.kind(), "artifact_io");
        assert!(err.to_string().contains("different manifest"), "{err}");
    }

    #[test]
    fn resume_rejects_a_non_journal_file() {
        let dir = scratch("notjournal");
        let path = dir.join("j.jsonl");
        std::fs::write(&path, "{\"hello\": 1}\n").expect("write");
        let err = Journal::resume(&path, &builtin::smoke()).expect_err("not a journal");
        assert_eq!(err.kind(), "artifact_io");
    }

    #[test]
    fn cell_keys_separate_cells_and_seeds() {
        let h = 0xdead_beef_u64;
        assert_ne!(cell_key(h, 0, 1), cell_key(h, 1, 0));
        assert_ne!(cell_key(h, 0, 1), cell_key(h, 0, 2));
        assert_ne!(cell_key(h, 0, 1), cell_key(h ^ 1, 0, 1));
    }
}
