//! The host-scale engine: N guest VMs colocated on one overcommitted host.
//!
//! Where [`crate::engine::Colocation`] interleaves applications *inside*
//! one VM, this engine interleaves whole VMs on one
//! [`Machine::multi_tenant`] host: every VM runs its own instance of the
//! manifest's benchmark under its own guest kernel and allocator policy,
//! and the interference under study is between VMs at the host buddy
//! allocator — the public-cloud scenario of the paper's introduction.
//!
//! The measured application is always VM 0's benchmark; the remaining VMs
//! are the noisy neighbours. On top of round-robin execution the engine
//! drives two host-level pressure sources from the [`VmsSpec`]:
//!
//! * **churn** — every `churn_period_ops` measured primary ops, the next
//!   `churn_kills` VMs in a seeded rotation (never VM 0) are killed, and
//!   every VM found dead at a tick is rebooted with a fresh guest kernel
//!   and a fresh workload, re-running its allocation phase against
//!   whatever fragmentation the fleet has built up;
//! * **ballooning** — when host free memory drops below
//!   `balloon_watermark` of the pool, the engine inflates neighbour
//!   balloons (guest frames pinned, host backing released) until the
//!   watermark is restored, and deflates them once the host is
//!   comfortably above it.
//!
//! A spec that [`VmsSpec::is_active`] rejects never reaches this engine:
//! the scenario layer routes it through the classic single-guest path, so
//! legacy manifests stay byte-identical.

use std::time::Instant;

use vmsim_config::VmsSpec;
use vmsim_os::{Machine, MachineConfig, Pid};
use vmsim_types::{FaultPlan, GuestVirtAddr, Result, RunError, PAGE_SHIFT};
use vmsim_workloads::{benchmark, BenchId, Op, Phase, Workload};

use crate::engine::GuestThreads;
use crate::obs::{ObsConfig, ObservedRun};
use crate::progress::Pulse;
use crate::scenario::{CellBudget, RunMetrics, WallBudget};

/// Guest frames moved per balloon inflate/deflate call (order-0 grabs
/// inside [`Machine::balloon_vm`], so the chunk is just a batching factor).
const BALLOON_CHUNK: u64 = 64;

/// Measured-phase scheduling chunk, matching the single-guest path so the
/// two engines pulse and sample on the same cadence.
const CHUNK_OPS: u64 = 1024;

/// Everything the scenario layer resolved before handing off: the
/// per-VM machine sizing plus the run protocol. `config.host_frames` is
/// recomputed here from the overcommit ratio.
pub(crate) struct ColoParams {
    /// The multi-tenant shape (count, overcommit, churn, balloon).
    pub spec: VmsSpec,
    /// The benchmark every VM runs (VM 0 is the measured instance).
    pub benchmark: BenchId,
    /// Registry name of the per-VM allocator policy.
    pub allocator_name: &'static str,
    /// Measured steady-state ops of VM 0's benchmark.
    pub measure_ops: u64,
    /// Base seed; VM `i` derives its workload seed from it.
    pub seed: u64,
    /// Per-VM machine sizing (`guest_frames` per VM; `host_frames` is
    /// overridden from the overcommit ratio).
    pub config: MachineConfig,
    /// Walk-memo escape hatch, as resolved by the scenario.
    pub memo: bool,
    /// Optional deterministic fault plan (installed host-wide).
    pub faults: Option<FaultPlan>,
    /// Simulated guest threads per VM's benchmark (1 = serial, the
    /// legacy shape).
    pub threads: u32,
}

/// One VM's application: the benchmark instance running inside it.
struct VmApp {
    pid: Pid,
    core: usize,
    workload: Box<dyn Workload>,
    /// Region handle -> (base, pages); see [`crate::engine`] for why a
    /// flat table.
    regions: Vec<Option<(GuestVirtAddr, u64)>>,
    cycles: u64,
    ops: u64,
    /// Simulated guest threads of this VM's benchmark; `None` = the
    /// serial legacy path, byte-identically.
    threads: Option<GuestThreads>,
}

impl VmApp {
    fn region(&self, handle: u32) -> Result<(GuestVirtAddr, u64)> {
        self.regions
            .get(handle as usize)
            .copied()
            .flatten()
            .ok_or(vmsim_types::MemError::InvalidVma)
    }
}

/// The fleet scheduler: one host machine, one app slot per VM (`None`
/// while the VM is dead between a churn kill and the next reboot tick).
struct ColoHost {
    machine: Machine,
    apps: Vec<Option<VmApp>>,
    bench: BenchId,
    seed: u64,
    /// Simulated guest threads per VM app (1 = serial).
    threads: u32,
    /// Churn rotation cursor over VMs `1..count` (VM 0 is never killed:
    /// it carries the measurement).
    victim: usize,
    /// Balloon rotation cursor over VMs `1..count`.
    squeeze: usize,
}

impl ColoHost {
    fn new(machine: Machine, bench: BenchId, seed: u64, threads: u32) -> Self {
        let count = machine.vm_count();
        let mut host = Self {
            machine,
            apps: (0..count).map(|_| None).collect(),
            bench,
            seed,
            threads: threads.max(1),
            victim: 0,
            squeeze: 0,
        };
        for vm in 0..count {
            host.spawn_app(vm);
        }
        host
    }

    /// Spawns a fresh benchmark instance inside VM `vm`. The seed mixes
    /// the VM index and the boot count, so a rebooted VM replays a new
    /// stream rather than its predecessor's.
    fn spawn_app(&mut self, vm: usize) {
        let cores = self.machine.caches().core_count();
        let pid = self.machine.vm_guest_mut(vm).spawn();
        let boot = self.machine.vm_boots(vm);
        let seed = self
            .seed
            .wrapping_add((vm as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(boot.wrapping_mul(0x2545_F491_4F6C_DD1D));
        self.apps[vm] = Some(VmApp {
            pid,
            core: vm % cores,
            workload: Box::new(benchmark(self.bench, seed)),
            regions: Vec::new(),
            cycles: 0,
            ops: 0,
            // Each instance gets its own interleaver, seeded like its
            // workload: reboots replay a fresh thread schedule.
            threads: (self.threads > 1).then(|| GuestThreads::new(self.threads, seed)),
        });
    }

    fn machine(&self) -> &Machine {
        &self.machine
    }

    fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    fn primary(&self) -> &VmApp {
        self.apps[0].as_ref().expect("VM 0 is never killed")
    }

    /// One scheduling round: every running VM's app executes one op.
    fn round(&mut self) -> Result<()> {
        for vm in 0..self.apps.len() {
            if !self.machine.vm_running(vm) {
                continue;
            }
            let Some(mut app) = self.apps[vm].take() else {
                continue;
            };
            let result = self.step(vm, &mut app);
            self.apps[vm] = Some(app);
            result?;
        }
        Ok(())
    }

    /// Executes one op of `app` inside VM `vm`.
    fn step(&mut self, vm: usize, app: &mut VmApp) -> Result<()> {
        let op = app.workload.next_op();
        app.ops += 1;
        if let Some(th) = app.threads.as_mut() {
            th.advance();
        }
        match op {
            Op::Touch {
                region,
                page_idx,
                write,
            } => {
                let (base, pages) = app.region(region)?;
                debug_assert!(page_idx < pages);
                let page = match app.threads.as_ref() {
                    Some(th) => {
                        // The host machine is shared by every VM, so the
                        // issuing thread is re-asserted before each access.
                        self.machine.set_active_thread(th.current());
                        th.stripe(page_idx, pages)
                    }
                    None => page_idx,
                };
                let va = GuestVirtAddr::new(base.raw() + (page << PAGE_SHIFT));
                let out = self.machine.touch_vm(vm, app.core, app.pid, va, write)?;
                app.cycles += out.cycles;
            }
            Op::Alloc { region, pages } => {
                // Allocation is the guest runtime's job: thread 0.
                if app.threads.is_some() {
                    self.machine.set_active_thread(0);
                }
                let base = self.machine.vm_guest_mut(vm).mmap(app.pid, pages)?;
                let slot = region as usize;
                if slot >= app.regions.len() {
                    app.regions.resize(slot + 1, None);
                }
                app.regions[slot] = Some((base, pages));
            }
            Op::Free { region } => {
                if app.threads.is_some() {
                    self.machine.set_active_thread(0);
                }
                let (base, pages) = app.region(region)?;
                app.regions[region as usize] = None;
                self.machine.munmap_vm(vm, app.pid, base.page(), pages)?;
            }
        }
        Ok(())
    }

    /// Runs rounds until VM 0's app has executed `ops` more operations,
    /// sampling after every round (mirrors `Colocation::run_ops`).
    fn run_primary_ops(&mut self, ops: u64, sample: &mut impl FnMut(&Machine)) -> Result<()> {
        let target = self.primary().ops + ops;
        while self.primary().ops < target {
            self.machine.prof_enter(vmsim_obs::Phase::Workload);
            let round = self.round();
            self.machine.prof_exit();
            round?;
            self.machine.prof_enter(vmsim_obs::Phase::Sample);
            sample(&self.machine);
            self.machine.prof_exit();
        }
        Ok(())
    }

    /// One churn tick: reboot every dead VM, then kill the next
    /// `kills` rotation victims. VM 0 is exempt on both sides.
    fn churn_tick(&mut self, kills: u32) {
        let count = self.apps.len();
        for vm in 1..count {
            if !self.machine.vm_running(vm) {
                self.machine.boot_vm(vm);
                self.spawn_app(vm);
            }
        }
        for _ in 0..kills.min(count as u32 - 1) {
            let vm = 1 + (self.seed as usize + self.victim) % (count - 1);
            self.victim += 1;
            if self.machine.vm_running(vm) {
                self.machine.kill_vm(vm);
                self.apps[vm] = None;
            }
        }
    }

    /// Balloon governor: below the low watermark, squeeze neighbours
    /// until the host is back above it; above twice the watermark, give
    /// one chunk back. Bounded to one rotation pass per call.
    fn balloon_pass(&mut self, watermark: f64) {
        let count = self.apps.len();
        if count < 2 {
            return;
        }
        let total = self.machine.config().host_frames;
        let low = (watermark * total as f64) as u64;
        let free = self.machine.host_free_frames();
        if free < low {
            for _ in 1..count {
                let vm = 1 + self.squeeze % (count - 1);
                self.squeeze += 1;
                if !self.machine.vm_running(vm) {
                    continue;
                }
                self.machine.balloon_vm(vm, BALLOON_CHUNK);
                if self.machine.host_free_frames() >= low {
                    break;
                }
            }
        } else if free > 2 * low {
            for vm in 1..count {
                if self.machine.vm_running(vm) && self.machine.vm_ballooned(vm) > 0 {
                    self.machine.deflate_vm(vm, BALLOON_CHUNK);
                    break;
                }
            }
        }
    }
}

/// Executes a multi-tenant run: the colocation counterpart of the
/// scenario's single-guest `run_inner`, producing an [`ObservedRun`] with
/// the same surfaces (metrics, snapshot, epoch series, trace, latency
/// histograms, profile).
pub(crate) fn run_colo(
    p: ColoParams,
    obs: ObsConfig,
    budget: CellBudget,
    heartbeat_ops: u64,
    on_pulse: &mut dyn FnMut(Pulse),
) -> core::result::Result<ObservedRun, RunError> {
    let spec = p.spec;
    let count = spec.count.max(1) as usize;
    let mut config = p.config;
    // The host pool is sized for the requested overcommit: at 1.0 the
    // fleet's guest RAM fits exactly; above it the VMs compete.
    config.host_frames =
        ((count as u64 * config.guest_frames) as f64 / spec.overcommit).floor() as u64;
    let name = p.allocator_name;
    let mut machine = Machine::multi_tenant(config, count, move |_| {
        ptemagnet::registry::resolve(name).expect("policy pre-validated by the driver")
    });
    machine.set_memo_enabled(p.memo);
    if obs.trace {
        machine.install_tracer(vmsim_obs::Tracer::with_capacity(obs.trace_capacity));
    }
    if let Some(plan) = p.faults {
        machine.install_faults(plan, p.seed);
    }
    if p.threads > 1 {
        machine.set_guest_threads(p.threads);
    }
    let mut host = ColoHost::new(machine, p.benchmark, p.seed, p.threads);

    // Phase A: run rounds until VM 0 finishes allocating. Neighbours
    // initialize concurrently (their faults interleave at the host buddy);
    // whoever is still initializing keeps going through phase B, which is
    // exactly the noisy-neighbour pressure under study. The balloon
    // governor already runs here: with tight overcommit the fleet may need
    // squeezing to get everyone through their allocation phase.
    let wall_limit_ms = budget.soft_wall.map_or(0, |d| d.as_millis() as u64);
    let mut wall = WallBudget::start(budget.soft_wall);
    let mut init_rounds = 0u64;
    while host.primary().workload.phase() == Phase::Init {
        host.round()?;
        init_rounds += 1;
        if init_rounds.is_multiple_of(64) {
            if let Some(watermark) = spec.balloon_watermark {
                host.balloon_pass(watermark);
            }
        }
        if wall.expired() {
            return Err(RunError::BudgetExceeded {
                budget: "wall",
                limit: wall_limit_ms,
            });
        }
    }
    let init_cycles = host.primary().cycles;

    // Fragmentation is a property of the layout built during allocation:
    // measured now, on the measured VM (Figure 5 protocol, per-VM).
    let pid = host.primary().pid;
    let host_frag = host.machine().host_pt_fragmentation_vm(0, pid)?;
    let guest_frag = host.machine().guest_pt_fragmentation_vm(0, pid)?;
    let footprint_pages = host.machine().vm_guest(0).process(pid)?.rss_pages;

    // Phase B: measured steady state of VM 0, with churn and ballooning
    // applied at chunk boundaries (deterministic: a pure function of the
    // spec and the chunk cadence).
    host.machine_mut().reset_measurement();
    if obs.profile {
        host.machine_mut()
            .install_profiler(vmsim_obs::Profiler::new());
    }
    let measured_wall = Instant::now();
    let cycles_before = host.primary().cycles;
    let mut unused_peak = 0u64;
    let mut unused_sum = 0u128;
    let mut samples = 0u64;
    let mut series = vmsim_obs::TimeSeries::new();
    let mut next_epoch = None;
    if let Some(interval) = obs.epoch_ops {
        series.push(host.machine().metrics_snapshot());
        next_epoch = Some(host.machine().ops_executed() + interval);
    }
    let mut sample = |m: &Machine| {
        let unused = m.guest().allocator().reserved_unused_frames();
        unused_peak = unused_peak.max(unused);
        unused_sum += u128::from(unused);
        samples += 1;
        if let (Some(interval), Some(next)) = (obs.epoch_ops, next_epoch.as_mut()) {
            while m.ops_executed() >= *next {
                series.push(m.metrics_snapshot());
                *next += interval;
            }
        }
    };
    let requested_ops = p.measure_ops;
    let effective_ops = budget
        .max_ops
        .map_or(requested_ops, |cap| cap.min(requested_ops));
    let mut truncated = effective_ops < requested_ops;
    let mut executed_ops = 0u64;
    let mut pulsed_at = 0u64;
    let mut next_churn = spec.churn_period_ops;
    let pulse = |host: &ColoHost, done: u64| {
        let memo = host.machine().memo_stats();
        Pulse {
            ops_done: done,
            ops_total: effective_ops,
            memo_hits: memo.hits + memo.streak_hits,
            memo_misses: memo.naive_walks,
        }
    };
    while executed_ops < effective_ops {
        if wall.expired_now() {
            truncated = true;
            break;
        }
        let chunk = CHUNK_OPS.min(effective_ops - executed_ops);
        host.run_primary_ops(chunk, &mut sample)?;
        executed_ops += chunk;
        if let Some(period) = spec.churn_period_ops {
            while next_churn.is_some_and(|at| executed_ops >= at) {
                host.churn_tick(spec.churn_kills);
                next_churn = Some(next_churn.expect("churn scheduled") + period);
            }
        }
        if let Some(watermark) = spec.balloon_watermark {
            host.balloon_pass(watermark);
        }
        if executed_ops / heartbeat_ops.max(1) > pulsed_at / heartbeat_ops.max(1) {
            pulsed_at = executed_ops;
            on_pulse(pulse(&host, executed_ops));
        }
    }
    if executed_ops > 0 && pulsed_at != executed_ops {
        on_pulse(pulse(&host, executed_ops));
    }
    if obs.epoch_ops.is_some() {
        let last_op = series.last().map(|s| s.op);
        if last_op != Some(host.machine().ops_executed()) {
            series.push(host.machine().metrics_snapshot());
        }
    }
    let profile = host
        .machine_mut()
        .take_profiler()
        .map(|prof| prof.finish(measured_wall.elapsed().as_nanos() as u64));

    let core = host.primary().core;
    let counters = *host.machine().caches().core_counters(core);
    let tlb = host.machine().tlb(core);
    let snapshot = host.machine().metrics_snapshot();
    let gauge = |name: &str| snapshot.get(name).and_then(|v| v.as_u64()).unwrap_or(0);
    let total_faults: u64 = (0..host.machine().vm_count())
        .map(|vm| host.machine().vm_guest(vm).stats().faults)
        .sum();
    let metrics = RunMetrics {
        benchmark: p.benchmark.name().to_string(),
        allocator: name.to_string(),
        measure_ops: executed_ops,
        cycles: host.primary().cycles - cycles_before,
        tlb_lookups: tlb.lookups(),
        tlb_misses: tlb.misses(),
        data_accesses: counters.data.accesses,
        data_misses: counters.data.memory,
        page_walk_cycles: counters.page_walk_cycles(),
        host_pt_cycles: counters.host_pt_cycles(),
        guest_pt_accesses: counters.guest_pt.accesses,
        guest_pt_memory: counters.guest_pt_memory_accesses(),
        host_pt_accesses: counters.host_pt.accesses,
        host_pt_memory: counters.host_pt_memory_accesses(),
        host_frag: host_frag.mean(),
        guest_frag: guest_frag.mean(),
        init_cycles,
        footprint_pages,
        reserved_unused_peak: unused_peak,
        reserved_unused_mean: if samples == 0 {
            0.0
        } else {
            (unused_sum / u128::from(samples)) as f64
        },
        total_faults,
        reservation_fallbacks: gauge("reservation.fallbacks"),
        reclaimed_frames: gauge("reservation.reclaimed_frames"),
        faults_injected: gauge("faults.injected"),
    };

    let walk_latency = host.machine().merged_walk_latency();
    let fault_latency = host.machine().merged_fault_latency();
    let (events, trace_dropped) = match host.machine_mut().take_tracer() {
        Some(mut tracer) => {
            let dropped = tracer.dropped();
            (tracer.drain(), dropped)
        }
        None => (Vec::new(), 0),
    };
    Ok(ObservedRun {
        metrics,
        snapshot,
        series,
        events,
        trace_dropped,
        walk_latency,
        fault_latency,
        profile,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use vmsim_config::VmsSpec;
    use vmsim_obs::json;
    use vmsim_os::MachineConfig;
    use vmsim_workloads::BenchId;

    use crate::obs::ObsConfig;
    use crate::scenario::Scenario;

    /// A small fleet that runs in well under a second.
    fn fleet(spec: VmsSpec) -> Scenario {
        Scenario::new(BenchId::Gcc)
            .machine(MachineConfig::paper(2, 48))
            .measure_ops(4_000)
            .vms(spec)
    }

    #[test]
    fn inactive_spec_routes_through_the_single_guest_engine() {
        let plain = Scenario::new(BenchId::Gcc)
            .machine(MachineConfig::paper(2, 256))
            .measure_ops(4_000)
            .run_observed(ObsConfig::enabled(1_000));
        let tenant = Scenario::new(BenchId::Gcc)
            .machine(MachineConfig::paper(2, 256))
            .measure_ops(4_000)
            .vms(VmsSpec::default())
            .run_observed(ObsConfig::enabled(1_000));
        assert_eq!(tenant.metrics, plain.metrics);
        assert_eq!(tenant.snapshot, plain.snapshot);
        assert_eq!(tenant.series.to_csv(), plain.series.to_csv());
    }

    #[test]
    fn fleet_runs_and_reports_host_gauges() {
        let run = fleet(VmsSpec {
            count: 3,
            overcommit: 1.2,
            churn_period_ops: None,
            churn_kills: 1,
            balloon_watermark: None,
        })
        .run_observed(ObsConfig::enabled(1_000));
        assert_eq!(run.metrics.benchmark, "gcc");
        assert!(run.metrics.cycles > 0);
        assert!(run.metrics.footprint_pages >= 6_144);
        // Every VM initialized, so the fleet faulted at least 3x the
        // measured VM's footprint.
        assert!(run.metrics.total_faults >= 3 * 6_144);
        let host_free = run
            .snapshot
            .get("host.vms_running")
            .and_then(|v| v.as_u64());
        assert_eq!(host_free, Some(3));
        assert!(run.series.len() >= 2);
    }

    #[test]
    fn churn_kills_and_reboots_neighbours_not_the_primary() {
        let mut obs = ObsConfig::enabled(1_000);
        obs.trace = true;
        let run = fleet(VmsSpec {
            count: 3,
            overcommit: 1.2,
            churn_period_ops: Some(1_024),
            churn_kills: 1,
            balloon_watermark: None,
        })
        .run_observed(obs);
        let jsonl = run.events_jsonl();
        let kills = jsonl.lines().filter(|l| l.contains("vm_kill")).count();
        let boots = jsonl.lines().filter(|l| l.contains("vm_boot")).count();
        assert!(kills >= 2, "churn ticked: {kills} kills");
        assert!(boots >= 1, "dead VMs reboot: {boots} boots");
        for line in jsonl.lines().filter(|l| l.contains("vm_kill")) {
            let doc = json::parse(line).expect("event parses");
            assert_ne!(
                doc.get("vm").and_then(json::Json::as_u64),
                Some(0),
                "VM 0 is never killed"
            );
        }
        assert!(run.metrics.cycles > 0);
    }

    #[test]
    fn balloon_governor_fires_under_host_pressure() {
        // 3 VMs of 48 MB whose resident fleet footprint leaves the host
        // below the watermark: the governor must start squeezing the
        // neighbours (pinning their free guest frames) while VM 0 keeps
        // running.
        let run = fleet(VmsSpec {
            count: 3,
            overcommit: 1.8,
            churn_period_ops: None,
            churn_kills: 1,
            balloon_watermark: Some(0.12),
        })
        .try_run_observed(ObsConfig::enabled(1_000))
        .expect("pressured fleet still completes");
        let ballooned: u64 = (1..3)
            .filter_map(|vm| {
                run.snapshot
                    .get(&format!("vm.{vm}.ballooned_frames"))
                    .and_then(|v| v.as_u64())
            })
            .sum();
        assert!(ballooned > 0, "the governor inflated neighbour balloons");
        assert!(run.metrics.cycles > 0);
    }
}
