//! The perf trajectory: `vmsim perf`, the CI-tracked performance history
//! of the translation core.
//!
//! This module absorbs the `bench-core` measurement logic (the binary is
//! now a thin wrapper over it): four pinned scenario cells — gcc and mcf
//! under the default and ptemagnet allocators, fig6 protocol with an
//! objdet co-runner — plus four wall-clock microkernels. Each cell
//! reports two ledgers:
//!
//! * **deterministic** — cost-model counters (cycles, TLB traffic, memo
//!   coverage) and the phase profiler's cycle attribution: identical on
//!   every machine. Regressions in these are gated.
//! * **informational** — wall-clock numbers (cell milliseconds, kernel
//!   ns/op, profiler wall attribution): machine-dependent, recorded for
//!   trend-watching, never gated.
//!
//! `vmsim perf` appends one stamped entry to `BENCH_trajectory.json` (a
//! growing, checked-in history; one entry per line inside the `entries`
//! array). `vmsim perf --check` diffs the newest entry against the one
//! before it and exits 1 when a gated counter (`cycles`, `tlb_misses`,
//! `naive_walks` — all higher-is-worse) grew by more than 5% in any cell.
//! A malformed trajectory file is exit 2, like any other invalid input.

use std::fmt::Write as _;

use std::process::ExitCode;
use std::time::Instant;

use vmsim_obs::{json, Phase, PhaseProfile, Profiler};
use vmsim_os::{Machine, MachineConfig, MemoStats};
use vmsim_types::{GuestVirtAddr, PAGE_SIZE};
use vmsim_workloads::{benchmark, corunner, BenchId, CoId};

use crate::engine::Colocation;

/// Measured steady-state ops per cell. Deliberately small: an entry must
/// regenerate in seconds, and the deterministic counters are exact at any
/// scale.
pub const CELL_OPS: u64 = 20_000;

/// Schema tag of the trajectory file.
pub const TRAJECTORY_SCHEMA: &str = "bench-trajectory-v1";

/// Default trajectory path (checked in at the repo root).
pub const TRAJECTORY_PATH: &str = "BENCH_trajectory.json";

/// The tracked cells: the fig6 protocol (objdet co-runner at weight 4) for
/// one low-TLB-pressure benchmark (gcc) and one walk-heavy one (mcf),
/// under both allocators.
const CELLS: [(BenchId, &str); 4] = [
    (BenchId::Gcc, "default"),
    (BenchId::Gcc, "ptemagnet"),
    (BenchId::Mcf, "default"),
    (BenchId::Mcf, "ptemagnet"),
];

/// Deterministic counters gated by `--check`; all are higher-is-worse.
const GATED: [&str; 3] = ["cycles", "tlb_misses", "naive_walks"];

/// One measured trajectory cell.
pub struct PerfCell {
    /// Benchmark name.
    pub benchmark: &'static str,
    /// Allocator name.
    pub allocator: &'static str,
    /// Measured-phase cycles of the primary app.
    pub cycles: u64,
    /// TLB lookups on the primary core over the measured phase.
    pub tlb_lookups: u64,
    /// TLB misses on the primary core over the measured phase.
    pub tlb_misses: u64,
    /// Memo-layer counter deltas over the measured phase.
    pub memo: MemoStats,
    /// Wall-clock milliseconds the measured phase took (informational).
    pub wall_ms: f64,
    /// Phase-attributed self-profile of the measured phase.
    pub profile: PhaseProfile,
}

/// One wall-clock microkernel result (informational).
pub struct Kernel {
    /// Kernel name (matches the Criterion benches in `benches/harness.rs`).
    pub name: &'static str,
    /// Median nanoseconds per operation over three samples.
    pub ns_per_op: f64,
}

fn run_cell(bench: BenchId, alloc: &'static str) -> PerfCell {
    let allocator = ptemagnet::registry::resolve(alloc).expect("tracked allocators are registered");
    let mut machine = Machine::with_allocator(MachineConfig::paper(2, 1024), allocator);
    machine.set_memo_enabled(vmsim_config::env::memo_enabled_or_default());
    let mut colo = Colocation::new(machine);
    let primary = colo.add_app(Box::new(benchmark(bench, 0)), 1);
    // Seed matches the scenario layer: seed.wrapping_mul(31).wrapping_add(1).
    colo.add_app(corunner(CoId::Objdet, 1), 4);
    colo.run_until_steady(primary).expect("init");
    colo.machine_mut().reset_measurement();
    colo.machine_mut().install_profiler(Profiler::new());
    let memo_before = colo.machine().memo_stats();
    let cycles_before = colo.cycles(primary);
    let start = Instant::now();
    colo.run_ops(primary, CELL_OPS, |_| {})
        .expect("measured phase");
    let wall = start.elapsed();
    let profile = colo
        .machine_mut()
        .take_profiler()
        .expect("profiler installed above")
        .finish(wall.as_nanos() as u64);
    let memo_after = colo.machine().memo_stats();
    let core = colo.core(primary);
    let tlb = colo.machine().tlb(core);
    PerfCell {
        benchmark: bench.name(),
        allocator: alloc,
        cycles: colo.cycles(primary) - cycles_before,
        tlb_lookups: tlb.lookups(),
        tlb_misses: tlb.misses(),
        memo: MemoStats {
            hits: memo_after.hits - memo_before.hits,
            streak_hits: memo_after.streak_hits - memo_before.streak_hits,
            fills: memo_after.fills - memo_before.fills,
            naive_walks: memo_after.naive_walks - memo_before.naive_walks,
            clears: memo_after.clears - memo_before.clears,
        },
        wall_ms: wall.as_secs_f64() * 1e3,
        profile,
    }
}

/// Runs the four tracked cells, reporting progress on stderr.
pub fn run_cells() -> Vec<PerfCell> {
    CELLS
        .iter()
        .map(|&(bench, alloc)| {
            eprintln!("running {} x {alloc} ...", bench.name());
            run_cell(bench, alloc)
        })
        .collect()
}

/// Median nanoseconds per op of `op` over `iters` calls, sampled three
/// times (the same shape as the Criterion benches in `benches/harness.rs`,
/// scaled down so an entry regenerates in seconds).
fn median_ns_per_op(iters: u64, mut op: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                op();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[1]
}

/// The microkernels: the three mirroring the `harness.rs` Criterion
/// benches (cold full walks, memo-hit replays, a batched VMA run) plus a
/// round-robin touch over an 8-VM multi-tenant host.
pub fn run_kernels() -> Vec<Kernel> {
    let pages = 4096u64;
    let mut out = Vec::new();

    // full_walk_cold: stride far beyond TLB and memo reach, memo disabled.
    let mut m = Machine::new(MachineConfig::paper(1, 1024));
    m.set_memo_enabled(false);
    let pid = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, pages).expect("mmap");
    for i in 0..pages {
        m.touch(0, pid, GuestVirtAddr::new(base.raw() + i * PAGE_SIZE), true)
            .expect("prefault");
    }
    let mut i = 0u64;
    out.push(Kernel {
        name: "full_walk_cold",
        ns_per_op: median_ns_per_op(20_000, || {
            // Large prime stride defeats TLB and cache locality.
            i = (i + 257) % pages;
            m.touch(
                0,
                pid,
                GuestVirtAddr::new(base.raw() + i * PAGE_SIZE),
                false,
            )
            .expect("touch");
        }),
    });

    // full_walk_memo_hit: one warm page replayed from its memo slot.
    let mut m = Machine::new(MachineConfig::paper(1, 1024));
    let pid = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, 8).expect("mmap");
    m.touch(0, pid, base, true).expect("warm");
    m.touch(0, pid, base, false).expect("fill memo");
    out.push(Kernel {
        name: "full_walk_memo_hit",
        ns_per_op: median_ns_per_op(200_000, || {
            m.touch(0, pid, base, false).expect("replay");
        }),
    });

    // multi_vm_round: one warm touch per VM, round-robin across an 8-VM
    // host — the per-op cost of the multi-tenant dispatch path (composed
    // ASIDs, per-VM hvpn rebasing, shared host structures).
    let vm_count = 8usize;
    let mut config = MachineConfig::paper(1, 16);
    config.host_frames = vm_count as u64 * config.guest_frames;
    let mut m = Machine::multi_tenant(config, vm_count, |_| {
        ptemagnet::registry::resolve("default").expect("default allocator is registered")
    });
    let mut slots = Vec::with_capacity(vm_count);
    for vm in 0..vm_count {
        let pid = m.vm_guest_mut(vm).spawn();
        let base = m.vm_guest_mut(vm).mmap(pid, 64).expect("mmap");
        for p in 0..64u64 {
            m.touch_vm(
                vm,
                0,
                pid,
                GuestVirtAddr::new(base.raw() + p * PAGE_SIZE),
                true,
            )
            .expect("prefault");
        }
        slots.push((pid, base));
    }
    let mut i = 0u64;
    out.push(Kernel {
        name: "multi_vm_round",
        ns_per_op: median_ns_per_op(20_000, || {
            let vm = (i % vm_count as u64) as usize;
            let (pid, base) = slots[vm];
            let page = (i / vm_count as u64 * 7) % 64;
            m.touch_vm(
                vm,
                0,
                pid,
                GuestVirtAddr::new(base.raw() + page * PAGE_SIZE),
                false,
            )
            .expect("touch");
            i += 1;
        }),
    });

    // batched_vma_run: 128 pages x 4 touches each through touch_run.
    let mut m = Machine::new(MachineConfig::paper(1, 1024));
    let pid = m.guest_mut().spawn();
    let base = m.guest_mut().mmap(pid, 128).expect("mmap");
    let run: Vec<(GuestVirtAddr, bool)> = (0..128u64)
        .flat_map(|p| {
            let va = GuestVirtAddr::new(base.raw() + p * PAGE_SIZE);
            [(va, true), (va, false), (va, false), (va, false)]
        })
        .collect();
    m.touch_run(0, pid, &run).expect("warm run");
    out.push(Kernel {
        name: "batched_vma_run",
        ns_per_op: median_ns_per_op(500, || {
            m.touch_run(0, pid, &run).expect("run");
        }),
    });

    // part_concurrent: raw take-or-install/release throughput of the
    // lock-free PaRT under real OS threads, at 1/4/8 simulated faulting
    // threads. `shared` variants contend on one leaf's words (every
    // thread cycles the same 64 groups, each owning its own page offset);
    // `disjoint` variants give each thread its own leaf, the
    // never-contend case the fine-grained design promises scales.
    for &threads in &[1usize, 4, 8] {
        for &(label, contended) in &[("disjoint", false), ("shared", true)] {
            out.push(Kernel {
                name: part_kernel_name(threads, label),
                ns_per_op: part_concurrent_ns(threads, contended),
            });
        }
    }

    out
}

/// Static kernel name for a `part_concurrent` variant.
fn part_kernel_name(threads: usize, label: &str) -> &'static str {
    match (threads, label) {
        (1, "disjoint") => "part_concurrent_disjoint_t1",
        (1, "shared") => "part_concurrent_shared_t1",
        (4, "disjoint") => "part_concurrent_disjoint_t4",
        (4, "shared") => "part_concurrent_shared_t4",
        (8, "disjoint") => "part_concurrent_disjoint_t8",
        (8, "shared") => "part_concurrent_shared_t8",
        _ => unreachable!("fixed kernel grid"),
    }
}

/// Median ns per PaRT operation (a take-or-install/release pair) with
/// `threads` OS threads hammering one shared tree. Contended runs route
/// every thread through the same 64 groups — same leaf words, distinct
/// page offsets, so the CAS loops race without ever violating the
/// one-fault-per-mapped-page contract; disjoint runs separate threads by
/// whole leaves.
fn part_concurrent_ns(threads: usize, contended: bool) -> f64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use vmsim_types::{GuestFrame, GROUP_PAGES};

    const OPS_PER_THREAD: u64 = 30_000;
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let part = Arc::new(ptemagnet::PaRt::new());
            let next_chunk = Arc::new(AtomicU64::new(0));
            let start = Instant::now();
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let part = Arc::clone(&part);
                    let next_chunk = Arc::clone(&next_chunk);
                    std::thread::spawn(move || {
                        // Each thread owns page offset `t` of whichever
                        // group it visits: grants never collide on a live
                        // page, while shared-mode leaf words are contended.
                        let offset = t as u64 % GROUP_PAGES;
                        for i in 0..OPS_PER_THREAD {
                            let group = if contended {
                                i % 64
                            } else {
                                (t as u64) << 10 | (i % 64)
                            };
                            part.take_or_install(group, offset, || {
                                Some(GuestFrame::new(
                                    next_chunk.fetch_add(GROUP_PAGES, Ordering::Relaxed),
                                ))
                            });
                            part.release(group, offset);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("kernel thread");
            }
            let total_ops = threads as u64 * OPS_PER_THREAD;
            start.elapsed().as_secs_f64() * 1e9 / total_ops as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[1]
}

/// Renders the classic `BENCH_core.json` baseline (schema `bench-core-v1`)
/// — byte-compatible with what the standalone `bench-core` binary wrote.
#[must_use]
pub fn baseline_json(cells: &[PerfCell], kernels: &[Kernel]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"schema\": \"bench-core-v1\",");
    let _ = writeln!(s, "  \"measure_ops\": {CELL_OPS},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        let _ = writeln!(s, "    {{");
        let _ = writeln!(s, "      \"benchmark\": \"{}\",", c.benchmark);
        let _ = writeln!(s, "      \"allocator\": \"{}\",", c.allocator);
        let _ = writeln!(s, "      \"deterministic\": {{");
        let _ = writeln!(s, "        \"cycles\": {},", c.cycles);
        let _ = writeln!(s, "        \"tlb_lookups\": {},", c.tlb_lookups);
        let _ = writeln!(s, "        \"tlb_misses\": {},", c.tlb_misses);
        let _ = writeln!(s, "        \"memo_hits\": {},", c.memo.hits);
        let _ = writeln!(s, "        \"memo_streak_hits\": {},", c.memo.streak_hits);
        let _ = writeln!(s, "        \"memo_fills\": {},", c.memo.fills);
        let _ = writeln!(s, "        \"naive_walks\": {},", c.memo.naive_walks);
        let _ = writeln!(s, "        \"memo_clears\": {}", c.memo.clears);
        let _ = writeln!(s, "      }},");
        let _ = writeln!(s, "      \"informational\": {{");
        let _ = writeln!(s, "        \"wall_ms\": {:.1}", c.wall_ms);
        let _ = writeln!(s, "      }}");
        let _ = writeln!(s, "    }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        let comma = if i + 1 < kernels.len() { "," } else { "" };
        let _ = writeln!(
            s,
            "    {{ \"name\": \"{}\", \"informational_ns_per_op\": {:.1} }}{comma}",
            k.name, k.ns_per_op
        );
    }
    let _ = writeln!(s, "  ]");
    let _ = writeln!(s, "}}");
    s
}

/// Checks freshly measured cells against a `bench-core-v1` baseline file's
/// `naive_walks` counters (the >5% memo-coverage gate the standalone
/// `bench-core --check` applies). Returns the failure count.
#[must_use]
pub fn check_baseline(cells: &[PerfCell], baseline_text: &str) -> u32 {
    let mut expected = Vec::new();
    let (mut bench, mut alloc) = (None::<String>, None::<String>);
    for line in baseline_text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"benchmark\": \"") {
            bench = rest.split('"').next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"allocator\": \"") {
            alloc = rest.split('"').next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"naive_walks\": ") {
            let n: u64 = rest
                .trim_end_matches(',')
                .parse()
                .expect("baseline naive_walks must be an integer");
            if let (Some(b), Some(a)) = (bench.take(), alloc.take()) {
                expected.push((b, a, n));
            }
        }
    }
    assert!(
        !expected.is_empty(),
        "baseline contains no cells — regenerate it"
    );
    let mut failed = 0u32;
    for (bench, alloc, base_walks) in expected {
        let Some(cell) = cells
            .iter()
            .find(|c| c.benchmark == bench && c.allocator == alloc)
        else {
            eprintln!("MISSING: baseline cell {bench} x {alloc} not tracked anymore");
            failed += 1;
            continue;
        };
        let walks = cell.memo.naive_walks;
        // The gate: >5% more naive-path walks than the baseline means memo
        // coverage regressed. Fewer walks is an improvement — regenerate
        // the baseline to lock it in.
        let limit = base_walks + base_walks / 20;
        let verdict = if walks > limit { "FAIL" } else { "ok" };
        eprintln!(
            "{verdict}: {bench} x {alloc}: naive_walks {walks} (baseline {base_walks}, limit {limit})"
        );
        failed += u32::from(walks > limit);
    }
    failed
}

/// Renders one trajectory entry as a single JSON line (no trailing
/// newline). `stamp` is seconds since the Unix epoch.
#[must_use]
pub fn entry_json(cells: &[PerfCell], kernels: &[Kernel], stamp: u64) -> String {
    let mut s = String::with_capacity(1024);
    let _ = write!(
        s,
        "{{\"stamp\": {stamp}, \"measure_ops\": {CELL_OPS}, \"cells\": ["
    );
    for (i, c) in cells.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"benchmark\": \"{}\", \"allocator\": \"{}\", \"deterministic\": {{\
             \"cycles\": {}, \"tlb_lookups\": {}, \"tlb_misses\": {}, \"memo_hits\": {}, \
             \"memo_streak_hits\": {}, \"memo_fills\": {}, \"naive_walks\": {}, \
             \"memo_clears\": {}}}, \"informational\": {{\"wall_ms\": {:.1}}}, \
             \"profile_cycles\": {{",
            c.benchmark,
            c.allocator,
            c.cycles,
            c.tlb_lookups,
            c.tlb_misses,
            c.memo.hits,
            c.memo.streak_hits,
            c.memo.fills,
            c.memo.naive_walks,
            c.memo.clears,
            c.wall_ms,
        );
        let mut first = true;
        for phase in Phase::ALL {
            let totals = c.profile.get(phase);
            if totals.cycles == 0 {
                continue;
            }
            if !first {
                s.push_str(", ");
            }
            first = false;
            let _ = write!(s, "\"{}\": {}", phase.name(), totals.cycles);
        }
        s.push_str("}, \"profile_attributed\": ");
        json::write_f64(&mut s, round4(c.profile.attributed_fraction()));
        s.push('}');
    }
    s.push_str("], \"kernels\": [");
    for (i, k) in kernels.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"name\": \"{}\", \"informational_ns_per_op\": {:.1}}}",
            k.name, k.ns_per_op
        );
    }
    s.push_str("]}");
    s
}

fn round4(v: f64) -> f64 {
    (v * 1e4).round() / 1e4
}

/// Reads a trajectory file and returns its entry lines (verbatim, one
/// JSON object each).
///
/// # Errors
///
/// Returns a diagnostic when the file does not parse, carries the wrong
/// schema, or its entries are not one-per-line objects — any of which
/// means the checked-in history was corrupted and needs human attention.
pub fn read_trajectory(text: &str) -> Result<Vec<String>, String> {
    let doc = json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(TRAJECTORY_SCHEMA) => {}
        Some(other) => return Err(format!("schema {other:?}, expected {TRAJECTORY_SCHEMA:?}")),
        None => return Err("missing schema field".to_string()),
    }
    let count = doc
        .get("entries")
        .and_then(|e| e.as_arr())
        .ok_or("missing entries array")?
        .len();
    // Entries are one per line by construction; recover the verbatim lines
    // so appending preserves history byte-for-byte.
    let mut lines = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim().trim_end_matches(',');
        if trimmed.starts_with("{\"stamp\"") {
            json::parse(trimmed).map_err(|e| format!("entry line does not parse: {e:?}"))?;
            lines.push(trimmed.to_string());
        }
    }
    if lines.len() != count {
        return Err(format!(
            "found {} entry lines but the entries array holds {count} \
             (entries must be one per line)",
            lines.len()
        ));
    }
    Ok(lines)
}

/// Renders a whole trajectory file from entry lines.
#[must_use]
pub fn render_trajectory(entries: &[String]) -> String {
    let mut s = String::with_capacity(256 + entries.iter().map(String::len).sum::<usize>());
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"{TRAJECTORY_SCHEMA}\",");
    s.push_str("  \"entries\": [\n");
    for (i, entry) in entries.iter().enumerate() {
        let comma = if i + 1 < entries.len() { "," } else { "" };
        let _ = writeln!(s, "    {entry}{comma}");
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compares the two newest entries: any gated deterministic counter
/// (`cycles`, `tlb_misses`, `naive_walks`) growing by more than 5% in any
/// cell is a regression. Returns the regression count.
///
/// # Errors
///
/// Returns a diagnostic when the trajectory has fewer than two entries or
/// an entry is structurally unusable.
pub fn check_entries(entries: &[String]) -> Result<u32, String> {
    if entries.len() < 2 {
        return Err(format!(
            "need at least two entries to compare, found {} — run `vmsim perf` first",
            entries.len()
        ));
    }
    let prev = json::parse(&entries[entries.len() - 2]).map_err(|e| format!("{e:?}"))?;
    let newest = json::parse(&entries[entries.len() - 1]).map_err(|e| format!("{e:?}"))?;
    let cells_of = |doc: &json::Json| -> Result<Vec<json::Json>, String> {
        Ok(doc
            .get("cells")
            .and_then(|c| c.as_arr())
            .ok_or("entry has no cells array")?
            .to_vec())
    };
    let prev_cells = cells_of(&prev)?;
    let new_cells = cells_of(&newest)?;
    let ident = |cell: &json::Json| -> (String, String) {
        (
            cell.get("benchmark")
                .and_then(|b| b.as_str())
                .unwrap_or_default()
                .to_string(),
            cell.get("allocator")
                .and_then(|a| a.as_str())
                .unwrap_or_default()
                .to_string(),
        )
    };
    let mut failed = 0u32;
    for old in &prev_cells {
        let (bench, alloc) = ident(old);
        let Some(new) = new_cells
            .iter()
            .find(|c| ident(c) == (bench.clone(), alloc.clone()))
        else {
            eprintln!("MISSING: cell {bench} x {alloc} absent from the newest entry");
            failed += 1;
            continue;
        };
        for counter in GATED {
            let value = |cell: &json::Json| {
                cell.get("deterministic")
                    .and_then(|d| d.get(counter))
                    .and_then(json::Json::as_u64)
            };
            let (Some(base), Some(now)) = (value(old), value(new)) else {
                eprintln!("MISSING: {bench} x {alloc}: counter {counter} absent");
                failed += 1;
                continue;
            };
            let limit = base + base / 20;
            let verdict = if now > limit { "FAIL" } else { "ok" };
            eprintln!(
                "{verdict}: {bench} x {alloc}: {counter} {now} (previous {base}, limit {limit})"
            );
            failed += u32::from(now > limit);
        }
    }
    Ok(failed)
}

const PERF_USAGE: &str = "usage:
  vmsim perf [--out FILE]        run the tracked cells, append a trajectory entry
  vmsim perf --check [--out FILE]  compare the two newest entries (no run)
  vmsim perf --baseline FILE     run the tracked cells, write a bench-core-v1 baseline";

/// The `vmsim perf` subcommand.
#[must_use]
pub fn cmd_perf(args: &[String]) -> ExitCode {
    let mut check = false;
    let mut out: Option<String> = None;
    let mut baseline: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => match it.next() {
                Some(path) => out = Some(path.clone()),
                None => {
                    eprintln!("vmsim perf: --out needs a file\n{PERF_USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--baseline" => match it.next() {
                Some(path) => baseline = Some(path.clone()),
                None => {
                    eprintln!("vmsim perf: --baseline needs a file\n{PERF_USAGE}");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("vmsim perf: unknown argument: {other}\n{PERF_USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    if check && baseline.is_some() {
        eprintln!("vmsim perf: --check and --baseline are mutually exclusive\n{PERF_USAGE}");
        return ExitCode::from(2);
    }
    let path = out.unwrap_or_else(|| TRAJECTORY_PATH.to_string());

    if check {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("vmsim perf: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        };
        let entries = match read_trajectory(&text) {
            Ok(entries) => entries,
            Err(msg) => {
                eprintln!("vmsim perf: {path}: {msg}");
                return ExitCode::from(2);
            }
        };
        return match check_entries(&entries) {
            Ok(0) => {
                eprintln!("vmsim perf check passed");
                ExitCode::SUCCESS
            }
            Ok(n) => {
                eprintln!("vmsim perf check FAILED: {n} gated counter(s) regressed over 5%");
                ExitCode::FAILURE
            }
            Err(msg) => {
                eprintln!("vmsim perf: {path}: {msg}");
                ExitCode::from(2)
            }
        };
    }

    let cells = run_cells();
    eprintln!("running microkernels ...");
    let kernels = run_kernels();
    for c in &cells {
        eprintln!(
            "{} x {}: {} cycles, {} naive walks, {:.1} ms \
             ({:.1}% wall attributed)",
            c.benchmark,
            c.allocator,
            c.cycles,
            c.memo.naive_walks,
            c.wall_ms,
            c.profile.attributed_fraction() * 100.0
        );
    }

    if let Some(path) = baseline {
        let json = baseline_json(&cells, &kernels);
        return match std::fs::write(&path, &json) {
            Ok(()) => {
                eprintln!("wrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("vmsim perf: cannot write {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // Append to the trajectory. A missing file starts a fresh history; a
    // malformed one is an error (never silently overwrite the record).
    let mut entries = match std::fs::read_to_string(&path) {
        Ok(text) => match read_trajectory(&text) {
            Ok(entries) => entries,
            Err(msg) => {
                eprintln!("vmsim perf: {path}: {msg}");
                return ExitCode::from(2);
            }
        },
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => {
            eprintln!("vmsim perf: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    entries.push(entry_json(&cells, &kernels, stamp));
    match std::fs::write(&path, render_trajectory(&entries)) {
        Ok(()) => {
            eprintln!("appended entry {} to {path}", entries.len() - 1);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("vmsim perf: cannot write {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fake_cell(benchmark: &'static str, allocator: &'static str, cycles: u64) -> PerfCell {
        let mut prof = Profiler::new();
        prof.add_cycles(Phase::MemoProbe, cycles / 2);
        prof.add_cycles(Phase::GuestWalk, cycles - cycles / 2);
        PerfCell {
            benchmark,
            allocator,
            cycles,
            tlb_lookups: 20_000,
            tlb_misses: 1_000,
            memo: MemoStats {
                hits: 17_000,
                streak_hits: 5,
                fills: 80_000,
                naive_walks: 80_000,
                clears: 0,
            },
            wall_ms: 50.0,
            profile: prof.finish(1_000_000),
        }
    }

    fn fake_entry(cycles: u64, stamp: u64) -> String {
        let cells = [
            fake_cell("gcc", "default", cycles),
            fake_cell("mcf", "default", 2_000),
        ];
        let kernels = [Kernel {
            name: "full_walk_cold",
            ns_per_op: 300.0,
        }];
        entry_json(&cells, &kernels, stamp)
    }

    #[test]
    fn entry_round_trips_through_the_trajectory_renderer() {
        let entries = vec![fake_entry(1000, 1), fake_entry(1010, 2)];
        let text = render_trajectory(&entries);
        let doc = json::parse(&text).expect("trajectory parses");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some(TRAJECTORY_SCHEMA)
        );
        let recovered = read_trajectory(&text).expect("entries recovered");
        assert_eq!(recovered, entries, "byte-for-byte entry preservation");
        let entry = json::parse(&entries[0]).expect("entry parses");
        assert_eq!(
            entry.get("cells").and_then(|c| c.as_arr()).map(<[_]>::len),
            Some(2)
        );
        let cell = &entry.get("cells").unwrap().as_arr().unwrap()[0];
        assert_eq!(
            cell.get("profile_cycles")
                .and_then(|p| p.get("memo_probe"))
                .and_then(json::Json::as_u64),
            Some(500)
        );
    }

    #[test]
    fn check_passes_within_five_percent_and_fails_beyond() {
        // 1000 -> 1050 is exactly the limit (ok); 1000 -> 1051 regresses.
        let ok = vec![fake_entry(1000, 1), fake_entry(1050, 2)];
        assert_eq!(check_entries(&ok).expect("comparable"), 0);
        let bad = vec![fake_entry(1000, 1), fake_entry(1051, 2)];
        assert_eq!(check_entries(&bad).expect("comparable"), 1, "gcc cell only");
        let single = vec![fake_entry(1000, 1)];
        assert!(check_entries(&single).is_err(), "one entry is not a trend");
    }

    #[test]
    fn malformed_trajectories_are_rejected_with_diagnostics() {
        assert!(read_trajectory("not json at all").is_err());
        assert!(read_trajectory("{\"schema\": \"other\", \"entries\": []}").is_err());
        assert!(read_trajectory("{\"entries\": []}").is_err());
        // Parseable but entries not one-per-line: the count cross-check
        // catches it.
        let squashed = format!(
            "{{\"schema\": \"{TRAJECTORY_SCHEMA}\", \"entries\": [{}]}}",
            fake_entry(1000, 1)
        );
        assert!(read_trajectory(&squashed).is_err());
    }

    #[test]
    fn baseline_renderer_matches_the_bench_core_schema() {
        let cells = [fake_cell("gcc", "default", 1000)];
        let kernels = [Kernel {
            name: "full_walk_cold",
            ns_per_op: 300.0,
        }];
        let text = baseline_json(&cells, &kernels);
        let doc = json::parse(&text).expect("baseline parses");
        assert_eq!(
            doc.get("schema").and_then(|s| s.as_str()),
            Some("bench-core-v1")
        );
        assert_eq!(check_baseline(&cells, &text), 0, "self-check passes");
    }
}
