//! Artifact emission shared by `vmsim run` and `vmsim serve`.
//!
//! One executed [`ManifestRun`] fans out into a fixed artifact set under
//! an output directory:
//!
//! * `<name>.json` — the merged results JSON (re-parsed after writing);
//! * `trace_<name>_<i>.jsonl` / `series_<name>_<i>.csv` — per-cell
//!   observability artifacts when the manifest enables them;
//! * `profile_<name>_<i>.json` + `profile_<name>.folded` — phase profiles
//!   when profiling is on (fresh cells only; journals don't persist them);
//! * `trace_<name>_supervisor.jsonl` — only when supervision degraded the
//!   run, so a clean run's artifact set is unchanged.
//!
//! [`write_all`] is the single writer both front-ends call, which is what
//! makes the serve crash-recovery proof meaningful: a job recovered from
//! a journal goes through exactly this code, so "byte-identical artifacts"
//! compares like with like. Every failure is diagnosed through the caller's
//! `log` sink (one preformatted line per event) and counted, never panicked
//! on.

use std::path::{Path, PathBuf};

use vmsim_obs::{json, PhaseProfile};

use crate::driver::ManifestRun;

/// Outcome of writing one run's artifact set.
pub struct ArtifactSet {
    /// Artifacts that failed to write or re-parse.
    pub failures: u32,
    /// Path of the merged results JSON.
    pub results_path: PathBuf,
    /// The results JSON bytes (what a result cache serves back).
    pub results_json: String,
    /// Run count the re-parsed results JSON reported; `None` when the
    /// write or re-parse failed.
    pub runs: Option<usize>,
}

/// Writes the full artifact set for `run` into `out_dir`.
///
/// `elapsed_secs` is the wall time the caller attributes to the run (it
/// only decorates the "wrote results" log line; nothing in any artifact
/// depends on it). Diagnostics and progress lines go through `log`.
pub fn write_all(
    run: &ManifestRun,
    out_dir: &Path,
    elapsed_secs: f64,
    log: &mut dyn FnMut(&str),
) -> ArtifactSet {
    let manifest = &run.manifest;
    let mut failures = 0u32;

    let results_path = out_dir.join(format!("{}.json", manifest.name));
    let artifact = run.results_json();
    let mut runs = None;
    if let Err(e) = std::fs::write(&results_path, &artifact) {
        log(&format!(
            "FAIL {}: cannot write: {e}",
            results_path.display()
        ));
        failures += 1;
    } else {
        match json::parse(&artifact) {
            Ok(doc) => {
                let n = doc
                    .get("runs")
                    .and_then(|r| r.as_arr())
                    .map_or(0, <[_]>::len);
                runs = Some(n);
                log(&format!(
                    "vmsim: wrote {} ({n} runs, {elapsed_secs:.1}s)",
                    results_path.display()
                ));
            }
            Err(e) => {
                log(&format!("FAIL {}: {e:?}", results_path.display()));
                failures += 1;
            }
        }
    }

    if manifest.obs.is_enabled() {
        // Profiles exist only on freshly executed cells (the journal does
        // not persist them); the folded artifact merges every profiled
        // cell into one flamegraph-ready file.
        let mut merged: Option<PhaseProfile> = None;
        for cell in &run.cells {
            if let Some(profile) = cell.observed().and_then(|o| o.profile.as_ref()) {
                let i = cell.index;
                let path = out_dir.join(format!("profile_{}_{i}.json", manifest.name));
                let mut text = profile.to_json();
                text.push('\n');
                if let Err(e) = std::fs::write(&path, &text) {
                    log(&format!("FAIL {}: cannot write: {e}", path.display()));
                    failures += 1;
                } else if let Err(e) = json::parse(&text) {
                    log(&format!("FAIL {}: {e:?}", path.display()));
                    failures += 1;
                }
                match merged.as_mut() {
                    None => merged = Some(profile.clone()),
                    Some(m) => {
                        m.total_wall_ns += profile.total_wall_ns;
                        for (acc, t) in m.phases.iter_mut().zip(&profile.phases) {
                            acc.wall_ns += t.wall_ns;
                            acc.cycles += t.cycles;
                            acc.enters += t.enters;
                        }
                    }
                }
            }
        }
        if let Some(m) = &merged {
            let path = out_dir.join(format!("profile_{}.folded", manifest.name));
            if let Err(e) = std::fs::write(&path, m.to_folded()) {
                log(&format!("FAIL {}: cannot write: {e}", path.display()));
                failures += 1;
            } else {
                log(&format!(
                    "vmsim: wrote {} ({:.1}% of wall time attributed)",
                    path.display(),
                    m.attributed_fraction() * 100.0
                ));
            }
        }
        for cell in &run.cells {
            let (Some(jsonl), Some(csv)) = (cell.events_jsonl(), cell.series_csv()) else {
                continue; // quarantined: no artifacts to write
            };
            let i = cell.index;
            let trace_path = out_dir.join(format!("trace_{}_{i}.jsonl", manifest.name));
            if let Err(e) = std::fs::write(&trace_path, &jsonl) {
                log(&format!("FAIL {}: cannot write: {e}", trace_path.display()));
                failures += 1;
            } else {
                for (n, line) in jsonl.lines().enumerate() {
                    if let Err(e) = json::parse(line) {
                        log(&format!(
                            "FAIL {}: line {} unparseable: {e:?}",
                            trace_path.display(),
                            n + 1
                        ));
                        failures += 1;
                    }
                }
            }
            let series_path = out_dir.join(format!("series_{}_{i}.csv", manifest.name));
            if let Err(e) = std::fs::write(&series_path, &csv) {
                log(&format!(
                    "FAIL {}: cannot write: {e}",
                    series_path.display()
                ));
                failures += 1;
            }
            // Fresh cells also verify the series' JSON rendering (replayed
            // cells were verified when they originally ran).
            if let Some(observed) = cell.observed() {
                if let Err(e) = json::parse(&observed.series.to_json()) {
                    log(&format!("FAIL series {}_{i}: {e:?}", manifest.name));
                    failures += 1;
                }
            }
        }
    }

    // The supervisor trace exists only when something degraded the run, so
    // a clean (or cleanly resumed) run's artifact set is unchanged.
    if !run.supervision.is_clean() && !run.supervisor_events.is_empty() {
        let mut jsonl = String::new();
        for event in &run.supervisor_events {
            jsonl.push_str(&event.to_json());
            jsonl.push('\n');
        }
        let path = out_dir.join(format!("trace_{}_supervisor.jsonl", manifest.name));
        if let Err(e) = std::fs::write(&path, &jsonl) {
            log(&format!("FAIL {}: cannot write: {e}", path.display()));
            failures += 1;
        }
    }

    ArtifactSet {
        failures,
        results_path,
        results_json: artifact,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{run_supervised, Supervisor};
    use vmsim_config::builtin;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vmsim-artifacts-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    #[test]
    fn clean_run_writes_results_and_obs_artifacts() {
        let manifest = builtin::smoke();
        let run = run_supervised(&manifest, &Supervisor::default()).expect("run");
        let out = scratch("clean");
        let mut lines = Vec::new();
        let set = write_all(&run, &out, 0.0, &mut |l| lines.push(l.to_string()));

        assert_eq!(set.failures, 0);
        assert_eq!(set.runs, Some(2), "smoke is a 2-cell matrix");
        assert_eq!(
            std::fs::read_to_string(&set.results_path).expect("results on disk"),
            set.results_json
        );
        // Obs is on in smoke: per-cell trace and series artifacts exist.
        for i in 0..2 {
            assert!(out
                .join(format!("trace_{}_{i}.jsonl", manifest.name))
                .exists());
            assert!(out
                .join(format!("series_{}_{i}.csv", manifest.name))
                .exists());
        }
        // No degradation: no supervisor trace.
        assert!(!out
            .join(format!("trace_{}_supervisor.jsonl", manifest.name))
            .exists());
        assert!(lines.iter().any(|l| l.starts_with("vmsim: wrote")));
        assert!(lines.iter().all(|l| !l.starts_with("FAIL")));
    }

    #[test]
    fn unwritable_out_dir_counts_failures_instead_of_panicking() {
        let manifest = builtin::smoke();
        let run = run_supervised(&manifest, &Supervisor::default()).expect("run");
        let out = scratch("missing").join("does").join("not").join("exist");
        let mut lines = Vec::new();
        let set = write_all(&run, &out, 0.0, &mut |l| lines.push(l.to_string()));
        assert!(set.failures > 0);
        assert_eq!(set.runs, None);
        assert!(lines.iter().any(|l| l.starts_with("FAIL")));
    }
}
