//! Colocation simulation engine and experiment harness for the PTEMagnet
//! (ASPLOS 2021) evaluation.
//!
//! The crate turns the substrate (machine + workloads) into the paper's
//! experiments:
//!
//! * [`engine`] — runs a set of workloads colocated inside one VM,
//!   interleaving their operations (each app pinned to its own core, as the
//!   paper pins threads), and accumulates per-app cycle counts;
//! * `colo` — the host-scale counterpart: N guest VMs colocated on one
//!   overcommitted multi-tenant host, with VM churn and balloon pressure
//!   (reached through [`Scenario::vms`] / a manifest's `vms` section);
//! * [`scenario`] — declarative description of one run: benchmark,
//!   co-runners, allocator, co-runner stop protocol, measurement length;
//! * [`driver`] — the manifest execution engine: expands a
//!   `vmsim_config::ExperimentManifest` into scenario runs on the worker
//!   pool and assembles the typed, paper-shaped outcome. The `vmsim` CLI
//!   and every `exp-*` binary go through it;
//! * [`experiments`] — one function per table/figure of the paper
//!   (Table 1, Figures 5–7, Table 4, §6.2, §6.4), each a thin wrapper over
//!   the corresponding builtin manifest;
//! * [`obs`] — scenario-level observability: the [`ObsConfig`] knobs
//!   (re-exported from `vmsim-config`; `VMSIM_TRACE`, `VMSIM_EPOCH_OPS`)
//!   and the [`ObservedRun`] wrapper carrying snapshot, epoch time series,
//!   and event trace next to the untouched [`RunMetrics`];
//! * [`parallel`] — deterministic worker pool fanning independent runs
//!   (seeds, benchmarks) across cores; results come back in job order, so
//!   output is bit-identical to serial. Thread count: `VMSIM_THREADS`;
//! * [`report`] — renders results as paper-style text tables.
//!
//! # Examples
//!
//! ```no_run
//! use vmsim_sim::{Scenario, AllocatorKind};
//! use vmsim_workloads::{BenchId, CoId};
//!
//! let metrics = Scenario::new(BenchId::Pagerank)
//!     .corunners(&[CoId::Objdet])
//!     .allocator(AllocatorKind::PteMagnet)
//!     .measure_ops(200_000)
//!     .run();
//! println!("host-PT fragmentation: {:.2}", metrics.host_frag);
//! ```
//!
//! Manifest-driven (the canonical path):
//!
//! ```no_run
//! let manifest = vmsim_config::builtin::table4(0, 300_000);
//! let run = vmsim_sim::driver::run_manifest(&manifest).expect("valid manifest");
//! print!("{}", run.report());
//! ```

pub mod artifacts;
mod colo;
pub mod driver;
pub mod engine;
pub mod experiments;
pub mod journal;
pub mod obs;
pub mod parallel;
pub mod perf;
pub mod progress;
pub mod report;
pub mod scenario;
pub mod serve;
pub mod stats;

pub use driver::{
    run_manifest, run_supervised, CellData, CellRun, ColocationRow, DriverError, ManifestRun,
    Outcome, PressureRow, Supervision, Supervisor, VarianceStudy,
};
pub use engine::Colocation;
pub use experiments::{
    fig5_fig6, fig7, hw_sensitivity, llc_sensitivity, sec62, sec64, specint_zero_overhead, table1,
    table4, thp_study, walk_breakdown, AllocLatency, BenchPair, FigureSweep, HwSensitivityRow,
    ReservedUnused, Table1, Table4, ThpRow, ThpStudy, DEFAULT_MEASURE_OPS,
};
pub use journal::{Journal, JournalEntry};
pub use obs::{ObsConfig, ObservedRun};
pub use parallel::Parallelism;
pub use progress::{Progress, ProgressStats, Pulse, DEFAULT_HEARTBEAT_OPS};
pub use scenario::{AllocatorKind, CellBudget, RunMetrics, Scenario};
pub use serve::{ServeConfig, ServeStats, Server};
pub use stats::{Replication, Summary};
