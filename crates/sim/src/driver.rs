//! The manifest execution engine: runs an [`ExperimentManifest`] on the
//! worker pool under panic supervision and assembles the paper-typed
//! result.
//!
//! This is the single path every experiment takes — the `vmsim` CLI, the
//! `exp-*` wrapper binaries, and the legacy functions in
//! [`crate::experiments`] all build a manifest and hand it here. A matrix
//! manifest expands to one job per (workload, policy, seed) cell, in
//! workload-major order (`index = (w·P + p)·S + s`); jobs run on the
//! deterministic pool ([`crate::parallel`]) and come back in job order, so
//! a manifest-driven run is bit-identical to the hand-constructed legacy
//! path run serially.
//!
//! Each cell runs inside its own `catch_unwind`: a panicking or resource-
//! exhausted cell is **quarantined** — recorded as a [`CellRun`] carrying
//! its typed [`RunError`] — while every other cell completes bit-identical
//! to an unfailed run at any `VMSIM_THREADS`. The manifest's optional
//! `supervisor` block adds deterministic bounded retry (the seed for
//! attempt *a* is a pure function of manifest hash, cell index, and
//! attempt — no wall clock) and per-cell budgets
//! ([`crate::scenario::CellBudget`]). Completed cells stream into an
//! optional [`Journal`] so a killed run can be resumed with
//! `vmsim run --resume`.
//!
//! Policy names resolve through `ptemagnet::registry`; allocator labels in
//! the resulting [`RunMetrics`] come from the allocator itself
//! ([`vmsim_os::GuestFrameAllocator::name`]), which the registry guarantees
//! to match the catalog names the legacy `AllocatorKind` used.

use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use ptemagnet::UnknownPolicy;
use vmsim_cache::MemCounters;
use vmsim_config::{
    ChaosPlan, ExperimentManifest, ExperimentSpec, ManifestError, MatrixSpec, PolicySpec,
    ReportKind, SupervisorSpec, WorkloadSpec,
};
use vmsim_obs::{json, Event, EventKind, Metric, MetricSource};
use vmsim_os::{GuestOs, Machine, MachineConfig};
use vmsim_types::{GuestVirtAddr, GuestVirtPage, MemError, RunError, PAGE_SIZE};

use crate::experiments::{
    AllocLatency, BenchPair, FigureSweep, HwSensitivityRow, ReservedUnused, Table1, Table4, ThpRow,
    ThpStudy,
};
use crate::journal::{self, Journal, JournalEntry};
use crate::obs::ObservedRun;
use crate::parallel::{self, Parallelism};
use crate::progress::Progress;
use crate::report;
use crate::scenario::{CellBudget, RunMetrics, Scenario};
use crate::stats::Replication;

/// Why a manifest could not be executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The manifest is structurally or semantically invalid.
    Manifest(ManifestError),
    /// A policy name does not resolve in the registry.
    Policy(UnknownPolicy),
}

impl core::fmt::Display for DriverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Manifest(e) => write!(f, "{e}"),
            Self::Policy(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<ManifestError> for DriverError {
    fn from(e: ManifestError) -> Self {
        Self::Manifest(e)
    }
}

impl From<UnknownPolicy> for DriverError {
    fn from(e: UnknownPolicy) -> Self {
        Self::Policy(e)
    }
}

/// §6.1 run-to-run variance: one [`Replication`] per policy, paired by
/// seed.
#[derive(Clone, Debug)]
pub struct VarianceStudy {
    /// Baseline-policy runs, in seed order.
    pub base: Replication,
    /// Contender-policy runs, in seed order.
    pub ptemagnet: Replication,
}

/// One (workload, policy) cell of a pressure study: how a policy degrades
/// under that workload's fault plan, relative to the same policy under the
/// first (least-faulted) workload.
#[derive(Clone, Debug)]
pub struct PressureRow {
    /// Workload display label (typically encodes the fault severity).
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Measured steady-state cycles (seed 0).
    pub cycles: u64,
    /// Execution-time degradation vs the first workload, same policy
    /// (positive = slower under faults).
    pub slowdown: f64,
    /// Allocations denied by the fault injector.
    pub faults_injected: u64,
    /// Reservation faults degraded to single-frame fallbacks.
    pub reservation_fallbacks: u64,
    /// Frames released by reclaim (daemon, storms, swap-out hooks).
    pub reclaimed_frames: u64,
}

/// One (workload, policy) cell of a multi-tenant colocation sweep: how a
/// policy behaves when the workload's VM fleet shares one overcommitted
/// host, relative to the first (baseline) policy under the same fleet.
#[derive(Clone, Debug)]
pub struct ColocationRow {
    /// Workload display label (typically encodes fleet size and churn).
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// VM fleet size.
    pub vms: u32,
    /// Whether the fleet ran under VM churn.
    pub churn: bool,
    /// Measured steady-state cycles of VM 0's benchmark (seed 0).
    pub cycles: u64,
    /// Execution-time improvement vs the first policy, same fleet
    /// (positive = faster).
    pub improvement: f64,
    /// Host-PT fragmentation of the measured VM after its allocation
    /// phase.
    pub host_frag: f64,
    /// Guest page faults taken fleet-wide over the whole run.
    pub total_faults: u64,
}

/// The typed result a manifest's report kind aggregates its runs into.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Generic per-run listing.
    Runs,
    /// Per-run CSV dump.
    Csv,
    /// Paper Table 1.
    Table1(Table1),
    /// Paper Table 4.
    Table4(Table4),
    /// Paper Figures 5–7 (which one is in the manifest's report kind).
    Figure(FigureSweep),
    /// Paper §6.2 reserved-unused incidence.
    Sec62(Vec<ReservedUnused>),
    /// THP study (§2.3).
    Thp(ThpStudy),
    /// §6.1 zero-overhead check: per-benchmark mean improvement.
    Specint(Vec<(String, f64)>),
    /// §6.1 run-to-run variance.
    Variance(VarianceStudy),
    /// LLC-capacity sweep: (LLC MB, improvement) pairs.
    Llc(Vec<(u64, f64)>),
    /// Hardware-sensitivity sweep.
    Hw(Vec<HwSensitivityRow>),
    /// §6.4 allocation-latency microbenchmark.
    AllocLatency(AllocLatency),
    /// §1/§3.2 walk-source breakdown.
    Breakdown(Vec<(String, MemCounters)>),
    /// Graceful-degradation study under fault injection, workload-major.
    Pressure(Vec<PressureRow>),
    /// Multi-tenant colocation sweep (VM count x churn x policy),
    /// workload-major.
    Colocation(Vec<ColocationRow>),
    /// At least one cell was quarantined; no aggregate result exists.
    Degraded,
}

/// The payload of a completed matrix cell: a freshly executed run or one
/// replayed from a [`Journal`].
#[derive(Debug)]
pub enum CellData {
    /// Executed in this process; full observability payload available.
    Fresh(ObservedRun),
    /// Replayed from a journal: metrics plus the original artifact text.
    Resumed(JournalEntry),
}

impl CellData {
    /// The cell's end-of-run aggregates.
    #[must_use]
    pub fn metrics(&self) -> &RunMetrics {
        match self {
            CellData::Fresh(run) => &run.metrics,
            CellData::Resumed(entry) => &entry.metrics,
        }
    }
}

/// One supervised matrix cell: either completed data or the typed error
/// that quarantined it after every allowed attempt.
#[derive(Debug)]
pub struct CellRun {
    /// Matrix index (`(w·P + p)·S + s`).
    pub index: usize,
    /// Attempts consumed (1 = first try succeeded; for a quarantined cell
    /// this is the full retry allowance).
    pub attempts: u32,
    /// Whether the cell was replayed from a journal instead of executed.
    pub resumed: bool,
    /// The completed run, or the error from the final attempt.
    pub data: Result<CellData, RunError>,
}

impl CellRun {
    /// The cell's metrics, if it completed.
    #[must_use]
    pub fn metrics(&self) -> Option<&RunMetrics> {
        self.data.as_ref().ok().map(CellData::metrics)
    }

    /// The freshly executed run, if the cell ran in this process.
    #[must_use]
    pub fn observed(&self) -> Option<&ObservedRun> {
        match &self.data {
            Ok(CellData::Fresh(run)) => Some(run),
            _ => None,
        }
    }

    /// The quarantining error, if the cell failed.
    #[must_use]
    pub fn error(&self) -> Option<&RunError> {
        self.data.as_ref().err()
    }

    /// Whether a budget truncated the cell's measured phase.
    #[must_use]
    pub fn truncated(&self) -> bool {
        match &self.data {
            Ok(CellData::Fresh(run)) => run.truncated,
            Ok(CellData::Resumed(entry)) => entry.truncated,
            Err(_) => false,
        }
    }

    /// The cell's trace artifact text, if it completed (empty string when
    /// tracing was off).
    #[must_use]
    pub fn events_jsonl(&self) -> Option<String> {
        match &self.data {
            Ok(CellData::Fresh(run)) => Some(run.events_jsonl()),
            Ok(CellData::Resumed(entry)) => Some(entry.events_jsonl.clone()),
            Err(_) => None,
        }
    }

    /// The cell's epoch-series CSV artifact text, if it completed.
    #[must_use]
    pub fn series_csv(&self) -> Option<String> {
        match &self.data {
            Ok(CellData::Fresh(run)) => Some(run.series.to_csv()),
            Ok(CellData::Resumed(entry)) => Some(entry.series_csv.clone()),
            Err(_) => None,
        }
    }
}

/// What the supervisor did across a whole manifest run. Registers as the
/// `supervisor.*` gauge group ([`MetricSource`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Supervision {
    /// Cells that failed every allowed attempt.
    pub quarantined: u64,
    /// Total retry attempts across all cells (recovered or not).
    pub retried: u64,
    /// Cells whose measured phase a budget stopped early.
    pub truncated: u64,
    /// Cells replayed from a journal instead of executed.
    pub resumed: u64,
}

impl Supervision {
    /// True when nothing degraded the run. Resumption is deliberately not
    /// counted: a resumed run's outputs are byte-identical to a clean one,
    /// so nothing in the artifacts may depend on it.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.quarantined == 0 && self.retried == 0 && self.truncated == 0
    }
}

impl MetricSource for Supervision {
    fn source_name(&self) -> &'static str {
        "supervisor"
    }

    fn emit(&self, out: &mut Vec<Metric>) {
        out.push(Metric::u64("quarantined", self.quarantined));
        out.push(Metric::u64("retried", self.retried));
        out.push(Metric::u64("truncated", self.truncated));
        out.push(Metric::u64("resumed", self.resumed));
    }
}

/// Supervised-execution inputs beyond the manifest itself.
#[derive(Default)]
pub struct Supervisor<'a> {
    /// Journal to replay completed cells from and append new ones to.
    pub journal: Option<&'a Journal>,
    /// Deterministic failure drill (`VMSIM_CHAOS_CELL`): panic the given
    /// cell on its first `fail_attempts` attempts (every attempt if
    /// unbounded).
    pub chaos: Option<ChaosPlan>,
    /// Heartbeat stream to pulse while cells execute (`--progress`).
    /// Telemetry only: attaching one leaves every result byte-identical.
    pub progress: Option<&'a Progress>,
}

/// A fully executed manifest: the input, every supervised cell (matrix
/// kinds), the supervisor's tally, and the aggregated outcome.
#[derive(Debug)]
pub struct ManifestRun {
    /// The manifest that was executed (after any environment override).
    pub manifest: ExperimentManifest,
    /// Every matrix cell in run order (empty for the special kinds).
    pub cells: Vec<CellRun>,
    /// Quarantine/retry/truncation/resume counters for the whole run.
    pub supervision: Supervision,
    /// Supervisor trace events (`cell_quarantined`, `cell_retried`,
    /// `run_resumed`), deterministic in cell-index order.
    pub supervisor_events: Vec<Event>,
    /// The aggregated, report-kind-typed result.
    pub outcome: Outcome,
}

/// Builds the [`Scenario`] for one (workload, policy, seed) cell of a
/// manifest, with the allocator resolved through the registry.
///
/// # Errors
///
/// Returns [`DriverError`] for unknown benchmark/co-runner/policy names.
pub fn build_scenario(
    manifest: &ExperimentManifest,
    workload: &WorkloadSpec,
    policy: &PolicySpec,
    seed: u64,
) -> Result<Scenario, DriverError> {
    let bench = workload.bench_id()?;
    let corunners = workload.co_ids()?;
    let allocator = ptemagnet::registry::resolve(policy.name())?;
    let mut scenario = Scenario::new(bench)
        .corunners(&corunners)
        .corunner_weight(workload.corunner_weight)
        .threads(workload.threads)
        .stop_corunners_after_init(workload.stop_corunners_after_init)
        .custom_allocator(allocator)
        .measure_ops(manifest.measure_ops)
        .seed(seed);
    if let Some(run) = workload.prefragment_run {
        scenario = scenario.prefragment_run(run);
    }
    // A workload's plan replaces the manifest-level plan wholesale (no
    // field-wise overlay — a fault plan is one coherent condition).
    if let Some(plan) = workload.faults.or(manifest.faults) {
        scenario = scenario.faults(plan);
    }
    let sim = manifest
        .sim
        .unwrap_or_default()
        .overlaid(&workload.sim.unwrap_or_default());
    if !sim.is_vanilla() {
        scenario = scenario.machine(sim.to_machine_config(1 + corunners.len()));
    }
    // Like fault plans, a workload's vms section replaces the manifest-level
    // one wholesale (a tenancy shape is one coherent condition).
    if let Some(spec) = workload.vms.or(manifest.vms) {
        scenario = scenario.vms(spec);
    }
    Ok(scenario)
}

/// Validates and executes a manifest with no journal and no chaos drill.
/// Equivalent to [`run_supervised`] with a default [`Supervisor`].
///
/// # Errors
///
/// Returns [`DriverError`] if the manifest fails validation or a policy
/// does not resolve. Matrix cells never panic out of this function: a
/// failing cell is quarantined into its [`CellRun`] and the outcome
/// becomes [`Outcome::Degraded`].
///
/// # Panics
///
/// The special kinds (alloc-latency, walk-breakdown) still panic on
/// simulation resource exhaustion, as the legacy experiment functions did.
pub fn run_manifest(manifest: &ExperimentManifest) -> Result<ManifestRun, DriverError> {
    run_supervised(manifest, &Supervisor::default())
}

/// Validates and executes a manifest under full supervision: per-cell
/// panic isolation, deterministic bounded retry, budgets, and optional
/// journal replay/append.
///
/// # Errors
///
/// Returns [`DriverError`] if the manifest fails validation or a policy
/// does not resolve.
///
/// # Panics
///
/// The special kinds (alloc-latency, walk-breakdown) still panic on
/// simulation resource exhaustion, as the legacy experiment functions did.
pub fn run_supervised(
    manifest: &ExperimentManifest,
    sup: &Supervisor<'_>,
) -> Result<ManifestRun, DriverError> {
    manifest.validate()?;
    match &manifest.experiment {
        ExperimentSpec::AllocLatency { pages } => Ok(ManifestRun {
            manifest: manifest.clone(),
            cells: Vec::new(),
            supervision: Supervision::default(),
            supervisor_events: Vec::new(),
            outcome: Outcome::AllocLatency(crate::experiments::sec64(*pages)),
        }),
        ExperimentSpec::WalkBreakdown => Ok(ManifestRun {
            manifest: manifest.clone(),
            cells: Vec::new(),
            supervision: Supervision::default(),
            supervisor_events: Vec::new(),
            outcome: Outcome::Breakdown(crate::experiments::walk_breakdown(
                manifest.seeds[0],
                manifest.measure_ops,
            )),
        }),
        ExperimentSpec::Matrix(matrix) => run_matrix(manifest, matrix, sup),
    }
}

fn run_matrix(
    manifest: &ExperimentManifest,
    matrix: &MatrixSpec,
    sup: &Supervisor<'_>,
) -> Result<ManifestRun, DriverError> {
    // Resolve every policy once up front so name errors surface before any
    // simulation work (the pool closure then cannot fail on names).
    for policy in &matrix.policies {
        ptemagnet::registry::resolve(policy.name())?;
    }
    let spec = manifest.supervisor.unwrap_or_default();
    let budget = CellBudget {
        max_ops: spec.max_cell_ops,
        soft_wall: spec.soft_wall_ms.map(Duration::from_millis),
    };
    let hash = journal::manifest_hash(manifest);
    let (pn, sn) = (matrix.policies.len(), manifest.seeds.len());
    let total = matrix.workloads.len() * pn * sn;
    let raw = parallel::run_supervised(Parallelism::from_env(), total, |i| {
        run_cell(manifest, matrix, i, spec, budget, hash, sup)
    });
    // The outer supervised join is a safety net for panics escaping the
    // per-attempt `catch_unwind` inside `run_cell` (it should never fire).
    let cells: Vec<CellRun> = raw
        .into_iter()
        .enumerate()
        .map(|(i, r)| {
            r.unwrap_or_else(|panic| CellRun {
                index: i,
                attempts: 1,
                resumed: false,
                data: Err(RunError::MachinePanic {
                    payload: panic.payload,
                }),
            })
        })
        .collect();
    let (supervision, supervisor_events) = supervise(&cells);
    let outcome = if cells.iter().any(|c| c.data.is_err()) {
        Outcome::Degraded
    } else {
        let metrics: Vec<RunMetrics> = cells
            .iter()
            .map(|c| c.metrics().expect("no cell failed").clone())
            .collect();
        assemble(manifest, matrix, &metrics)
    };
    Ok(ManifestRun {
        manifest: manifest.clone(),
        cells,
        supervision,
        supervisor_events,
        outcome,
    })
}

/// Executes one matrix cell through its retry allowance. Every attempt is
/// individually `catch_unwind`-isolated, so neighbouring cells on the same
/// worker thread are unaffected by a panic here.
fn run_cell(
    manifest: &ExperimentManifest,
    matrix: &MatrixSpec,
    i: usize,
    spec: SupervisorSpec,
    budget: CellBudget,
    hash: u64,
    sup: &Supervisor<'_>,
) -> CellRun {
    let (pn, sn) = (matrix.policies.len(), manifest.seeds.len());
    let (s, p, w) = (i % sn, (i / sn) % pn, i / (sn * pn));
    let workload = &matrix.workloads[w];
    let policy = &matrix.policies[p];
    let base_seed = manifest.seeds[s];

    let label = workload.display_label();
    if let Some(journal) = sup.journal {
        if let Some(entry) = journal.lookup(journal::cell_key(hash, i as u64, base_seed)) {
            if let Some(progress) = sup.progress {
                progress.cell_status(
                    i as u64,
                    &label,
                    policy.name(),
                    base_seed,
                    entry.attempts,
                    "resumed",
                );
            }
            return CellRun {
                index: i,
                attempts: entry.attempts,
                resumed: true,
                data: Ok(CellData::Resumed(entry.clone())),
            };
        }
    }

    let faulted = workload.faults.or(manifest.faults).is_some();
    let max_attempts = spec.retries + 1;
    let mut last = None;
    for attempt in 0..max_attempts {
        let seed = retry_seed(base_seed, hash, i as u64, attempt, spec.seed_stride);
        let chaos_hit = sup
            .chaos
            .is_some_and(|c| c.cell == i && c.fail_attempts.is_none_or(|k| attempt < k));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            assert!(
                !chaos_hit,
                "chaos drill: injected panic at cell {i} (attempt {attempt})"
            );
            let scenario =
                build_scenario(manifest, workload, policy, seed).expect("manifest pre-validated");
            match sup.progress {
                Some(progress) => scenario.try_run_supervised_with_progress(
                    manifest.obs,
                    budget,
                    progress.heartbeat_ops(),
                    &mut |pulse| {
                        progress.heartbeat(
                            i as u64,
                            &label,
                            policy.name(),
                            base_seed,
                            attempt + 1,
                            &pulse,
                        );
                    },
                ),
                None => scenario.try_run_supervised(manifest.obs, budget),
            }
        }));
        last = Some(match outcome {
            Ok(Ok(run)) => {
                let cell = CellRun {
                    index: i,
                    attempts: attempt + 1,
                    resumed: false,
                    data: Ok(CellData::Fresh(run)),
                };
                if let (Some(journal), Ok(CellData::Fresh(run))) = (sup.journal, &cell.data) {
                    journal.record(
                        i as u64,
                        &label,
                        policy.name(),
                        base_seed,
                        cell.attempts,
                        run,
                    );
                }
                if let Some(progress) = sup.progress {
                    progress.cell_status(
                        i as u64,
                        &label,
                        policy.name(),
                        base_seed,
                        cell.attempts,
                        "done",
                    );
                }
                return cell;
            }
            Ok(Err(e)) => classify(e, faulted),
            Err(payload) => RunError::from_panic(payload.as_ref()),
        });
    }
    if let Some(progress) = sup.progress {
        progress.cell_status(
            i as u64,
            &label,
            policy.name(),
            base_seed,
            max_attempts,
            "quarantined",
        );
    }
    CellRun {
        index: i,
        attempts: max_attempts,
        resumed: false,
        data: Err(last.expect("at least one attempt ran")),
    }
}

/// Sharpens a generic out-of-memory failure into the fault-plan taxonomy:
/// under an active fault plan, pool exhaustion means the plan drove the
/// machine past what graceful degradation could absorb.
fn classify(e: RunError, faulted: bool) -> RunError {
    match e {
        RunError::Sim {
            error: MemError::OutOfMemory { order },
        } if faulted => RunError::FaultPlanExhausted { order },
        other => other,
    }
}

/// The seed for retry `attempt` of cell `index`: the base seed perturbed
/// by `seed_stride` times a pure mix of (manifest hash, cell index,
/// attempt). Attempt 0 — and any attempt with stride 0 — runs the
/// canonical seed, so clean runs are untouched and retry decisions never
/// consult the wall clock.
#[must_use]
pub fn retry_seed(base: u64, manifest_hash: u64, index: u64, attempt: u32, stride: u64) -> u64 {
    if attempt == 0 || stride == 0 {
        return base;
    }
    let mut x = manifest_hash ^ index.rotate_left(32) ^ u64::from(attempt);
    x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    base.wrapping_add(stride.wrapping_mul(x | 1))
}

/// Tallies the supervisor counters and builds the supervisor trace —
/// deterministic because it walks cells in index order after the join.
fn supervise(cells: &[CellRun]) -> (Supervision, Vec<Event>) {
    let mut sv = Supervision::default();
    let mut events = Vec::new();
    for cell in cells {
        let idx = cell.index as u64;
        if cell.resumed {
            sv.resumed += 1;
        }
        if cell.truncated() {
            sv.truncated += 1;
        }
        // Resumed cells replay their recorded attempts so a resumed run's
        // counters (and results JSON) match the uninterrupted run's.
        sv.retried += u64::from(cell.attempts.saturating_sub(1));
        for attempt in 1..cell.attempts {
            events.push(Event {
                op: idx,
                kind: EventKind::CellRetried { cell: idx, attempt },
            });
        }
        if cell.data.is_err() {
            sv.quarantined += 1;
            events.push(Event {
                op: idx,
                kind: EventKind::CellQuarantined {
                    cell: idx,
                    attempts: cell.attempts,
                },
            });
        }
    }
    if sv.resumed > 0 {
        events.insert(
            0,
            Event {
                op: 0,
                kind: EventKind::RunResumed { cells: sv.resumed },
            },
        );
    }
    (sv, events)
}

/// The colocation label a figure sweep reports: the shared co-runner name,
/// `combination` for several, `standalone` for none, `mixed` if workloads
/// disagree.
fn colocation_label(workloads: &[WorkloadSpec]) -> String {
    let first = workloads
        .first()
        .map(|w| w.corunners.clone())
        .unwrap_or_default();
    if workloads.iter().any(|w| w.corunners != first) {
        return "mixed".to_string();
    }
    match first.len() {
        0 => "standalone".to_string(),
        1 => first[0].clone(),
        _ => "combination".to_string(),
    }
}

fn assemble(manifest: &ExperimentManifest, matrix: &MatrixSpec, metrics: &[RunMetrics]) -> Outcome {
    let (pn, sn) = (matrix.policies.len(), manifest.seeds.len());
    let at = |w: usize, p: usize, s: usize| &metrics[(w * pn + p) * sn + s];
    match matrix.report {
        ReportKind::Runs => Outcome::Runs,
        ReportKind::Csv => Outcome::Csv,
        ReportKind::Pressure => {
            let mut rows = Vec::new();
            for (w, workload) in matrix.workloads.iter().enumerate() {
                for (p, policy) in matrix.policies.iter().enumerate() {
                    let m = at(w, p, 0);
                    let base = at(0, p, 0);
                    rows.push(PressureRow {
                        workload: workload.display_label(),
                        policy: policy.name().to_string(),
                        cycles: m.cycles,
                        slowdown: m.cycles as f64 / base.cycles.max(1) as f64 - 1.0,
                        faults_injected: m.faults_injected,
                        reservation_fallbacks: m.reservation_fallbacks,
                        reclaimed_frames: m.reclaimed_frames,
                    });
                }
            }
            Outcome::Pressure(rows)
        }
        ReportKind::Table1 => Outcome::Table1(Table1 {
            standalone: at(0, 0, 0).clone(),
            colocated: at(1, 0, 0).clone(),
        }),
        ReportKind::Table4 => Outcome::Table4(Table4 {
            default: at(0, 0, 0).clone(),
            ptemagnet: at(0, 1, 0).clone(),
        }),
        ReportKind::Fig5 | ReportKind::Fig6 | ReportKind::Fig7 => Outcome::Figure(FigureSweep {
            colocation: colocation_label(&matrix.workloads),
            pairs: matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| BenchPair {
                    name: workload.benchmark.clone(),
                    default: at(w, 0, 0).clone(),
                    ptemagnet: at(w, 1, 0).clone(),
                })
                .collect(),
        }),
        ReportKind::Sec62 => Outcome::Sec62(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let m = at(w, 0, 0);
                    ReservedUnused {
                        name: workload.benchmark.clone(),
                        peak_fraction: m.reserved_unused_fraction(),
                        mean_fraction: if m.footprint_pages == 0 {
                            0.0
                        } else {
                            m.reserved_unused_mean / m.footprint_pages as f64
                        },
                    }
                })
                .collect(),
        ),
        ReportKind::Thp => {
            let mut rows = Vec::new();
            for (w, workload) in matrix.workloads.iter().enumerate() {
                let default = at(w, 0, 0);
                for (p, policy) in matrix.policies.iter().enumerate() {
                    let metrics = at(w, p, 0);
                    rows.push(ThpRow {
                        allocator: policy.name().to_string(),
                        condition: workload.display_label(),
                        improvement: metrics.improvement_over(default),
                        metrics: metrics.clone(),
                    });
                }
            }
            Outcome::Thp(ThpStudy {
                rows,
                sparse_rss_per_touched: sparse_rss(&matrix.policies),
            })
        }
        ReportKind::Specint => Outcome::Specint(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let mean = (0..sn)
                        .map(|s| at(w, 1, s).improvement_over(at(w, 0, s)))
                        .sum::<f64>()
                        / sn as f64;
                    (workload.benchmark.clone(), mean)
                })
                .collect(),
        ),
        ReportKind::Variance => Outcome::Variance(VarianceStudy {
            base: Replication {
                runs: (0..sn).map(|s| at(0, 0, s).clone()).collect(),
            },
            ptemagnet: Replication {
                runs: (0..sn).map(|s| at(0, 1, s).clone()).collect(),
            },
        }),
        ReportKind::Llc => Outcome::Llc(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let mb = workload
                        .sim
                        .and_then(|s| s.llc_mb)
                        .expect("llc manifest pre-validated");
                    (mb, at(w, 1, 0).improvement_over(at(w, 0, 0)))
                })
                .collect(),
        ),
        ReportKind::Colocation => {
            let mut rows = Vec::new();
            for (w, workload) in matrix.workloads.iter().enumerate() {
                let spec = workload
                    .vms
                    .or(manifest.vms)
                    .expect("colocation manifest pre-validated");
                let base = at(w, 0, 0);
                for (p, policy) in matrix.policies.iter().enumerate() {
                    let m = at(w, p, 0);
                    rows.push(ColocationRow {
                        workload: workload.display_label(),
                        policy: policy.name().to_string(),
                        vms: spec.count,
                        churn: spec.churn_period_ops.is_some(),
                        cycles: m.cycles,
                        improvement: m.improvement_over(base),
                        host_frag: m.host_frag,
                        total_faults: m.total_faults,
                    });
                }
            }
            Outcome::Colocation(rows)
        }
        ReportKind::Hw => Outcome::Hw(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let sim = workload.sim.unwrap_or_default();
                    let (knob, value) = match sim.stlb_entries {
                        Some(v) => ("stlb", v),
                        None => (
                            "nested-tlb",
                            sim.nested_tlb_entries.expect("hw manifest pre-validated"),
                        ),
                    };
                    let base = at(w, 0, 0);
                    HwSensitivityRow {
                        knob: knob.to_string(),
                        value,
                        tlb_miss_ratio: base.tlb_misses as f64 / base.tlb_lookups.max(1) as f64,
                        improvement: at(w, 1, 0).improvement_over(base),
                    }
                })
                .collect(),
        ),
    }
}

/// The THP study's sparse-touch microbenchmark: touch every 8th page of a
/// large VMA and report resident pages per touched page, one value per
/// policy (THP's hidden internal-fragmentation cost).
fn sparse_rss(policies: &[PolicySpec]) -> [f64; 3] {
    let sparse = |policy: &PolicySpec| -> f64 {
        let allocator = ptemagnet::registry::resolve(policy.name()).expect("policy pre-resolved");
        let mut m = Machine::with_allocator(MachineConfig::paper(1, 128), allocator);
        let pid = m.guest_mut().spawn();
        let base = m.guest_mut().mmap(pid, 8192).expect("mmap");
        let touched = 8192 / 8;
        for i in 0..touched {
            m.touch(
                0,
                pid,
                GuestVirtAddr::new(base.raw() + i * 8 * PAGE_SIZE),
                true,
            )
            .expect("touch");
        }
        m.guest().process(pid).expect("pid").rss_pages as f64 / touched as f64
    };
    let values = parallel::map_indexed(Parallelism::from_env(), policies, sparse);
    [values[0], values[1], values[2]]
}

/// The §6.2 adversarial microbenchmark: an application touching only every
/// eighth page reserves ~7× its footprint. Returns the report line.
fn sec62_adversarial() -> String {
    let mut guest = GuestOs::new(1 << 16, Box::new(ptemagnet::ReservationAllocator::new()));
    let pid = guest.spawn();
    let va = guest.mmap(pid, 4096).expect("mmap");
    for g in 0..512u64 {
        guest
            .page_fault(pid, GuestVirtPage::new(va.page().raw() + g * 8))
            .expect("fault");
    }
    let unused = guest.allocator().reserved_unused_frames();
    format!(
        "\nAdversarial every-8th-page app: footprint 512 pages, reserved-unused {} pages ({}x)\n",
        unused,
        unused / 512
    )
}

impl ManifestRun {
    /// The metrics of every *completed* cell in matrix order (empty for
    /// the special kinds; quarantined cells are skipped).
    pub fn metrics(&self) -> Vec<RunMetrics> {
        self.cells
            .iter()
            .filter_map(|c| c.metrics().cloned())
            .collect()
    }

    fn report_kind(&self) -> Option<ReportKind> {
        match &self.manifest.experiment {
            ExperimentSpec::Matrix(matrix) => Some(matrix.report),
            _ => None,
        }
    }

    /// Renders the result as the paper-style text the corresponding `exp-*`
    /// binary prints. A degraded run gets a per-cell status listing; any
    /// run with quarantined/retried/truncated cells gets the supervisor
    /// summary appended (clean runs are byte-identical to before).
    pub fn report(&self) -> String {
        let mut text = self.outcome_report();
        if !self.supervision.is_clean() && !matches!(self.outcome, Outcome::Degraded) {
            text.push_str(&self.supervision_summary());
        }
        text
    }

    fn outcome_report(&self) -> String {
        match &self.outcome {
            Outcome::Degraded => self.degraded_listing(),
            Outcome::Runs => self.runs_listing(),
            Outcome::Csv => report::runs_to_csv(&self.metrics()),
            Outcome::Table1(t) => report::format_table1(t),
            Outcome::Table4(t) => report::format_table4(t),
            Outcome::Figure(sweep) => match self.report_kind() {
                Some(ReportKind::Fig5) => report::format_fig5(sweep),
                Some(ReportKind::Fig7) => format!(
                    "{}\n{}",
                    report::format_improvement_figure(sweep, "Figure 7"),
                    report::figure_as_bars(sweep)
                ),
                _ => format!(
                    "{}\n{}",
                    report::format_improvement_figure(sweep, "Figure 6"),
                    report::figure_as_bars(sweep)
                ),
            },
            Outcome::Sec62(rows) => {
                format!("{}{}", report::format_sec62(rows), sec62_adversarial())
            }
            Outcome::Thp(study) => report::format_thp(study),
            Outcome::Specint(rows) => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "Zero-overhead check: low-TLB-pressure SPECint + objdet"
                );
                let _ = writeln!(out, "{:<12} {:>12}", "benchmark", "improvement");
                let mut worst = f64::INFINITY;
                for (name, imp) in rows {
                    let _ = writeln!(out, "{name:<12} {:>+11.2}%", imp * 100.0);
                    worst = worst.min(*imp);
                }
                let _ = writeln!(
                    out,
                    "\nWorst case: {:+.2}% — {}",
                    worst * 100.0,
                    if worst > -0.01 {
                        "PTEMagnet never slows anything down (paper's claim holds)"
                    } else {
                        "REGRESSION: the zero-overhead claim failed"
                    }
                );
                out
            }
            Outcome::Variance(v) => self.variance_report(v),
            Outcome::Llc(rows) => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.manifest.description);
                let _ = writeln!(out, "{:<8} {:>12}", "LLC", "improvement");
                for (mb, imp) in rows {
                    let _ = writeln!(out, "{:<8} {:>+11.1}%", format!("{mb} MB"), imp * 100.0);
                }
                out
            }
            Outcome::Hw(rows) => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.manifest.description);
                let _ = writeln!(
                    out,
                    "{:<12} {:>8} {:>10} {:>12}",
                    "knob", "entries", "tlb-miss", "improvement"
                );
                for row in rows {
                    let _ = writeln!(
                        out,
                        "{:<12} {:>8} {:>9.1}% {:>+11.1}%",
                        row.knob,
                        row.value,
                        row.tlb_miss_ratio * 100.0,
                        row.improvement * 100.0
                    );
                }
                out
            }
            Outcome::Pressure(rows) => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.manifest.description);
                let _ = writeln!(
                    out,
                    "{:<16} {:<12} {:>14} {:>10} {:>10} {:>10} {:>10}",
                    "workload",
                    "policy",
                    "cycles",
                    "slowdown",
                    "injected",
                    "fallbacks",
                    "reclaimed"
                );
                for row in rows {
                    let _ = writeln!(
                        out,
                        "{:<16} {:<12} {:>14} {:>+9.1}% {:>10} {:>10} {:>10}",
                        row.workload,
                        row.policy,
                        row.cycles,
                        row.slowdown * 100.0,
                        row.faults_injected,
                        row.reservation_fallbacks,
                        row.reclaimed_frames
                    );
                }
                out
            }
            Outcome::Colocation(rows) => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.manifest.description);
                let _ = writeln!(
                    out,
                    "{:<20} {:<12} {:>5} {:>6} {:>14} {:>12} {:>10} {:>12}",
                    "fleet",
                    "policy",
                    "vms",
                    "churn",
                    "cycles",
                    "improvement",
                    "host-frag",
                    "faults"
                );
                for row in rows {
                    let _ = writeln!(
                        out,
                        "{:<20} {:<12} {:>5} {:>6} {:>14} {:>+11.1}% {:>10.3} {:>12}",
                        row.workload,
                        row.policy,
                        row.vms,
                        if row.churn { "on" } else { "off" },
                        row.cycles,
                        row.improvement * 100.0,
                        row.host_frag,
                        row.total_faults
                    );
                }
                out
            }
            Outcome::AllocLatency(r) => report::format_sec64(r),
            Outcome::Breakdown(rows) => {
                let mut out = String::new();
                for (allocator, counters) in rows {
                    out.push_str(&report::format_breakdown(allocator, counters));
                    let ratio = if counters.guest_pt.memory == 0 {
                        f64::INFINITY
                    } else {
                        counters.host_pt.memory as f64 / counters.guest_pt.memory as f64
                    };
                    let _ = writeln!(
                        out,
                        "-> host-PT DRAM accesses are {ratio:.1}x the guest-PT's (paper: 4.4x under colocation)\n"
                    );
                }
                out
            }
        }
    }

    fn variance_report(&self, v: &VarianceStudy) -> String {
        let (label, policies) = match &self.manifest.experiment {
            ExperimentSpec::Matrix(matrix) => (
                matrix.workloads[0].display_label(),
                (
                    matrix.policies[0].name().to_string(),
                    matrix.policies[1].name().to_string(),
                ),
            ),
            _ => unreachable!("variance is a matrix report"),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Variance study: {label} across {} seeds, {} ops each",
            self.manifest.seeds.len(),
            self.manifest.measure_ops
        );
        let _ = writeln!(
            out,
            "{:<11} {:>10} {:>22}",
            "allocator", "cv", "improvement (mean±sd)"
        );
        let _ = writeln!(
            out,
            "{:<11} {:>9.2}% {:>22}",
            policies.0,
            v.base.cycles().cv() * 100.0,
            "-"
        );
        let imp = v.ptemagnet.improvement_over(&v.base);
        let _ = writeln!(
            out,
            "{:<11} {:>9.2}% {:>14.1}% ± {:.1}%",
            policies.1,
            v.ptemagnet.cycles().cv() * 100.0,
            imp.mean * 100.0,
            imp.stddev * 100.0
        );
        let _ = writeln!(
            out,
            "\nPaper: execution-time stddev over 40 runs <= 2%. Measured cv: {:.2}% / {:.2}%.",
            v.base.cycles().cv() * 100.0,
            v.ptemagnet.cycles().cv() * 100.0
        );
        out
    }

    fn runs_listing(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.manifest.description);
        let _ = writeln!(
            out,
            "{:<24} {:<14} {:>6} {:>14} {:>10}",
            "workload", "policy", "seed", "cycles", "host-frag"
        );
        self.for_each_cell(|workload, policy, seed, cell| {
            if let Some(m) = cell.metrics() {
                let _ = writeln!(
                    out,
                    "{:<24} {:<14} {:>6} {:>14} {:>10.3}",
                    workload.display_label(),
                    policy.name(),
                    seed,
                    m.cycles,
                    m.host_frag
                );
            }
        });
        out
    }

    /// The report for a run with quarantined cells: a per-cell status
    /// listing plus the supervisor summary.
    fn degraded_listing(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.manifest.description);
        let _ = writeln!(out, "supervised run completed with quarantined cells");
        let _ = writeln!(
            out,
            "{:<24} {:<14} {:>6} {:<11} detail",
            "workload", "policy", "seed", "status"
        );
        self.for_each_cell(|workload, policy, seed, cell| {
            let (status, detail) = match &cell.data {
                Ok(data) => (
                    if cell.truncated() { "truncated" } else { "ok" },
                    format!("{} cycles", data.metrics().cycles),
                ),
                Err(e) => ("failed", format!("[{}] {e}", e.kind())),
            };
            let _ = writeln!(
                out,
                "{:<24} {:<14} {:>6} {:<11} {}",
                workload.display_label(),
                policy.name(),
                seed,
                status,
                detail
            );
        });
        out.push_str(&self.supervision_summary());
        out
    }

    fn supervision_summary(&self) -> String {
        format!(
            "\nsupervisor: quarantined {}  retried {}  truncated {}\n",
            self.supervision.quarantined, self.supervision.retried, self.supervision.truncated
        )
    }

    /// Calls `f` for every matrix cell in run order with its coordinates.
    fn for_each_cell(&self, mut f: impl FnMut(&WorkloadSpec, &PolicySpec, u64, &CellRun)) {
        let ExperimentSpec::Matrix(matrix) = &self.manifest.experiment else {
            return;
        };
        let (pn, sn) = (matrix.policies.len(), self.manifest.seeds.len());
        for (i, cell) in self.cells.iter().enumerate() {
            let (s, p, w) = (i % sn, (i / sn) % pn, i / (sn * pn));
            f(
                &matrix.workloads[w],
                &matrix.policies[p],
                self.manifest.seeds[s],
                cell,
            );
        }
    }

    /// The machine-readable `results/<name>.json` artifact: manifest
    /// identity plus every run's metrics (or the special-kind payload),
    /// parseable by `vmsim_obs::json`.
    pub fn results_json(&self) -> String {
        let m = &self.manifest;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_str(&m.name));
        let _ = writeln!(out, "  \"description\": {},", json_str(&m.description));
        let _ = writeln!(out, "  \"kind\": {},", json_str(m.experiment.kind()));
        let _ = writeln!(out, "  \"measure_ops\": {},", m.measure_ops);
        let mut seeds = String::from("[");
        for (i, s) in m.seeds.iter().enumerate() {
            if i > 0 {
                seeds.push_str(", ");
            }
            let _ = write!(seeds, "{s}");
        }
        seeds.push(']');
        let _ = writeln!(out, "  \"seeds\": {seeds},");
        match &self.outcome {
            Outcome::AllocLatency(r) => {
                out.push_str("  \"runs\": [],\n");
                let _ = writeln!(
                    out,
                    "  \"alloc_latency\": {{\"pages\": {}, \"default_cycles\": {}, \"ptemagnet_cycles\": {}}}",
                    r.pages, r.default_cycles, r.ptemagnet_cycles
                );
            }
            Outcome::Breakdown(rows) => {
                out.push_str("  \"runs\": [],\n");
                out.push_str("  \"breakdown\": [\n");
                for (i, (allocator, c)) in rows.iter().enumerate() {
                    let _ = write!(
                        out,
                        "    {{\"allocator\": {}, \"guest_pt_accesses\": {}, \"guest_pt_memory\": {}, \"host_pt_accesses\": {}, \"host_pt_memory\": {}}}",
                        json_str(allocator),
                        c.guest_pt.accesses,
                        c.guest_pt.memory,
                        c.host_pt.accesses,
                        c.host_pt.memory
                    );
                    out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
                }
                out.push_str("  ]\n");
            }
            _ => {
                if self.cells.is_empty() {
                    out.push_str("  \"runs\": []");
                } else {
                    out.push_str("  \"runs\": [\n");
                    let total = self.cells.len();
                    let mut i = 0usize;
                    self.for_each_cell(|workload, policy, seed, cell| {
                        out.push_str("    ");
                        cell_json(
                            &mut out,
                            &workload.display_label(),
                            policy.name(),
                            seed,
                            cell,
                        );
                        out.push_str(if i + 1 < total { ",\n" } else { "\n" });
                        i += 1;
                    });
                    out.push_str("  ]");
                }
                // The summary appears only when something degraded the run,
                // so clean artifacts stay byte-identical to the pre-
                // supervisor format (and resumption alone adds nothing).
                if self.supervision.is_clean() {
                    out.push('\n');
                } else {
                    let sv = &self.supervision;
                    out.push_str(",\n");
                    let _ = writeln!(
                        out,
                        "  \"supervisor\": {{\"quarantined\": {}, \"retried\": {}, \"truncated\": {}}}",
                        sv.quarantined, sv.retried, sv.truncated
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Writes one cell as a results-JSON entry: completed cells reuse the
/// classic run object (plus `"attempts"`/`"truncated"` markers only when a
/// retry or budget fired, keeping clean artifacts byte-stable); failed
/// cells get an explicit `"status": "failed"` record with the typed error.
fn cell_json(out: &mut String, workload: &str, policy: &str, seed: u64, cell: &CellRun) {
    match &cell.data {
        Ok(data) => {
            let mut body = String::new();
            run_json(&mut body, workload, policy, seed, data.metrics());
            if cell.attempts > 1 || cell.truncated() {
                body.pop();
                if cell.attempts > 1 {
                    let _ = write!(body, ", \"attempts\": {}", cell.attempts);
                }
                if cell.truncated() {
                    body.push_str(", \"truncated\": true");
                }
                body.push('}');
            }
            out.push_str(&body);
        }
        Err(e) => {
            let _ = write!(
                out,
                "{{\"workload\": {}, \"policy\": {}, \"seed\": {seed}, \"status\": \"failed\", \
                 \"error_kind\": {}, \"error\": {}, \"attempts\": {}}}",
                json_str(workload),
                json_str(policy),
                json_str(e.kind()),
                json_str(&e.to_string()),
                cell.attempts
            );
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json::write_str(&mut out, s);
    out
}

/// Writes one run's metrics as a single-line JSON object (all
/// [`RunMetrics`] fields in declaration order, prefixed with the matrix
/// coordinates). Shared with the journal, which stores this object
/// verbatim so resumed results splice back byte-identically.
pub(crate) fn run_json(out: &mut String, workload: &str, policy: &str, seed: u64, r: &RunMetrics) {
    let _ = write!(
        out,
        "{{\"workload\": {}, \"policy\": {}, \"seed\": {seed}, \"benchmark\": {}, \"allocator\": {}, ",
        json_str(workload),
        json_str(policy),
        json_str(&r.benchmark),
        json_str(&r.allocator)
    );
    let _ = write!(
        out,
        "\"measure_ops\": {}, \"cycles\": {}, \"tlb_lookups\": {}, \"tlb_misses\": {}, \
         \"data_accesses\": {}, \"data_misses\": {}, \"page_walk_cycles\": {}, \
         \"host_pt_cycles\": {}, \"guest_pt_accesses\": {}, \"guest_pt_memory\": {}, \
         \"host_pt_accesses\": {}, \"host_pt_memory\": {}, ",
        r.measure_ops,
        r.cycles,
        r.tlb_lookups,
        r.tlb_misses,
        r.data_accesses,
        r.data_misses,
        r.page_walk_cycles,
        r.host_pt_cycles,
        r.guest_pt_accesses,
        r.guest_pt_memory,
        r.host_pt_accesses,
        r.host_pt_memory
    );
    out.push_str("\"host_frag\": ");
    json::write_f64(out, r.host_frag);
    out.push_str(", \"guest_frag\": ");
    json::write_f64(out, r.guest_frag);
    let _ = write!(
        out,
        ", \"init_cycles\": {}, \"footprint_pages\": {}, \"reserved_unused_peak\": {}, ",
        r.init_cycles, r.footprint_pages, r.reserved_unused_peak
    );
    out.push_str("\"reserved_unused_mean\": ");
    json::write_f64(out, r.reserved_unused_mean);
    let _ = write!(
        out,
        ", \"total_faults\": {}, \"reservation_fallbacks\": {}, \"reclaimed_frames\": {}, \
         \"faults_injected\": {}}}",
        r.total_faults, r.reservation_fallbacks, r.reclaimed_frames, r.faults_injected
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_config::builtin;

    #[test]
    fn smoke_manifest_runs_and_serializes() {
        let run = run_manifest(&builtin::smoke()).expect("smoke manifest");
        assert_eq!(run.cells.len(), 2);
        assert!(matches!(run.outcome, Outcome::Runs));
        assert!(run.supervision.is_clean());
        assert!(run.supervisor_events.is_empty());
        // Observability was on; metrics stay bit-identical regardless.
        assert!(run.cells[0].observed().expect("fresh cell").series.len() >= 2);
        let text = run.report();
        assert!(text.contains("gcc") && text.contains("ptemagnet"), "{text}");
        assert!(!text.contains("supervisor:"), "{text}");
        let artifact = run.results_json();
        let doc = json::parse(&artifact).expect("artifact parses");
        assert_eq!(doc.get("name").and_then(|n| n.as_str()), Some("smoke"));
        assert_eq!(
            doc.get("runs").and_then(|r| r.as_arr()).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("supervisor").is_none(), "clean run has no summary");
    }

    #[test]
    fn chaos_quarantines_one_cell_and_leaves_the_rest_bit_identical() {
        let manifest = builtin::smoke();
        let clean = run_manifest(&manifest).expect("clean run");
        let sup = Supervisor {
            journal: None,
            chaos: Some(ChaosPlan {
                cell: 1,
                fail_attempts: None,
            }),
            progress: None,
        };
        let run = run_supervised(&manifest, &sup).expect("degraded run");
        assert!(matches!(run.outcome, Outcome::Degraded));
        assert_eq!(run.supervision.quarantined, 1);
        let err = run.cells[1].error().expect("cell 1 quarantined");
        assert_eq!(err.kind(), "machine_panic");
        assert!(err.to_string().contains("chaos drill"), "{err}");
        // The surviving cell is bit-identical to the unfailed run.
        assert_eq!(
            run.cells[0].metrics().expect("cell 0 survived"),
            clean.cells[0].metrics().expect("clean cell 0")
        );
        assert_eq!(
            run.supervisor_events,
            vec![Event {
                op: 1,
                kind: EventKind::CellQuarantined {
                    cell: 1,
                    attempts: 1
                },
            }]
        );
        // The degraded artifact records the failure explicitly.
        let doc = json::parse(&run.results_json()).expect("artifact parses");
        let runs = doc.get("runs").and_then(|r| r.as_arr()).expect("runs");
        assert_eq!(
            runs[1].get("status").and_then(|s| s.as_str()),
            Some("failed")
        );
        assert_eq!(
            runs[1].get("error_kind").and_then(|s| s.as_str()),
            Some("machine_panic")
        );
        assert_eq!(
            doc.get("supervisor")
                .and_then(|s| s.get("quarantined"))
                .and_then(vmsim_obs::json::Json::as_u64),
            Some(1)
        );
        let text = run.report();
        assert!(text.contains("quarantined"), "{text}");
    }

    #[test]
    fn transient_chaos_recovers_through_deterministic_retry() {
        let mut manifest = builtin::smoke();
        manifest.supervisor = Some(SupervisorSpec {
            retries: 2,
            seed_stride: 0,
            max_cell_ops: None,
            soft_wall_ms: None,
        });
        let sup = Supervisor {
            journal: None,
            chaos: Some(ChaosPlan {
                cell: 0,
                fail_attempts: Some(1),
            }),
            progress: None,
        };
        let run = run_supervised(&manifest, &sup).expect("recovered run");
        assert!(matches!(run.outcome, Outcome::Runs), "not degraded");
        assert_eq!(run.cells[0].attempts, 2);
        assert_eq!(run.supervision.quarantined, 0);
        assert_eq!(run.supervision.retried, 1);
        assert_eq!(
            run.supervisor_events,
            vec![Event {
                op: 0,
                kind: EventKind::CellRetried {
                    cell: 0,
                    attempt: 1
                },
            }]
        );
        // With stride 0 the retry reran the canonical seed: metrics match
        // an unfailed run exactly, and the artifact gains only the
        // attempts marker plus the summary.
        let clean = run_manifest(&manifest).expect("clean run");
        assert_eq!(
            run.cells[0].metrics().expect("recovered"),
            clean.cells[0].metrics().expect("clean")
        );
        let doc = json::parse(&run.results_json()).expect("artifact parses");
        let runs = doc.get("runs").and_then(|r| r.as_arr()).expect("runs");
        assert_eq!(
            runs[0]
                .get("attempts")
                .and_then(vmsim_obs::json::Json::as_u64),
            Some(2)
        );
        assert!(runs[0].get("status").is_none());
        let text = run.report();
        assert!(
            text.contains("supervisor: quarantined 0  retried 1"),
            "{text}"
        );
    }

    #[test]
    fn retry_seed_is_pure_and_stride_scaled() {
        // Pure: same inputs, same output.
        assert_eq!(retry_seed(7, 99, 3, 2, 13), retry_seed(7, 99, 3, 2, 13));
        // Attempt 0 and stride 0 leave the base seed untouched.
        assert_eq!(retry_seed(7, 99, 3, 0, 13), 7);
        assert_eq!(retry_seed(7, 99, 3, 2, 0), 7);
        // Perturbations differ across attempts, cells, and manifests.
        assert_ne!(retry_seed(7, 99, 3, 1, 13), retry_seed(7, 99, 3, 2, 13));
        assert_ne!(retry_seed(7, 99, 3, 1, 13), retry_seed(7, 99, 4, 1, 13));
        assert_ne!(retry_seed(7, 99, 3, 1, 13), retry_seed(7, 98, 3, 1, 13));
    }

    #[test]
    fn supervision_registers_supervisor_gauges() {
        let sv = Supervision {
            quarantined: 2,
            retried: 3,
            truncated: 1,
            resumed: 4,
        };
        let mut registry = vmsim_obs::Registry::new();
        registry.record(&sv);
        let snapshot = registry.snapshot(0);
        let get = |name: &str| {
            snapshot
                .metrics
                .iter()
                .find(|m| m.name == name)
                .unwrap_or_else(|| panic!("{name} missing"))
                .clone()
        };
        assert_eq!(
            get("supervisor.quarantined"),
            Metric::u64("supervisor.quarantined", 2)
        );
        assert_eq!(
            get("supervisor.retried"),
            Metric::u64("supervisor.retried", 3)
        );
        assert_eq!(
            get("supervisor.truncated"),
            Metric::u64("supervisor.truncated", 1)
        );
        assert_eq!(
            get("supervisor.resumed"),
            Metric::u64("supervisor.resumed", 4)
        );
    }

    #[test]
    fn unknown_policy_is_a_driver_error() {
        let mut m = builtin::smoke();
        if let ExperimentSpec::Matrix(matrix) = &mut m.experiment {
            matrix.policies[1] = PolicySpec::new("warp-drive");
        }
        match run_manifest(&m) {
            Err(DriverError::Policy(p)) => assert_eq!(p.name, "warp-drive"),
            other => panic!("expected policy error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_manifest_is_a_driver_error() {
        let mut m = builtin::smoke();
        m.seeds.clear();
        assert!(matches!(run_manifest(&m), Err(DriverError::Manifest(_))));
    }
}
