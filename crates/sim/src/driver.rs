//! The manifest execution engine: runs an [`ExperimentManifest`] on the
//! worker pool and assembles the paper-typed result.
//!
//! This is the single path every experiment takes — the `vmsim` CLI, the
//! `exp-*` wrapper binaries, and the legacy functions in
//! [`crate::experiments`] all build a manifest and hand it here. A matrix
//! manifest expands to one job per (workload, policy, seed) cell, in
//! workload-major order (`index = (w·P + p)·S + s`); jobs run on the
//! deterministic pool ([`crate::parallel`]) and come back in job order, so
//! a manifest-driven run is bit-identical to the hand-constructed legacy
//! path run serially.
//!
//! Policy names resolve through `ptemagnet::registry`; allocator labels in
//! the resulting [`RunMetrics`] come from the allocator itself
//! ([`vmsim_os::GuestFrameAllocator::name`]), which the registry guarantees
//! to match the catalog names the legacy `AllocatorKind` used.

use std::fmt::Write as _;

use ptemagnet::UnknownPolicy;
use vmsim_cache::MemCounters;
use vmsim_config::{
    ExperimentManifest, ExperimentSpec, ManifestError, MatrixSpec, PolicySpec, ReportKind,
    WorkloadSpec,
};
use vmsim_obs::json;
use vmsim_os::{GuestOs, Machine, MachineConfig};
use vmsim_types::{GuestVirtAddr, GuestVirtPage, PAGE_SIZE};

use crate::experiments::{
    AllocLatency, BenchPair, FigureSweep, HwSensitivityRow, ReservedUnused, Table1, Table4, ThpRow,
    ThpStudy,
};
use crate::obs::ObservedRun;
use crate::parallel::{self, Parallelism};
use crate::report;
use crate::scenario::{RunMetrics, Scenario};
use crate::stats::Replication;

/// Why a manifest could not be executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// The manifest is structurally or semantically invalid.
    Manifest(ManifestError),
    /// A policy name does not resolve in the registry.
    Policy(UnknownPolicy),
}

impl core::fmt::Display for DriverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Manifest(e) => write!(f, "{e}"),
            Self::Policy(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DriverError {}

impl From<ManifestError> for DriverError {
    fn from(e: ManifestError) -> Self {
        Self::Manifest(e)
    }
}

impl From<UnknownPolicy> for DriverError {
    fn from(e: UnknownPolicy) -> Self {
        Self::Policy(e)
    }
}

/// §6.1 run-to-run variance: one [`Replication`] per policy, paired by
/// seed.
#[derive(Clone, Debug)]
pub struct VarianceStudy {
    /// Baseline-policy runs, in seed order.
    pub base: Replication,
    /// Contender-policy runs, in seed order.
    pub ptemagnet: Replication,
}

/// One (workload, policy) cell of a pressure study: how a policy degrades
/// under that workload's fault plan, relative to the same policy under the
/// first (least-faulted) workload.
#[derive(Clone, Debug)]
pub struct PressureRow {
    /// Workload display label (typically encodes the fault severity).
    pub workload: String,
    /// Policy name.
    pub policy: String,
    /// Measured steady-state cycles (seed 0).
    pub cycles: u64,
    /// Execution-time degradation vs the first workload, same policy
    /// (positive = slower under faults).
    pub slowdown: f64,
    /// Allocations denied by the fault injector.
    pub faults_injected: u64,
    /// Reservation faults degraded to single-frame fallbacks.
    pub reservation_fallbacks: u64,
    /// Frames released by reclaim (daemon, storms, swap-out hooks).
    pub reclaimed_frames: u64,
}

/// The typed result a manifest's report kind aggregates its runs into.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Generic per-run listing.
    Runs,
    /// Per-run CSV dump.
    Csv,
    /// Paper Table 1.
    Table1(Table1),
    /// Paper Table 4.
    Table4(Table4),
    /// Paper Figures 5–7 (which one is in the manifest's report kind).
    Figure(FigureSweep),
    /// Paper §6.2 reserved-unused incidence.
    Sec62(Vec<ReservedUnused>),
    /// THP study (§2.3).
    Thp(ThpStudy),
    /// §6.1 zero-overhead check: per-benchmark mean improvement.
    Specint(Vec<(String, f64)>),
    /// §6.1 run-to-run variance.
    Variance(VarianceStudy),
    /// LLC-capacity sweep: (LLC MB, improvement) pairs.
    Llc(Vec<(u64, f64)>),
    /// Hardware-sensitivity sweep.
    Hw(Vec<HwSensitivityRow>),
    /// §6.4 allocation-latency microbenchmark.
    AllocLatency(AllocLatency),
    /// §1/§3.2 walk-source breakdown.
    Breakdown(Vec<(String, MemCounters)>),
    /// Graceful-degradation study under fault injection, workload-major.
    Pressure(Vec<PressureRow>),
}

/// A fully executed manifest: the input, every observed run (matrix kinds),
/// and the aggregated outcome.
#[derive(Debug)]
pub struct ManifestRun {
    /// The manifest that was executed (after any environment override).
    pub manifest: ExperimentManifest,
    /// Every scenario run in matrix order (empty for the special kinds).
    pub observed: Vec<ObservedRun>,
    /// The aggregated, report-kind-typed result.
    pub outcome: Outcome,
}

/// Builds the [`Scenario`] for one (workload, policy, seed) cell of a
/// manifest, with the allocator resolved through the registry.
///
/// # Errors
///
/// Returns [`DriverError`] for unknown benchmark/co-runner/policy names.
pub fn build_scenario(
    manifest: &ExperimentManifest,
    workload: &WorkloadSpec,
    policy: &PolicySpec,
    seed: u64,
) -> Result<Scenario, DriverError> {
    let bench = workload.bench_id()?;
    let corunners = workload.co_ids()?;
    let allocator = ptemagnet::registry::resolve(policy.name())?;
    let mut scenario = Scenario::new(bench)
        .corunners(&corunners)
        .corunner_weight(workload.corunner_weight)
        .stop_corunners_after_init(workload.stop_corunners_after_init)
        .custom_allocator(allocator)
        .measure_ops(manifest.measure_ops)
        .seed(seed);
    if let Some(run) = workload.prefragment_run {
        scenario = scenario.prefragment_run(run);
    }
    // A workload's plan replaces the manifest-level plan wholesale (no
    // field-wise overlay — a fault plan is one coherent condition).
    if let Some(plan) = workload.faults.or(manifest.faults) {
        scenario = scenario.faults(plan);
    }
    let sim = manifest
        .sim
        .unwrap_or_default()
        .overlaid(&workload.sim.unwrap_or_default());
    if !sim.is_vanilla() {
        scenario = scenario.machine(sim.to_machine_config(1 + corunners.len()));
    }
    Ok(scenario)
}

/// Validates and executes a manifest.
///
/// # Errors
///
/// Returns [`DriverError`] if the manifest fails validation or a policy
/// does not resolve. Simulation resource exhaustion (a misconfigured
/// machine) panics, as the legacy experiment functions did.
///
/// # Panics
///
/// Panics on simulation resource exhaustion.
pub fn run_manifest(manifest: &ExperimentManifest) -> Result<ManifestRun, DriverError> {
    manifest.validate()?;
    match &manifest.experiment {
        ExperimentSpec::AllocLatency { pages } => Ok(ManifestRun {
            manifest: manifest.clone(),
            observed: Vec::new(),
            outcome: Outcome::AllocLatency(crate::experiments::sec64(*pages)),
        }),
        ExperimentSpec::WalkBreakdown => Ok(ManifestRun {
            manifest: manifest.clone(),
            observed: Vec::new(),
            outcome: Outcome::Breakdown(crate::experiments::walk_breakdown(
                manifest.seeds[0],
                manifest.measure_ops,
            )),
        }),
        ExperimentSpec::Matrix(matrix) => run_matrix(manifest, matrix),
    }
}

fn run_matrix(
    manifest: &ExperimentManifest,
    matrix: &MatrixSpec,
) -> Result<ManifestRun, DriverError> {
    // Resolve every policy once up front so name errors surface before any
    // simulation work (the pool closure then cannot fail on names).
    for policy in &matrix.policies {
        ptemagnet::registry::resolve(policy.name())?;
    }
    let (pn, sn) = (matrix.policies.len(), manifest.seeds.len());
    let total = matrix.workloads.len() * pn * sn;
    let observed = parallel::run_indexed(Parallelism::from_env(), total, |i| {
        let (s, p, w) = (i % sn, (i / sn) % pn, i / (sn * pn));
        build_scenario(
            manifest,
            &matrix.workloads[w],
            &matrix.policies[p],
            manifest.seeds[s],
        )
        .expect("manifest pre-validated")
        .try_run_observed(manifest.obs)
        .expect("scenario execution failed")
    });
    let outcome = assemble(manifest, matrix, &observed);
    Ok(ManifestRun {
        manifest: manifest.clone(),
        observed,
        outcome,
    })
}

/// The colocation label a figure sweep reports: the shared co-runner name,
/// `combination` for several, `standalone` for none, `mixed` if workloads
/// disagree.
fn colocation_label(workloads: &[WorkloadSpec]) -> String {
    let first = workloads
        .first()
        .map(|w| w.corunners.clone())
        .unwrap_or_default();
    if workloads.iter().any(|w| w.corunners != first) {
        return "mixed".to_string();
    }
    match first.len() {
        0 => "standalone".to_string(),
        1 => first[0].clone(),
        _ => "combination".to_string(),
    }
}

fn assemble(
    manifest: &ExperimentManifest,
    matrix: &MatrixSpec,
    observed: &[ObservedRun],
) -> Outcome {
    let (pn, sn) = (matrix.policies.len(), manifest.seeds.len());
    let at = |w: usize, p: usize, s: usize| &observed[(w * pn + p) * sn + s].metrics;
    match matrix.report {
        ReportKind::Runs => Outcome::Runs,
        ReportKind::Csv => Outcome::Csv,
        ReportKind::Pressure => {
            let mut rows = Vec::new();
            for (w, workload) in matrix.workloads.iter().enumerate() {
                for (p, policy) in matrix.policies.iter().enumerate() {
                    let m = at(w, p, 0);
                    let base = at(0, p, 0);
                    rows.push(PressureRow {
                        workload: workload.display_label(),
                        policy: policy.name().to_string(),
                        cycles: m.cycles,
                        slowdown: m.cycles as f64 / base.cycles.max(1) as f64 - 1.0,
                        faults_injected: m.faults_injected,
                        reservation_fallbacks: m.reservation_fallbacks,
                        reclaimed_frames: m.reclaimed_frames,
                    });
                }
            }
            Outcome::Pressure(rows)
        }
        ReportKind::Table1 => Outcome::Table1(Table1 {
            standalone: at(0, 0, 0).clone(),
            colocated: at(1, 0, 0).clone(),
        }),
        ReportKind::Table4 => Outcome::Table4(Table4 {
            default: at(0, 0, 0).clone(),
            ptemagnet: at(0, 1, 0).clone(),
        }),
        ReportKind::Fig5 | ReportKind::Fig6 | ReportKind::Fig7 => Outcome::Figure(FigureSweep {
            colocation: colocation_label(&matrix.workloads),
            pairs: matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| BenchPair {
                    name: workload.benchmark.clone(),
                    default: at(w, 0, 0).clone(),
                    ptemagnet: at(w, 1, 0).clone(),
                })
                .collect(),
        }),
        ReportKind::Sec62 => Outcome::Sec62(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let m = at(w, 0, 0);
                    ReservedUnused {
                        name: workload.benchmark.clone(),
                        peak_fraction: m.reserved_unused_fraction(),
                        mean_fraction: if m.footprint_pages == 0 {
                            0.0
                        } else {
                            m.reserved_unused_mean / m.footprint_pages as f64
                        },
                    }
                })
                .collect(),
        ),
        ReportKind::Thp => {
            let mut rows = Vec::new();
            for (w, workload) in matrix.workloads.iter().enumerate() {
                let default = at(w, 0, 0);
                for (p, policy) in matrix.policies.iter().enumerate() {
                    let metrics = at(w, p, 0);
                    rows.push(ThpRow {
                        allocator: policy.name().to_string(),
                        condition: workload.display_label(),
                        improvement: metrics.improvement_over(default),
                        metrics: metrics.clone(),
                    });
                }
            }
            Outcome::Thp(ThpStudy {
                rows,
                sparse_rss_per_touched: sparse_rss(&matrix.policies),
            })
        }
        ReportKind::Specint => Outcome::Specint(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let mean = (0..sn)
                        .map(|s| at(w, 1, s).improvement_over(at(w, 0, s)))
                        .sum::<f64>()
                        / sn as f64;
                    (workload.benchmark.clone(), mean)
                })
                .collect(),
        ),
        ReportKind::Variance => Outcome::Variance(VarianceStudy {
            base: Replication {
                runs: (0..sn).map(|s| at(0, 0, s).clone()).collect(),
            },
            ptemagnet: Replication {
                runs: (0..sn).map(|s| at(0, 1, s).clone()).collect(),
            },
        }),
        ReportKind::Llc => Outcome::Llc(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let mb = workload
                        .sim
                        .and_then(|s| s.llc_mb)
                        .expect("llc manifest pre-validated");
                    (mb, at(w, 1, 0).improvement_over(at(w, 0, 0)))
                })
                .collect(),
        ),
        ReportKind::Hw => Outcome::Hw(
            matrix
                .workloads
                .iter()
                .enumerate()
                .map(|(w, workload)| {
                    let sim = workload.sim.unwrap_or_default();
                    let (knob, value) = match sim.stlb_entries {
                        Some(v) => ("stlb", v),
                        None => (
                            "nested-tlb",
                            sim.nested_tlb_entries.expect("hw manifest pre-validated"),
                        ),
                    };
                    let base = at(w, 0, 0);
                    HwSensitivityRow {
                        knob: knob.to_string(),
                        value,
                        tlb_miss_ratio: base.tlb_misses as f64 / base.tlb_lookups.max(1) as f64,
                        improvement: at(w, 1, 0).improvement_over(base),
                    }
                })
                .collect(),
        ),
    }
}

/// The THP study's sparse-touch microbenchmark: touch every 8th page of a
/// large VMA and report resident pages per touched page, one value per
/// policy (THP's hidden internal-fragmentation cost).
fn sparse_rss(policies: &[PolicySpec]) -> [f64; 3] {
    let sparse = |policy: &PolicySpec| -> f64 {
        let allocator = ptemagnet::registry::resolve(policy.name()).expect("policy pre-resolved");
        let mut m = Machine::with_allocator(MachineConfig::paper(1, 128), allocator);
        let pid = m.guest_mut().spawn();
        let base = m.guest_mut().mmap(pid, 8192).expect("mmap");
        let touched = 8192 / 8;
        for i in 0..touched {
            m.touch(
                0,
                pid,
                GuestVirtAddr::new(base.raw() + i * 8 * PAGE_SIZE),
                true,
            )
            .expect("touch");
        }
        m.guest().process(pid).expect("pid").rss_pages as f64 / touched as f64
    };
    let values = parallel::map_indexed(Parallelism::from_env(), policies, sparse);
    [values[0], values[1], values[2]]
}

/// The §6.2 adversarial microbenchmark: an application touching only every
/// eighth page reserves ~7× its footprint. Returns the report line.
fn sec62_adversarial() -> String {
    let mut guest = GuestOs::new(1 << 16, Box::new(ptemagnet::ReservationAllocator::new()));
    let pid = guest.spawn();
    let va = guest.mmap(pid, 4096).expect("mmap");
    for g in 0..512u64 {
        guest
            .page_fault(pid, GuestVirtPage::new(va.page().raw() + g * 8))
            .expect("fault");
    }
    let unused = guest.allocator().reserved_unused_frames();
    format!(
        "\nAdversarial every-8th-page app: footprint 512 pages, reserved-unused {} pages ({}x)\n",
        unused,
        unused / 512
    )
}

impl ManifestRun {
    /// The per-run metrics in matrix order (empty for the special kinds).
    pub fn metrics(&self) -> Vec<RunMetrics> {
        self.observed.iter().map(|r| r.metrics.clone()).collect()
    }

    fn report_kind(&self) -> Option<ReportKind> {
        match &self.manifest.experiment {
            ExperimentSpec::Matrix(matrix) => Some(matrix.report),
            _ => None,
        }
    }

    /// Renders the result as the paper-style text the corresponding `exp-*`
    /// binary prints.
    pub fn report(&self) -> String {
        match &self.outcome {
            Outcome::Runs => self.runs_listing(),
            Outcome::Csv => report::runs_to_csv(&self.metrics()),
            Outcome::Table1(t) => report::format_table1(t),
            Outcome::Table4(t) => report::format_table4(t),
            Outcome::Figure(sweep) => match self.report_kind() {
                Some(ReportKind::Fig5) => report::format_fig5(sweep),
                Some(ReportKind::Fig7) => format!(
                    "{}\n{}",
                    report::format_improvement_figure(sweep, "Figure 7"),
                    report::figure_as_bars(sweep)
                ),
                _ => format!(
                    "{}\n{}",
                    report::format_improvement_figure(sweep, "Figure 6"),
                    report::figure_as_bars(sweep)
                ),
            },
            Outcome::Sec62(rows) => {
                format!("{}{}", report::format_sec62(rows), sec62_adversarial())
            }
            Outcome::Thp(study) => report::format_thp(study),
            Outcome::Specint(rows) => {
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "Zero-overhead check: low-TLB-pressure SPECint + objdet"
                );
                let _ = writeln!(out, "{:<12} {:>12}", "benchmark", "improvement");
                let mut worst = f64::INFINITY;
                for (name, imp) in rows {
                    let _ = writeln!(out, "{name:<12} {:>+11.2}%", imp * 100.0);
                    worst = worst.min(*imp);
                }
                let _ = writeln!(
                    out,
                    "\nWorst case: {:+.2}% — {}",
                    worst * 100.0,
                    if worst > -0.01 {
                        "PTEMagnet never slows anything down (paper's claim holds)"
                    } else {
                        "REGRESSION: the zero-overhead claim failed"
                    }
                );
                out
            }
            Outcome::Variance(v) => self.variance_report(v),
            Outcome::Llc(rows) => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.manifest.description);
                let _ = writeln!(out, "{:<8} {:>12}", "LLC", "improvement");
                for (mb, imp) in rows {
                    let _ = writeln!(out, "{:<8} {:>+11.1}%", format!("{mb} MB"), imp * 100.0);
                }
                out
            }
            Outcome::Hw(rows) => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.manifest.description);
                let _ = writeln!(
                    out,
                    "{:<12} {:>8} {:>10} {:>12}",
                    "knob", "entries", "tlb-miss", "improvement"
                );
                for row in rows {
                    let _ = writeln!(
                        out,
                        "{:<12} {:>8} {:>9.1}% {:>+11.1}%",
                        row.knob,
                        row.value,
                        row.tlb_miss_ratio * 100.0,
                        row.improvement * 100.0
                    );
                }
                out
            }
            Outcome::Pressure(rows) => {
                let mut out = String::new();
                let _ = writeln!(out, "{}", self.manifest.description);
                let _ = writeln!(
                    out,
                    "{:<16} {:<12} {:>14} {:>10} {:>10} {:>10} {:>10}",
                    "workload",
                    "policy",
                    "cycles",
                    "slowdown",
                    "injected",
                    "fallbacks",
                    "reclaimed"
                );
                for row in rows {
                    let _ = writeln!(
                        out,
                        "{:<16} {:<12} {:>14} {:>+9.1}% {:>10} {:>10} {:>10}",
                        row.workload,
                        row.policy,
                        row.cycles,
                        row.slowdown * 100.0,
                        row.faults_injected,
                        row.reservation_fallbacks,
                        row.reclaimed_frames
                    );
                }
                out
            }
            Outcome::AllocLatency(r) => report::format_sec64(r),
            Outcome::Breakdown(rows) => {
                let mut out = String::new();
                for (allocator, counters) in rows {
                    out.push_str(&report::format_breakdown(allocator, counters));
                    let ratio = if counters.guest_pt.memory == 0 {
                        f64::INFINITY
                    } else {
                        counters.host_pt.memory as f64 / counters.guest_pt.memory as f64
                    };
                    let _ = writeln!(
                        out,
                        "-> host-PT DRAM accesses are {ratio:.1}x the guest-PT's (paper: 4.4x under colocation)\n"
                    );
                }
                out
            }
        }
    }

    fn variance_report(&self, v: &VarianceStudy) -> String {
        let (label, policies) = match &self.manifest.experiment {
            ExperimentSpec::Matrix(matrix) => (
                matrix.workloads[0].display_label(),
                (
                    matrix.policies[0].name().to_string(),
                    matrix.policies[1].name().to_string(),
                ),
            ),
            _ => unreachable!("variance is a matrix report"),
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "Variance study: {label} across {} seeds, {} ops each",
            self.manifest.seeds.len(),
            self.manifest.measure_ops
        );
        let _ = writeln!(
            out,
            "{:<11} {:>10} {:>22}",
            "allocator", "cv", "improvement (mean±sd)"
        );
        let _ = writeln!(
            out,
            "{:<11} {:>9.2}% {:>22}",
            policies.0,
            v.base.cycles().cv() * 100.0,
            "-"
        );
        let imp = v.ptemagnet.improvement_over(&v.base);
        let _ = writeln!(
            out,
            "{:<11} {:>9.2}% {:>14.1}% ± {:.1}%",
            policies.1,
            v.ptemagnet.cycles().cv() * 100.0,
            imp.mean * 100.0,
            imp.stddev * 100.0
        );
        let _ = writeln!(
            out,
            "\nPaper: execution-time stddev over 40 runs <= 2%. Measured cv: {:.2}% / {:.2}%.",
            v.base.cycles().cv() * 100.0,
            v.ptemagnet.cycles().cv() * 100.0
        );
        out
    }

    fn runs_listing(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.manifest.description);
        let _ = writeln!(
            out,
            "{:<24} {:<14} {:>6} {:>14} {:>10}",
            "workload", "policy", "seed", "cycles", "host-frag"
        );
        self.for_each_cell(|workload, policy, seed, run| {
            let _ = writeln!(
                out,
                "{:<24} {:<14} {:>6} {:>14} {:>10.3}",
                workload.display_label(),
                policy.name(),
                seed,
                run.metrics.cycles,
                run.metrics.host_frag
            );
        });
        out
    }

    /// Calls `f` for every matrix cell in run order with its coordinates.
    fn for_each_cell(&self, mut f: impl FnMut(&WorkloadSpec, &PolicySpec, u64, &ObservedRun)) {
        let ExperimentSpec::Matrix(matrix) = &self.manifest.experiment else {
            return;
        };
        let (pn, sn) = (matrix.policies.len(), self.manifest.seeds.len());
        for (i, run) in self.observed.iter().enumerate() {
            let (s, p, w) = (i % sn, (i / sn) % pn, i / (sn * pn));
            f(
                &matrix.workloads[w],
                &matrix.policies[p],
                self.manifest.seeds[s],
                run,
            );
        }
    }

    /// The machine-readable `results/<name>.json` artifact: manifest
    /// identity plus every run's metrics (or the special-kind payload),
    /// parseable by `vmsim_obs::json`.
    pub fn results_json(&self) -> String {
        let m = &self.manifest;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"name\": {},", json_str(&m.name));
        let _ = writeln!(out, "  \"description\": {},", json_str(&m.description));
        let _ = writeln!(out, "  \"kind\": {},", json_str(m.experiment.kind()));
        let _ = writeln!(out, "  \"measure_ops\": {},", m.measure_ops);
        let mut seeds = String::from("[");
        for (i, s) in m.seeds.iter().enumerate() {
            if i > 0 {
                seeds.push_str(", ");
            }
            let _ = write!(seeds, "{s}");
        }
        seeds.push(']');
        let _ = writeln!(out, "  \"seeds\": {seeds},");
        match &self.outcome {
            Outcome::AllocLatency(r) => {
                out.push_str("  \"runs\": [],\n");
                let _ = writeln!(
                    out,
                    "  \"alloc_latency\": {{\"pages\": {}, \"default_cycles\": {}, \"ptemagnet_cycles\": {}}}",
                    r.pages, r.default_cycles, r.ptemagnet_cycles
                );
            }
            Outcome::Breakdown(rows) => {
                out.push_str("  \"runs\": [],\n");
                out.push_str("  \"breakdown\": [\n");
                for (i, (allocator, c)) in rows.iter().enumerate() {
                    let _ = write!(
                        out,
                        "    {{\"allocator\": {}, \"guest_pt_accesses\": {}, \"guest_pt_memory\": {}, \"host_pt_accesses\": {}, \"host_pt_memory\": {}}}",
                        json_str(allocator),
                        c.guest_pt.accesses,
                        c.guest_pt.memory,
                        c.host_pt.accesses,
                        c.host_pt.memory
                    );
                    out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
                }
                out.push_str("  ]\n");
            }
            _ => {
                if self.observed.is_empty() {
                    out.push_str("  \"runs\": []\n");
                } else {
                    out.push_str("  \"runs\": [\n");
                    let total = self.observed.len();
                    let mut i = 0usize;
                    self.for_each_cell(|workload, policy, seed, run| {
                        out.push_str("    ");
                        run_json(
                            &mut out,
                            &workload.display_label(),
                            policy.name(),
                            seed,
                            &run.metrics,
                        );
                        out.push_str(if i + 1 < total { ",\n" } else { "\n" });
                        i += 1;
                    });
                    out.push_str("  ]\n");
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    json::write_str(&mut out, s);
    out
}

/// Writes one run's metrics as a single-line JSON object (all
/// [`RunMetrics`] fields in declaration order, prefixed with the matrix
/// coordinates).
fn run_json(out: &mut String, workload: &str, policy: &str, seed: u64, r: &RunMetrics) {
    let _ = write!(
        out,
        "{{\"workload\": {}, \"policy\": {}, \"seed\": {seed}, \"benchmark\": {}, \"allocator\": {}, ",
        json_str(workload),
        json_str(policy),
        json_str(&r.benchmark),
        json_str(&r.allocator)
    );
    let _ = write!(
        out,
        "\"measure_ops\": {}, \"cycles\": {}, \"tlb_lookups\": {}, \"tlb_misses\": {}, \
         \"data_accesses\": {}, \"data_misses\": {}, \"page_walk_cycles\": {}, \
         \"host_pt_cycles\": {}, \"guest_pt_accesses\": {}, \"guest_pt_memory\": {}, \
         \"host_pt_accesses\": {}, \"host_pt_memory\": {}, ",
        r.measure_ops,
        r.cycles,
        r.tlb_lookups,
        r.tlb_misses,
        r.data_accesses,
        r.data_misses,
        r.page_walk_cycles,
        r.host_pt_cycles,
        r.guest_pt_accesses,
        r.guest_pt_memory,
        r.host_pt_accesses,
        r.host_pt_memory
    );
    out.push_str("\"host_frag\": ");
    json::write_f64(out, r.host_frag);
    out.push_str(", \"guest_frag\": ");
    json::write_f64(out, r.guest_frag);
    let _ = write!(
        out,
        ", \"init_cycles\": {}, \"footprint_pages\": {}, \"reserved_unused_peak\": {}, ",
        r.init_cycles, r.footprint_pages, r.reserved_unused_peak
    );
    out.push_str("\"reserved_unused_mean\": ");
    json::write_f64(out, r.reserved_unused_mean);
    let _ = write!(
        out,
        ", \"total_faults\": {}, \"reservation_fallbacks\": {}, \"reclaimed_frames\": {}, \
         \"faults_injected\": {}}}",
        r.total_faults, r.reservation_fallbacks, r.reclaimed_frames, r.faults_injected
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmsim_config::builtin;

    #[test]
    fn smoke_manifest_runs_and_serializes() {
        let run = run_manifest(&builtin::smoke()).expect("smoke manifest");
        assert_eq!(run.observed.len(), 2);
        assert!(matches!(run.outcome, Outcome::Runs));
        // Observability was on; metrics stay bit-identical regardless.
        assert!(run.observed[0].series.len() >= 2);
        let text = run.report();
        assert!(text.contains("gcc") && text.contains("ptemagnet"), "{text}");
        let artifact = run.results_json();
        let doc = json::parse(&artifact).expect("artifact parses");
        assert_eq!(doc.get("name").and_then(|n| n.as_str()), Some("smoke"));
        assert_eq!(
            doc.get("runs").and_then(|r| r.as_arr()).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn unknown_policy_is_a_driver_error() {
        let mut m = builtin::smoke();
        if let ExperimentSpec::Matrix(matrix) = &mut m.experiment {
            matrix.policies[1] = PolicySpec::new("warp-drive");
        }
        match run_manifest(&m) {
            Err(DriverError::Policy(p)) => assert_eq!(p.name, "warp-drive"),
            other => panic!("expected policy error, got {other:?}"),
        }
    }

    #[test]
    fn invalid_manifest_is_a_driver_error() {
        let mut m = builtin::smoke();
        m.seeds.clear();
        assert!(matches!(run_manifest(&m), Err(DriverError::Manifest(_))));
    }
}
